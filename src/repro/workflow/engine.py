"""The EdiFlow enactment engine.

Walks a :class:`~repro.workflow.model.ProcessDefinition`'s structured
body, records every instance transition in the core tables, evaluates
expressions and queries under the instance's isolation context, invokes
black-box procedures, and keeps the registries the update-propagation
machinery (Section VI-B) needs: which activity instances are *running*
right now, and which have *terminated* but may still receive deltas via
their finished handlers.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..core import datamodel
from ..db.database import Database
from ..db.expression import col
from ..db.schema import Column, TID
from ..db.types import type_from_name
from ..errors import EnactmentError, SpecificationError, WorkflowError
from ..faults import SimulatedCrash
from ..obs.runtime import OBS
from .expressions import (
    WorkflowExpression,
    evaluate_condition,
)
from .instance import ActivityInstance, ProcessInstance
from .isolation import IsolationContext, IsolationManager
from .model import (
    Activity,
    ActivityNode,
    AndSplitJoin,
    AskUser,
    Assign,
    CallProcedure,
    ConditionalNode,
    OrSplitJoin,
    ProcessDefinition,
    ProcessNode,
    RunQuery,
    SequenceNode,
    UpdateTable,
)
from ..retry import RetryPolicy
from .procedures import ProcessEnv, Procedure, ProcedureRegistry
from .roles import RoleManager

Row = dict[str, Any]

#: Callback answering AskUser activities: (prompt, variable_name) -> value.
Responder = Callable[[str, str], Any]


@dataclass
class LiveActivity:
    """A CallProcedure activity instance currently running (incl. detached)."""

    execution: "Execution"
    activity: CallProcedure
    instance: ActivityInstance
    procedure: Procedure
    env: ProcessEnv


@dataclass
class FinishedActivity:
    """A terminated CallProcedure instance kept for ta-* delta handlers."""

    execution: "Execution"
    activity: CallProcedure
    instance: ActivityInstance
    procedure: Procedure
    env: ProcessEnv


class Execution:
    """One enactment of a process definition."""

    def __init__(
        self,
        engine: "WorkflowEngine",
        definition: ProcessDefinition,
        instance: ProcessInstance,
        user_id: Optional[int],
        responder: Optional[Responder],
    ) -> None:
        self.engine = engine
        self.definition = definition
        self.instance = instance
        self.user_id = user_id
        self.responder = responder
        self.variables: dict[str, Any] = {
            v.name: v.initial for v in definition.variables
        }
        self.constants: dict[str, Any] = {c.name: c.value for c in definition.constants}
        self.start_time: int = 0
        self.temp_tables: list[str] = []
        #: Activities that must take a fresh snapshot because an fa-rp UP
        #: fired while this process was running (Section V, option "fa rp").
        self.fresh_for: set[str] = set()
        self.detached_running: list[LiveActivity] = []
        #: table -> tids written by this execution (always visible to it).
        self.own_tids: dict[str, set[int]] = {}
        #: Resume bookkeeping: activity name -> queue of already-completed
        #: instance ids whose re-execution must be skipped (set by
        #: WorkflowEngine.recover; empty on a fresh enactment).
        self.skip_completed: dict[str, list[int]] = {}

    @property
    def id(self) -> int:
        return self.instance.id

    def context_for(self, activity: Optional[Activity]) -> IsolationContext:
        """Isolation context for an activity instance of this execution."""
        fresh = activity is not None and (
            activity.fresh_snapshot or activity.name in self.fresh_for
        )
        snapshot = self.engine.database.now() if fresh else self.start_time
        return IsolationContext(
            process_instance_id=self.instance.id,
            start_time=self.start_time,
            snapshot_time=snapshot,
            own_tids=self.own_tids,
        )

    def is_running(self) -> bool:
        return self.instance.is_running()


class WorkflowEngine:
    """Deploys process definitions and runs their instances."""

    def __init__(
        self,
        database: Database,
        procedures: Optional[ProcedureRegistry] = None,
    ) -> None:
        self.database = database
        datamodel.install_core_schema(database)
        self.allocator = datamodel.IdAllocator(database)
        self.roles = RoleManager(database, self.allocator)
        self.isolation = IsolationManager(database)
        self.procedures = procedures or ProcedureRegistry()
        self._definitions: dict[str, ProcessDefinition] = {}
        self._process_ids: dict[str, int] = {}
        self._activity_ids: dict[tuple[str, str], int] = {}
        self.executions: dict[int, Execution] = {}
        self.live_activities: dict[int, LiveActivity] = {}
        self.finished_activities: list[FinishedActivity] = []
        self._lock = threading.RLock()
        self._propagation = None  # set by PropagationManager.attach
        self.record_provenance = True

    def _flush_propagation(self) -> None:
        """Release manual-policy UP deltas (P2, deferred-to-completion).

        Called whenever an activity or execution completes; a no-op when
        no PropagationManager is attached or nothing is buffered.
        """
        propagation = self._propagation
        if propagation is not None:
            propagation.flush_all()

    # ------------------------------------------------------------------
    # Deployment
    def deploy(self, definition: ProcessDefinition) -> None:
        """Register a definition: write Process/Activity rows, create its
        relations, put persistent relations under isolation management,
        and compile its UP statements into triggers."""
        with self._lock:
            if definition.name in self._definitions:
                raise SpecificationError(
                    f"process {definition.name!r} is already deployed"
                )
            for name in definition.procedures:
                if name not in self.procedures:
                    raise SpecificationError(
                        f"process {definition.name!r} requires procedure "
                        f"{name!r}, which is not registered"
                    )
            # Adopt existing Process/Activity rows by name: redeploying
            # after a restart must reattach to the recovered catalog, not
            # violate its unique-name constraints.
            existing = next(
                (
                    row
                    for row in self.database.table(datamodel.T_PROCESS).rows()
                    if row["name"] == definition.name
                ),
                None,
            )
            if existing is not None:
                pid = existing["id"]
            else:
                pid = self.allocator.next_id(datamodel.T_PROCESS)
                self.database.insert(
                    datamodel.T_PROCESS, {"id": pid, "name": definition.name}
                )
            self._process_ids[definition.name] = pid
            known_activities = {
                row["name"]: row["id"]
                for row in self.database.table(datamodel.T_ACTIVITY).rows()
                if row["process_id"] == pid
            }
            for activity in definition.body.activities():
                aid = known_activities.get(activity.name)
                if aid is None:
                    aid = self.allocator.next_id(datamodel.T_ACTIVITY)
                    group_id = (
                        self.roles.ensure_group(activity.group)
                        if activity.group
                        else None
                    )
                    self.database.insert(
                        datamodel.T_ACTIVITY,
                        {
                            "id": aid,
                            "process_id": pid,
                            "name": activity.name,
                            "group_id": group_id,
                        },
                    )
                self._activity_ids[(definition.name, activity.name)] = aid
            for relation in definition.relations:
                if relation.temporary:
                    continue  # created per execution
                if not self.database.has_table(relation.name):
                    if not relation.columns:
                        raise SpecificationError(
                            f"relation {relation.name!r} does not exist and "
                            "its declaration carries no columns"
                        )
                    self.database.create_table(
                        relation.name,
                        [
                            Column(att, type_from_name(ty))
                            for att, ty in relation.columns
                        ],
                        primary_key=relation.primary_key,
                    )
                self.isolation.manage(relation.name)
            self._definitions[definition.name] = definition
            if self._propagation is not None:
                self._propagation.compile(definition)

    def definition(self, name: str) -> ProcessDefinition:
        try:
            return self._definitions[name]
        except KeyError:
            raise WorkflowError(f"no deployed process named {name!r}") from None

    def activity_id(self, process: str, activity: str) -> int:
        return self._activity_ids[(process, activity)]

    # ------------------------------------------------------------------
    # Execution lifecycle
    def start(
        self,
        process_name: str,
        user: Optional[str] = None,
        responder: Optional[Responder] = None,
    ) -> Execution:
        """Create and start a process instance (does not run the body)."""
        with self._lock:
            definition = self.definition(process_name)
            instance_id = self.allocator.next_id(datamodel.T_PROCESS_INSTANCE)
            self.database.insert(
                datamodel.T_PROCESS_INSTANCE,
                {
                    "id": instance_id,
                    "process_id": self._process_ids[process_name],
                    "status": datamodel.NOT_STARTED,
                },
            )
            instance = ProcessInstance(self.database, instance_id)
            user_id = self.roles.ensure_user(user) if user else None
            execution = Execution(self, definition, instance, user_id, responder)
            execution.start_time = instance.start()
            self.isolation.process_started(instance_id, execution.start_time)
            self._create_temp_tables(execution)
            self.executions[instance_id] = execution
            return execution

    def run(
        self,
        process_name: str,
        user: Optional[str] = None,
        responder: Optional[Responder] = None,
        close: bool = True,
    ) -> Execution:
        """Start an instance, execute its body, and (by default) close it.

        With ``close=False`` the process instance is left ``running`` when
        detached activities remain -- the mode interactive visualization
        processes use.
        """
        if not OBS.enabled:
            return self._run_impl(process_name, user, responder, close)
        with OBS.tracer.span(
            "workflow.process", tags={"process": process_name}
        ) as span:
            execution = self._run_impl(process_name, user, responder, close)
            span.set_tag("process_instance_id", execution.id)
        return execution

    def _run_impl(
        self,
        process_name: str,
        user: Optional[str],
        responder: Optional[Responder],
        close: bool,
    ) -> Execution:
        execution = self.start(process_name, user=user, responder=responder)
        try:
            self.execute_node(execution.definition.body, execution)
        except SimulatedCrash:
            # A "dead" process runs no cleanup: leave the monitor tables
            # exactly as the crash found them so recovery sees the truth.
            raise
        except Exception:
            # Leave a queryable trace, then re-raise.
            self._abort(execution)
            raise
        if close and not execution.detached_running:
            self.close(execution)
        return execution

    def execute_node(self, node: ProcessNode, execution: Execution) -> None:
        """Run one structure node of the process body."""
        if isinstance(node, ActivityNode):
            self.run_activity(node.activity, execution)
        elif isinstance(node, SequenceNode):
            for step in node.steps:
                self.execute_node(step, execution)
        elif isinstance(node, AndSplitJoin):
            self._run_and_split(node, execution)
        elif isinstance(node, OrSplitJoin):
            self._run_or_split(node, execution)
        elif isinstance(node, ConditionalNode):
            env = self._make_env(execution, None, None)
            if evaluate_condition(node.condition, env):
                self.execute_node(node.body, execution)
        else:
            raise EnactmentError(f"unknown process node {node!r}")

    def _run_and_split(self, node: AndSplitJoin, execution: Execution) -> None:
        if not node.parallel or len(node.branches) <= 1:
            for branch in node.branches:
                self.execute_node(branch, execution)
            return
        errors: list[BaseException] = []

        def runner(branch: ProcessNode) -> None:
            try:
                self.execute_node(branch, execution)
            except BaseException as exc:  # noqa: BLE001 - reraised below
                errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(b,), daemon=True)
            for b in node.branches
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    def _run_or_split(self, node: OrSplitJoin, execution: Execution) -> None:
        env = self._make_env(execution, None, None)
        for branch in node.branches:
            if evaluate_condition(branch.condition, env):
                # Triggering one branch invalidates the others (Section V).
                self.execute_node(branch.body, execution)
                return
        # No branch eligible: the OR block contributes nothing.

    def close(self, execution: Execution) -> None:
        """Finish remaining detached activities and complete the process."""
        # P2 (deferred-to-completion): deliver buffered deltas while the
        # detached activities are still live, so their ``ra`` handlers
        # run before completion.
        self._flush_propagation()
        with self._lock:
            for live in list(execution.detached_running):
                self.finish_activity(live.instance.id)
            if execution.instance.is_running():
                execution.instance.complete()
            self.isolation.process_ended(execution.id)
            self._drop_temp_tables(execution)

    def _abort(self, execution: Execution) -> None:
        with self._lock:
            for live in list(execution.detached_running):
                if live.instance.id in self.live_activities:
                    del self.live_activities[live.instance.id]
            execution.detached_running.clear()
            if execution.instance.is_running():
                execution.instance.complete()
            self.isolation.process_ended(execution.id)
            self._drop_temp_tables(execution)

    # ------------------------------------------------------------------
    # Temporary relations (Section IV-B)
    def _create_temp_tables(self, execution: Execution, adopt: bool = False) -> None:
        for relation in execution.definition.relations:
            if not relation.temporary:
                continue
            if self.database.has_table(relation.name):
                if adopt:
                    # Recovery: the table (and its contents) survived the
                    # crash in the durable store; the resumed execution
                    # owns it again.
                    execution.temp_tables.append(relation.name)
                    continue
                raise EnactmentError(
                    f"temporary relation {relation.name!r} already exists -- "
                    "is another instance of this process running?"
                )
            if not relation.columns:
                raise SpecificationError(
                    f"temporary relation {relation.name!r} needs columns"
                )
            self.database.create_table(
                relation.name,
                [Column(att, type_from_name(ty)) for att, ty in relation.columns],
                primary_key=relation.primary_key,
            )
            execution.temp_tables.append(relation.name)

    def _drop_temp_tables(self, execution: Execution) -> None:
        for name in execution.temp_tables:
            self.database.drop_table(name, if_exists=True)
        execution.temp_tables.clear()

    # ------------------------------------------------------------------
    # Activities
    def run_activity(self, activity: Activity, execution: Execution) -> ActivityInstance:
        if not OBS.enabled:
            return self._run_activity_impl(activity, execution)
        with OBS.tracer.span(
            "workflow.activity",
            tags={
                "process": execution.definition.name,
                "activity": activity.name,
                "type": type(activity).__name__,
                "process_instance_id": execution.id,
            },
        ) as span:
            instance = self._run_activity_impl(activity, execution)
            # Matches ActivityInstance.id, so span timings can be checked
            # against the monitor's ActivityTrace timeline.
            span.set_tag("activity_instance_id", instance.id)
        OBS.metrics.histogram(
            "workflow.activity_ms", activity=activity.name
        ).observe(span.duration_ms)
        return instance

    def _run_activity_impl(
        self, activity: Activity, execution: Execution
    ) -> ActivityInstance:
        if execution.skip_completed:
            # Resuming after a crash: this activity already completed in
            # the pre-crash run; hand back its persisted instance instead
            # of executing it a second time.
            with self._lock:
                queue = execution.skip_completed.get(activity.name)
                if queue:
                    instance_id = queue.pop(0)
                    if not queue:
                        del execution.skip_completed[activity.name]
                    return ActivityInstance(self.database, instance_id)
        instance = self._create_activity_instance(activity, execution)
        instance.start()
        env = self._make_env(execution, activity, instance)
        try:
            if isinstance(activity, Assign):
                self._run_assign(activity, env)
            elif isinstance(activity, UpdateTable):
                env.execute(activity.sql, activity.params)
            elif isinstance(activity, RunQuery):
                self._run_query_activity(activity, env)
            elif isinstance(activity, AskUser):
                self._run_ask_user(activity, execution, env)
            elif isinstance(activity, CallProcedure):
                return self._run_call(activity, execution, instance, env)
            else:
                raise EnactmentError(f"unknown activity type {type(activity).__name__}")
        except SimulatedCrash:
            raise  # a dead process cannot update its own status
        except Exception:
            if instance.status == datamodel.RUNNING:
                instance.complete()
            raise
        instance.complete()
        self._flush_propagation()
        return instance

    def _create_activity_instance(
        self, activity: Activity, execution: Execution
    ) -> ActivityInstance:
        aid = self._activity_ids[(execution.definition.name, activity.name)]
        group_row = self.database.table(datamodel.T_ACTIVITY).by_key(aid)
        group_id = group_row["group_id"] if group_row else None
        if execution.user_id is not None:
            self.roles.check_assignment(execution.user_id, group_id)
        elif group_id is not None:
            raise WorkflowError(
                f"activity {activity.name!r} requires group "
                f"{activity.group!r} but the execution has no user"
            )
        instance_id = self.allocator.next_id(datamodel.T_ACTIVITY_INSTANCE)
        self.database.insert(
            datamodel.T_ACTIVITY_INSTANCE,
            {
                "id": instance_id,
                "activity_id": aid,
                "process_instance_id": execution.id,
                "user_id": execution.user_id,
                "status": datamodel.NOT_STARTED,
            },
        )
        return ActivityInstance(self.database, instance_id)

    def _make_env(
        self,
        execution: Execution,
        activity: Optional[Activity],
        instance: Optional[ActivityInstance],
    ) -> ProcessEnv:
        return ProcessEnv(
            engine=self,
            process_instance_id=execution.id,
            activity_instance_id=instance.id if instance else None,
            isolation=execution.context_for(activity),
            variables=execution.variables,
            constants=execution.constants,
        )

    def _run_assign(self, activity: Assign, env: ProcessEnv) -> None:
        expression = activity.expression
        if isinstance(expression, WorkflowExpression):
            value = expression.evaluate(env)
        else:
            value = expression
        env.assign(activity.variable, value)

    def _run_query_activity(self, activity: RunQuery, env: ProcessEnv) -> None:
        rows = env.query(activity.sql, activity.params)
        if activity.into_variable:
            env.assign(activity.into_variable, rows)
        if activity.into_table:
            env.write_rows(activity.into_table, rows)
        if not activity.into_variable and not activity.into_table:
            raise SpecificationError(
                f"RunQuery {activity.name!r} has no destination "
                "(into_variable or into_table)"
            )

    def _run_ask_user(
        self, activity: AskUser, execution: Execution, env: ProcessEnv
    ) -> None:
        if execution.responder is None:
            raise EnactmentError(
                f"activity {activity.name!r} needs user input but the "
                "execution has no responder"
            )
        value = execution.responder(activity.prompt, activity.variable)
        env.assign(activity.variable, value)

    def _run_call(
        self,
        activity: CallProcedure,
        execution: Execution,
        instance: ActivityInstance,
        env: ProcessEnv,
    ) -> ActivityInstance:
        inputs: list[list[Row]] = []
        for item in activity.inputs:
            if isinstance(item, str):
                inputs.append(env.read_table(item))
            elif isinstance(item, WorkflowExpression):
                inputs.append(item.evaluate(env))
            else:
                raise SpecificationError(
                    f"bad input {item!r} for activity {activity.name!r}"
                )
        procedure = self.procedures.instantiate(activity.procedure)
        procedure.initialize(env)
        live = LiveActivity(execution, activity, instance, procedure, env)
        with self._lock:
            self.live_activities[instance.id] = live
        # Retry-on-failure semantics: the activity's declaration wins,
        # falling back to a policy the procedure class itself carries.
        retry_policy = RetryPolicy.from_options(activity.options.get("retry"))
        if retry_policy is None:
            retry_policy = getattr(procedure, "retry_policy", None)
        try:
            if retry_policy is not None:
                outputs = retry_policy.call(
                    procedure.run, env, inputs, list(activity.read_write)
                )
            else:
                outputs = procedure.run(env, inputs, list(activity.read_write))
        except SimulatedCrash:
            raise  # a dead process cannot update its own status
        except Exception:
            with self._lock:
                self.live_activities.pop(instance.id, None)
            instance.complete()
            raise
        outputs = outputs or []
        if len(outputs) < len(activity.outputs):
            with self._lock:
                self.live_activities.pop(instance.id, None)
            instance.complete()
            raise WorkflowError(
                f"procedure {activity.procedure!r} returned {len(outputs)} "
                f"output table(s); activity {activity.name!r} expects "
                f"{len(activity.outputs)}"
            )
        for table, rows in zip(activity.outputs, outputs):
            env.write_rows(table, rows)
        if activity.detached:
            execution.detached_running.append(live)
            return instance
        # The activity is done: release manual-policy deltas it produced
        # before it leaves the live set (P2, deferred-to-completion).
        self._flush_propagation()
        self._finish_live(live)
        return instance

    def finish_activity(self, activity_instance_id: int) -> None:
        """Complete a detached activity instance."""
        # Flush before completing: manual-policy deltas must reach this
        # instance's ``ra`` handler while it still counts as running.
        self._flush_propagation()
        with self._lock:
            live = self.live_activities.get(activity_instance_id)
            if live is None:
                raise EnactmentError(
                    f"activity instance {activity_instance_id} is not running"
                )
            if live in live.execution.detached_running:
                live.execution.detached_running.remove(live)
            self._finish_live(live)

    def _finish_live(self, live: LiveActivity) -> None:
        with self._lock:
            self.live_activities.pop(live.instance.id, None)
            live.instance.complete()
            self.finished_activities.append(
                FinishedActivity(
                    live.execution, live.activity, live.instance, live.procedure, live.env
                )
            )

    # ------------------------------------------------------------------
    # Data writing (with provenance)
    def write_rows(self, table: str, rows: Sequence[Row], env: ProcessEnv) -> None:
        if not rows:
            return
        clean = [
            {k: v for k, v in row.items() if not k.startswith("__")} for row in rows
        ]
        inserted = self.database.insert_many(table, clean)
        env.isolation.record_own(table, (row[TID] for row in inserted))
        self.record_created(table, [row[TID] for row in inserted], env)

    def record_created(
        self, table: str, tids: Sequence[int], env: ProcessEnv
    ) -> None:
        """Durable ``createdBy`` provenance for rows an activity created.

        This is both the compensation undo-log and -- after a crash --
        the source :meth:`recover` rebuilds own-row visibility from, so
        every activity write path (procedure ``write_rows`` *and* raw-SQL
        INSERTs through ``ProcessEnv.execute``) must land here.
        """
        if not self.record_provenance or not tids:
            return
        if env.activity_instance_id is None:
            return
        self.database.insert_many(
            datamodel.T_PROVENANCE,
            [
                {
                    "entity_table": table,
                    "entity_tid": tid,
                    "activity_instance_id": env.activity_instance_id,
                    "relation": "createdBy",
                }
                for tid in tids
            ],
        )

    # ------------------------------------------------------------------
    # Durability of process state
    def persist_variable(self, process_instance_id: int, name: str, value: Any) -> None:
        """Write-through one variable assignment to the core tables.

        Values are stored as JSON text; a value that JSON cannot express
        is stored as NULL (recovery then falls back to the definition's
        initial value -- better a stale default than silently restoring
        the wrong thing).
        """
        try:
            encoded: Optional[str] = json.dumps(value)
        except (TypeError, ValueError):
            encoded = None
        where = (col("process_instance_id") == process_instance_id) & (
            col("name") == name
        )
        with self.database.lock:
            count = self.database.update(
                datamodel.T_PROCESS_VARIABLE, {"value": encoded}, where
            )
            if count == 0:
                self.database.insert(
                    datamodel.T_PROCESS_VARIABLE,
                    {
                        "process_instance_id": process_instance_id,
                        "name": name,
                        "value": encoded,
                    },
                )

    def _restore_variables(self, execution: Execution) -> None:
        for row in self.database.table(datamodel.T_PROCESS_VARIABLE).rows():
            if row["process_instance_id"] != execution.id:
                continue
            if row["value"] is None:
                continue  # was not JSON-representable; keep the initial
            execution.variables[row["name"]] = json.loads(row["value"])

    # ------------------------------------------------------------------
    # Crash recovery (resumable enactments)
    def recover(
        self,
        responders: Optional[dict[str, Responder]] = None,
        resume: bool = True,
    ) -> list[Execution]:
        """Resume enactments left ``running`` by a crashed engine.

        Call after recovering the database (:func:`repro.db.recover`) and
        redeploying the same definitions.  For every process instance the
        monitor tables show as in flight, this:

        1. rebuilds its :class:`Execution` (start time, persisted
           variables, own-row visibility, adopted temporary tables);
        2. *compensates* activity instances that were mid-run at the
           crash -- rows they created are deleted via their ``createdBy``
           provenance and the half-done instance rows are removed, so the
           re-run starts from a clean slate;
        3. re-walks the process body, skipping activities whose instances
           completed before the crash (their effects are already
           durable), executing the rest, and closing the instance.

        With ``resume=False`` only steps 1-2 run and the executions are
        returned still running (callers drive them manually).  INSERTs --
        both procedure ``write_rows`` and raw SQL through the env -- are
        provenance-tracked, so they are compensated and stay visible to
        the resumed enactment.  Raw-SQL UPDATE/DELETE effects of an
        activity that was mid-run at the crash are *not* undone; such
        statements re-execute on resume and should be idempotent
        (``UPDATE ... SET`` to absolute values).

        Returns the recovered executions.
        """
        if not OBS.enabled:
            return self._recover_impl(responders, resume)
        with OBS.tracer.span("workflow.recover") as span:
            recovered = self._recover_impl(responders, resume)
            span.set_tag("instances", len(recovered))
        return recovered

    def _recover_impl(
        self,
        responders: Optional[dict[str, Responder]],
        resume: bool,
    ) -> list[Execution]:
        responders = responders or {}
        names_by_pid = {pid: name for name, pid in self._process_ids.items()}
        in_flight = [
            dict(row)
            for row in self.database.table(datamodel.T_PROCESS_INSTANCE).rows()
            if row["status"] == datamodel.RUNNING
            and row["process_id"] in names_by_pid
            and row["id"] not in self.executions
        ]
        recovered: list[Execution] = []
        for row in in_flight:
            process_name = names_by_pid[row["process_id"]]
            definition = self._definitions[process_name]
            instance = ProcessInstance(self.database, row["id"])
            activity_rows = instance.activity_instances()
            user_id = next(
                (
                    ai["user_id"]
                    for ai in activity_rows
                    if ai["user_id"] is not None
                ),
                None,
            )
            execution = Execution(
                self, definition, instance, user_id, responders.get(process_name)
            )
            execution.start_time = row["start"] or 0
            self._restore_variables(execution)
            self.isolation.process_started(execution.id, execution.start_time)
            self._create_temp_tables(execution, adopt=True)
            self._compensate_crashed(execution, activity_rows)
            self._restore_own_tids(execution)
            execution.skip_completed = self._completed_by_activity(
                definition, activity_rows
            )
            self.executions[execution.id] = execution
            recovered.append(execution)
        if resume:
            for execution in recovered:
                try:
                    self.execute_node(execution.definition.body, execution)
                except Exception:
                    self._abort(execution)
                    raise
                if not execution.detached_running:
                    self.close(execution)
        return recovered

    def _compensate_crashed(
        self, execution: Execution, activity_rows: list[Row]
    ) -> None:
        """Undo activity instances that were mid-run at the crash.

        Their completed statements are durable, so without compensation a
        re-run would double-apply them.  Provenance tells us exactly which
        rows each crashed instance created; those are deleted, then the
        half-done instance row itself (the re-run gets a fresh one).
        """
        # RUNNING was mid-flight; NOT_STARTED was created but never ran.
        # Both belong to the crashed attempt and must go.
        crashed_ids = {
            ai["id"]
            for ai in activity_rows
            if ai["status"] != datamodel.COMPLETED
        }
        if not crashed_ids:
            return
        provenance = self.database.table(datamodel.T_PROVENANCE)
        by_table: dict[str, list[int]] = {}
        for prov in provenance.rows():
            if prov["activity_instance_id"] in crashed_ids:
                by_table.setdefault(prov["entity_table"], []).append(
                    prov["entity_tid"]
                )
        for table, tids in by_table.items():
            if self.database.has_table(table):
                self.database.delete_by_tids(table, tids)
        for crashed in sorted(crashed_ids):
            self.database.delete(
                datamodel.T_PROVENANCE, col("activity_instance_id") == crashed
            )
            self.database.delete(
                datamodel.T_ACTIVITY_INSTANCE, col("id") == crashed
            )
        activity_rows[:] = [
            ai for ai in activity_rows if ai["id"] not in crashed_ids
        ]

    def _restore_own_tids(self, execution: Execution) -> None:
        """Rebuild the own-writes visibility set from provenance."""
        instance_ids = {
            ai["id"]
            for ai in execution.instance.activity_instances()
        }
        for prov in self.database.table(datamodel.T_PROVENANCE).rows():
            if prov["activity_instance_id"] in instance_ids:
                execution.own_tids.setdefault(prov["entity_table"], set()).add(
                    prov["entity_tid"]
                )

    def _completed_by_activity(
        self, definition: ProcessDefinition, activity_rows: list[Row]
    ) -> dict[str, list[int]]:
        """Completed instance ids per activity name, in execution order."""
        activity_names = {
            aid: name
            for (process, name), aid in self._activity_ids.items()
            if process == definition.name
        }
        skip: dict[str, list[int]] = {}
        for ai in sorted(activity_rows, key=lambda r: r["id"]):
            if ai["status"] != datamodel.COMPLETED:
                continue
            name = activity_names.get(ai["activity_id"])
            if name is not None:
                skip.setdefault(name, []).append(ai["id"])
        return skip

    # ------------------------------------------------------------------
    # Retention
    def prune_finished(self, process_instance_id: Optional[int] = None) -> int:
        """Drop finished-activity records kept for ``ta-*`` delta handlers.

        Records accumulate for as long as the designer may want deltas to
        reach terminated activity instances (``ta-tp`` has no natural end).
        Prune everything, or only one process instance's records, once no
        further propagation to them is wanted.  Returns how many records
        were dropped.  The persisted instance history is untouched.
        """
        with self._lock:
            if process_instance_id is None:
                dropped = len(self.finished_activities)
                self.finished_activities.clear()
                return dropped
            keep = [
                f
                for f in self.finished_activities
                if f.execution.id != process_instance_id
            ]
            dropped = len(self.finished_activities) - len(keep)
            self.finished_activities = keep
            return dropped

    # ------------------------------------------------------------------
    # Introspection used by propagation
    def running_instances_of(self, process_name: str) -> list[Execution]:
        return [
            execution
            for execution in self.executions.values()
            if execution.definition.name == process_name and execution.is_running()
        ]

    def live_instances_of_activity(
        self, process_name: str, activity_name: str
    ) -> list[LiveActivity]:
        with self._lock:
            return [
                live
                for live in self.live_activities.values()
                if live.execution.definition.name == process_name
                and live.activity.name == activity_name
            ]

    def finished_instances_of_activity(
        self, process_name: str, activity_name: str, process_running: bool
    ) -> list[FinishedActivity]:
        with self._lock:
            out = []
            for finished in self.finished_activities:
                if finished.execution.definition.name != process_name:
                    continue
                if finished.activity.name != activity_name:
                    continue
                if finished.execution.is_running() != process_running:
                    continue
                out.append(finished)
            return out
