"""The EdiFlow process model (Section V, Figure 4 of the paper).

A process is built from:

* a configuration (database identification),
* constants and typed variables,
* relation declarations (persistent DBMS-hosted or temporary),
* procedure declarations (black boxes, with optional delta handlers),
* a structured process body -- the grammar
  ``P ::= eps | a , P | P || P | P (+) P | e ? P``
  i.e. sequence, AND split-join, OR split-join and conditional blocks,
* a set of update-propagation (UP) statements describing how data deltas
  reach activity instances.

Everything here is declarative description; execution lives in
:mod:`repro.workflow.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..errors import SpecificationError

# ---------------------------------------------------------------------------
# Scalars: constants and variables


@dataclass(frozen=True)
class Constant:
    """A named constant: ``name value`` (Figure 4)."""

    name: str
    value: Any


@dataclass(frozen=True)
class Variable:
    """A typed process variable: ``name type`` (Figure 4).

    ``type_name`` is one of the engine's type names (INTEGER, FLOAT,
    TEXT, BOOLEAN, TIMESTAMP, ANY).  ``initial`` seeds the variable at
    instance start.
    """

    name: str
    type_name: str = "ANY"
    initial: Any = None


# ---------------------------------------------------------------------------
# Relations


@dataclass(frozen=True)
class RelationDecl:
    """A relation used by the process.

    ``temporary=True`` marks a memory-resident relation local to one
    process instance: "their lifespan is restricted to that of the process
    instance which uses them" (Section IV-B).  Persistent relations must
    already exist in the database or carry a full column list so the
    engine can create them.
    """

    name: str
    columns: tuple[tuple[str, str], ...] = ()  # (attname, atttype)
    primary_key: Optional[str] = None
    temporary: bool = False


# ---------------------------------------------------------------------------
# Activities (the leaves of the process structure)


class Activity:
    """Base class for activities.

    ``group`` names the user group (role) that must perform the activity;
    ``detached=True`` marks a long-lived activity (e.g. an interactive
    visualization) that stays ``running`` after the engine moves on, until
    explicitly finished -- the paper's use cases 4/5 in Section V depend
    on such activities.
    ``fresh_snapshot=True`` gives instances the freshest possible data
    snapshot (taken at activity start instead of process start) -- UP
    option 2 in Section V.
    """

    def __init__(
        self,
        name: str,
        group: Optional[str] = None,
        detached: bool = False,
        fresh_snapshot: bool = False,
    ) -> None:
        if not name:
            raise SpecificationError("activity needs a non-empty name")
        self.name = name
        self.group = group
        self.detached = detached
        self.fresh_snapshot = fresh_snapshot

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class Assign(Activity):
    """``v <- alpha``: assign an expression's value to a variable."""

    def __init__(
        self,
        name: str,
        variable: str,
        expression: "WorkflowExpression | Any",
        **kwargs: Any,
    ) -> None:
        super().__init__(name, **kwargs)
        self.variable = variable
        self.expression = expression


class UpdateTable(Activity):
    """``upd(R)``: a declarative SQL update/insert/delete statement.

    ``params`` may reference process variables with ``$name`` values.
    """

    def __init__(self, name: str, sql: str, params: Sequence[Any] = (), **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self.sql = sql
        self.params = tuple(params)


class RunQuery(Activity):
    """``runQuery``: evaluate a query, store rows into a target.

    The result lands in the process variable ``into_variable`` and/or is
    appended to the relation ``into_table``.
    """

    def __init__(
        self,
        name: str,
        sql: str,
        params: Sequence[Any] = (),
        into_variable: Optional[str] = None,
        into_table: Optional[str] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, **kwargs)
        self.sql = sql
        self.params = tuple(params)
        self.into_variable = into_variable
        self.into_table = into_table


class CallProcedure(Activity):
    """``callFunction``: invoke a black-box procedure.

    ``inputs`` are read-only relations/expressions (R_1..R_l in the
    paper's signature), ``read_write`` the T^w tables the procedure may
    change, and ``outputs`` the S_1..S_n tables receiving its results.
    """

    def __init__(
        self,
        name: str,
        procedure: str,
        inputs: Sequence["WorkflowExpression | str"] = (),
        read_write: Sequence[str] = (),
        outputs: Sequence[str] = (),
        options: Optional[dict[str, Any]] = None,
        retry: Optional[Any] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, **kwargs)
        self.procedure = procedure
        self.inputs = tuple(inputs)
        self.read_write = tuple(read_write)
        self.outputs = tuple(outputs)
        self.options = dict(options or {})
        # Retry-on-failure semantics for this black-box call: a
        # RetryPolicy, or an options dict for RetryPolicy.from_options.
        # Declaring it is the spec author's assertion that re-running the
        # procedure after a transient failure is safe.
        if retry is not None:
            self.options["retry"] = retry


class AskUser(Activity):
    """``askUser``: obtain a value from a human.

    The engine resolves it through a pluggable responder callback (tests
    and examples install programmatic responders), storing the answer in
    ``variable``.
    """

    def __init__(self, name: str, prompt: str, variable: str, **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self.prompt = prompt
        self.variable = variable


# ---------------------------------------------------------------------------
# Structured process nodes


class ProcessNode:
    """Base class for structure nodes."""

    def activities(self) -> list[Activity]:
        """All activities in document order (for validation/propagation)."""
        raise NotImplementedError


@dataclass
class ActivityNode(ProcessNode):
    activity: Activity

    def activities(self) -> list[Activity]:
        return [self.activity]


@dataclass
class SequenceNode(ProcessNode):
    """``a, P`` -- generalized to an ordered list of steps."""

    steps: list[ProcessNode] = field(default_factory=list)

    def activities(self) -> list[Activity]:
        out: list[Activity] = []
        for step in self.steps:
            out.extend(step.activities())
        return out


@dataclass
class AndSplitJoin(ProcessNode):
    """``P1 || P2 || ...`` -- all branches run; the join waits for all."""

    branches: list[ProcessNode] = field(default_factory=list)
    parallel: bool = False  # True: run branches in threads

    def activities(self) -> list[Activity]:
        out: list[Activity] = []
        for branch in self.branches:
            out.extend(branch.activities())
        return out


@dataclass
class OrBranch:
    """One guarded alternative of an OR split-join."""

    condition: "Condition | None"
    body: ProcessNode


@dataclass
class OrSplitJoin(ProcessNode):
    """``P1 (+) P2``: "once a branch is triggered, the other is
    invalidated and can no longer be triggered" (Section V).

    The first branch whose condition holds is triggered; a ``None``
    condition means "always eligible" (useful as a final else-branch).
    """

    branches: list[OrBranch] = field(default_factory=list)

    def activities(self) -> list[Activity]:
        out: list[Activity] = []
        for branch in self.branches:
            out.extend(branch.body.activities())
        return out


@dataclass
class ConditionalNode(ProcessNode):
    """``e ? P`` -- run ``body`` when the condition evaluates to true."""

    condition: "Condition"
    body: ProcessNode

    def activities(self) -> list[Activity]:
        return self.body.activities()


#: Conditions are either SQL text evaluated to a scalar truth value, or a
#: Python callable over the instance environment.
Condition = Any  # str (SQL) | Callable[[ProcessEnv], bool] | WorkflowExpression


# ---------------------------------------------------------------------------
# Update propagation (reactive processes, Section V)

#: Scope tokens, straight from the paper's UP grammar:
#:  ta-rp  terminated activity instances, running processes
#:  ta-tp  terminated activity instances, terminated processes
#:  ra     running activity instances
#:  fa-rp  future activity instances, running processes
UP_SCOPES = ("ta-rp", "ta-tp", "ra", "fa-rp")


@dataclass(frozen=True)
class UpdatePropagation:
    """One UP statement: propagate deltas on ``relation`` to ``activity``.

    ``scope`` is one of :data:`UP_SCOPES`.  Several UP statements may
    target the same (relation, activity) pair -- the paper's example is
    ``(R, a, ra), (R, a, fa-rp)``.
    """

    relation: str
    activity: str
    scope: str

    def __post_init__(self) -> None:
        if self.scope not in UP_SCOPES:
            raise SpecificationError(
                f"unknown UP scope {self.scope!r}; expected one of {UP_SCOPES}"
            )


def propagate_to_future(relation: str, activities: Sequence[Activity]) -> list[UpdatePropagation]:
    """The "macro" option 3 of Section V: propagate to all activities yet
    to start in a running process -- expands to one fa-rp UP per activity.
    """
    return [UpdatePropagation(relation, a.name, "fa-rp") for a in activities]


# ---------------------------------------------------------------------------
# Process definition


@dataclass(frozen=True)
class Configuration:
    """DB driver/URI/user of Figure 4 -- informational in the embedded
    engine, but parsed and kept for spec round-tripping."""

    driver: str = "embedded"
    uri: str = "memory://"
    user: str = ""


class ProcessDefinition:
    """A complete reactive process: ``RP ::= <R, v, p, P, UP>``."""

    def __init__(
        self,
        name: str,
        body: ProcessNode,
        relations: Sequence[RelationDecl] = (),
        variables: Sequence[Variable] = (),
        constants: Sequence[Constant] = (),
        procedures: Sequence[str] = (),
        propagations: Sequence[UpdatePropagation] = (),
        configuration: Configuration = Configuration(),
    ) -> None:
        if not name:
            raise SpecificationError("process needs a non-empty name")
        self.name = name
        self.body = body
        self.relations = tuple(relations)
        self.variables = tuple(variables)
        self.constants = tuple(constants)
        self.procedures = tuple(procedures)
        self.propagations = tuple(propagations)
        self.configuration = configuration
        self._validate()

    def _validate(self) -> None:
        activities = self.body.activities()
        names = [a.name for a in activities]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SpecificationError(
                f"duplicate activity names in process {self.name!r}: {sorted(duplicates)}"
            )
        known = set(names)
        for up in self.propagations:
            if up.activity not in known:
                raise SpecificationError(
                    f"UP statement targets unknown activity {up.activity!r}"
                )
        relation_names = {r.name for r in self.relations}
        var_names = [v.name for v in self.variables]
        dup_vars = {n for n in var_names if var_names.count(n) > 1}
        if dup_vars:
            raise SpecificationError(f"duplicate variables: {sorted(dup_vars)}")
        const_names = {c.name for c in self.constants}
        clash = const_names & set(var_names)
        if clash:
            raise SpecificationError(
                f"names used as both constant and variable: {sorted(clash)}"
            )
        for up in self.propagations:
            if relation_names and up.relation not in relation_names:
                raise SpecificationError(
                    f"UP statement references undeclared relation {up.relation!r}"
                )

    def activity(self, name: str) -> Activity:
        for activity in self.body.activities():
            if activity.name == name:
                return activity
        raise SpecificationError(f"no activity named {name!r} in {self.name!r}")

    def activity_names(self) -> list[str]:
        return [a.name for a in self.body.activities()]

    def propagations_for(self, relation: str) -> list[UpdatePropagation]:
        return [up for up in self.propagations if up.relation == relation]

    def __repr__(self) -> str:
        return f"<ProcessDefinition {self.name!r} activities={self.activity_names()}>"


# ---------------------------------------------------------------------------
# Convenience builders


def seq(*steps: ProcessNode | Activity) -> SequenceNode:
    """Build a sequence, lifting bare activities into nodes."""
    return SequenceNode([_lift(s) for s in steps])


def par(*branches: ProcessNode | Activity, parallel: bool = False) -> AndSplitJoin:
    """Build an AND split-join."""
    return AndSplitJoin([_lift(b) for b in branches], parallel=parallel)


def alt(*branches: tuple[Condition, ProcessNode | Activity]) -> OrSplitJoin:
    """Build an OR split-join from (condition, body) pairs."""
    return OrSplitJoin([OrBranch(c, _lift(b)) for c, b in branches])


def when(condition: Condition, body: ProcessNode | Activity) -> ConditionalNode:
    """Build a conditional block."""
    return ConditionalNode(condition, _lift(body))


def _lift(node: ProcessNode | Activity) -> ProcessNode:
    if isinstance(node, Activity):
        return ActivityNode(node)
    if isinstance(node, ProcessNode):
        return node
    raise SpecificationError(f"expected Activity or ProcessNode, got {node!r}")


# Imported late to avoid a cycle; re-exported for convenience.
