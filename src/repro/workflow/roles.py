"""Users, groups, and role assignment.

"An activity must be performed by a different group of users (one can
also see a group as a role to be played within the process)" and
"individual users may belong to one or several groups" (Section IV-A).
This module manages those relations and enforces the role check when an
activity instance is assigned.
"""

from __future__ import annotations

from typing import Optional

from ..core import datamodel
from ..db.database import Database
from ..errors import WorkflowError


class RoleManager:
    """CRUD over the user/group tables plus the assignment check."""

    def __init__(self, database: Database, allocator: datamodel.IdAllocator) -> None:
        self._database = database
        self._allocator = allocator

    # -- groups ------------------------------------------------------------
    def create_group(self, name: str) -> int:
        gid = self._allocator.next_id(datamodel.T_GROUP)
        self._database.insert(datamodel.T_GROUP, {"id": gid, "name": name})
        return gid

    def group_id(self, name: str) -> Optional[int]:
        for row in self._database.table(datamodel.T_GROUP).scan():
            if row["name"] == name:
                return row["id"]
        return None

    def ensure_group(self, name: str) -> int:
        existing = self.group_id(name)
        return existing if existing is not None else self.create_group(name)

    # -- users -------------------------------------------------------------
    def create_user(self, name: str, password: str | None = None) -> int:
        uid = self._allocator.next_id(datamodel.T_USER)
        self._database.insert(
            datamodel.T_USER, {"id": uid, "name": name, "password": password}
        )
        return uid

    def user_id(self, name: str) -> Optional[int]:
        for row in self._database.table(datamodel.T_USER).scan():
            if row["name"] == name:
                return row["id"]
        return None

    def ensure_user(self, name: str, password: str | None = None) -> int:
        existing = self.user_id(name)
        return existing if existing is not None else self.create_user(name, password)

    def add_to_group(self, user_id: int, group_id: int) -> None:
        for row in self._database.table(datamodel.T_USER_GROUP).scan():
            if row["user_id"] == user_id and row["group_id"] == group_id:
                return  # already a member
        self._database.insert(
            datamodel.T_USER_GROUP, {"user_id": user_id, "group_id": group_id}
        )

    def groups_of(self, user_id: int) -> set[int]:
        return {
            row["group_id"]
            for row in self._database.table(datamodel.T_USER_GROUP).scan()
            if row["user_id"] == user_id
        }

    def members_of(self, group_id: int) -> set[int]:
        return {
            row["user_id"]
            for row in self._database.table(datamodel.T_USER_GROUP).scan()
            if row["group_id"] == group_id
        }

    # -- the role check ------------------------------------------------------
    def check_assignment(self, user_id: int, group_id: Optional[int]) -> None:
        """Raise unless ``user_id`` may perform activities of ``group_id``."""
        if group_id is None:
            return  # unconstrained activity
        if group_id not in self.groups_of(user_id):
            user = self._database.table(datamodel.T_USER).by_key(user_id)
            group = self._database.table(datamodel.T_GROUP).by_key(group_id)
            user_name = user["name"] if user else user_id
            group_name = group["name"] if group else group_id
            raise WorkflowError(
                f"user {user_name!r} is not a member of group {group_name!r} "
                "required by this activity"
            )
