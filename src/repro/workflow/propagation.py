"""Update propagation: compiling UP statements into triggers.

"EdiFlow compiles the UP (update propagation) statements into
statement-level triggers which it installs in the underlying DBMS.
The trigger calls EdiFlow routines implementing the desired behavior"
(Section VI-B).  The four scopes of the paper's grammar:

========  =============================================================
``ra``    deliver the delta to *running* instances of the activity via
          the procedure's running handler ``p_h,r``
``ta-rp`` deliver to *terminated* activity instances whose process is
          still running, via the finished handler ``p_h,f``
``ta-tp`` deliver to terminated activity instances of *terminated*
          processes, via ``p_h,f``
``fa-rp`` make the delta visible to *future* instances of the activity
          within processes running now (their snapshot is refreshed)
========  =============================================================

The default, with no UP statement, is option 1 of Section V: new data is
ignored by every instance started before the update.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from ..db.table import ChangeSet
from ..errors import PropagationError
from ..ivm.delta import Delta
from .engine import WorkflowEngine
from .model import CallProcedure, ProcessDefinition, UpdatePropagation


@dataclass
class PropagationLog:
    """Record of one handler invocation (benchmarks and tests read this)."""

    relation: str
    activity: str
    scope: str
    process_instance_id: int
    activity_instance_id: int
    delta_size: int


class PropagationManager:
    """Installs UP triggers and routes deltas to handlers."""

    def __init__(self, engine: WorkflowEngine) -> None:
        self.engine = engine
        self.database = engine.database
        #: relation -> list of (definition, UP statement)
        self._routes: dict[str, list[tuple[ProcessDefinition, UpdatePropagation]]] = {}
        self._installed: set[str] = set()
        self.log: list[PropagationLog] = []
        self._reentrancy = threading.local()
        engine._propagation = self

    # ------------------------------------------------------------------
    def compile(self, definition: ProcessDefinition) -> None:
        """Install triggers for every UP statement of ``definition``."""
        for up in definition.propagations:
            activity = definition.activity(up.activity)
            if up.scope in ("ra", "ta-rp", "ta-tp") and not isinstance(
                activity, CallProcedure
            ):
                raise PropagationError(
                    f"UP scope {up.scope!r} targets activity {up.activity!r}, "
                    "which is not a procedure call and has no delta handlers"
                )
            self._routes.setdefault(up.relation, []).append((definition, up))
            if up.relation not in self._installed:
                self.database.on(
                    up.relation,
                    ("insert", "update", "delete"),
                    self._make_trigger(up.relation),
                    name=f"up_{up.relation}",
                )
                self._installed.add(up.relation)

    def _make_trigger(self, relation: str):
        def trigger(change: ChangeSet) -> None:
            self.on_change(relation, change)

        return trigger

    # ------------------------------------------------------------------
    def on_change(self, relation: str, change: ChangeSet) -> None:
        """Route one change set to every UP route for ``relation``."""
        if getattr(self._reentrancy, "active", None) == relation:
            # A handler is writing the very relation it reacts to; do not
            # loop (the TriggerManager depth guard is the hard backstop).
            return
        delta = Delta.from_changeset(change)
        if delta.is_empty():
            return
        self._reentrancy.active = relation
        try:
            for definition, up in self._routes.get(relation, ()):
                self._apply(definition, up, delta)
        finally:
            self._reentrancy.active = None

    def _apply(
        self, definition: ProcessDefinition, up: UpdatePropagation, delta: Delta
    ) -> None:
        if up.scope == "ra":
            self._apply_running(definition, up, delta)
        elif up.scope == "fa-rp":
            self._apply_future(definition, up, delta)
        elif up.scope == "ta-rp":
            self._apply_terminated(definition, up, delta, process_running=True)
        elif up.scope == "ta-tp":
            self._apply_terminated(definition, up, delta, process_running=False)
        else:  # pragma: no cover - scopes validated at construction
            raise PropagationError(f"unknown scope {up.scope!r}")

    def _apply_running(
        self, definition: ProcessDefinition, up: UpdatePropagation, delta: Delta
    ) -> None:
        for live in self.engine.live_instances_of_activity(
            definition.name, up.activity
        ):
            if not live.procedure.has_running_handler():
                raise PropagationError(
                    f"procedure {live.procedure.get_name()!r} has no running "
                    f"delta handler but UP ({up.relation}, {up.activity}, ra) fired"
                )
            outputs = live.procedure.on_delta_running(live.env, delta)
            self._store_outputs(live.activity, live.env, outputs)
            self.log.append(
                PropagationLog(
                    up.relation,
                    up.activity,
                    "ra",
                    live.execution.id,
                    live.instance.id,
                    len(delta),
                )
            )

    def _apply_terminated(
        self,
        definition: ProcessDefinition,
        up: UpdatePropagation,
        delta: Delta,
        process_running: bool,
    ) -> None:
        for finished in self.engine.finished_instances_of_activity(
            definition.name, up.activity, process_running
        ):
            if not finished.procedure.has_finished_handler():
                raise PropagationError(
                    f"procedure {finished.procedure.get_name()!r} has no "
                    f"finished delta handler but UP ({up.relation}, "
                    f"{up.activity}, {up.scope}) fired"
                )
            outputs = finished.procedure.on_delta_finished(finished.env, delta)
            self._store_outputs(finished.activity, finished.env, outputs)
            self.log.append(
                PropagationLog(
                    up.relation,
                    up.activity,
                    up.scope,
                    finished.execution.id,
                    finished.instance.id,
                    len(delta),
                )
            )

    def _apply_future(
        self, definition: ProcessDefinition, up: UpdatePropagation, delta: Delta
    ) -> None:
        """fa-rp: future instances of the activity, in running processes,
        must see the delta -- their snapshot is promoted to activity-start
        (which includes the delta's tuples)."""
        for execution in self.engine.running_instances_of(definition.name):
            execution.fresh_for.add(up.activity)
            self.log.append(
                PropagationLog(
                    up.relation, up.activity, "fa-rp", execution.id, -1, len(delta)
                )
            )

    def _store_outputs(
        self, activity: CallProcedure, env: Any, outputs: Optional[list[list[dict[str, Any]]]]
    ) -> None:
        """Handler outputs are injected back into the activity's output
        tables ("this framework allows one to recuperate the result of a
        handler invocation and inject it further into the process")."""
        if not outputs:
            return
        for table, rows in zip(activity.outputs, outputs):
            if rows:
                env.write_rows(table, rows)
