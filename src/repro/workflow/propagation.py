"""Update propagation: compiling UP statements into triggers.

"EdiFlow compiles the UP (update propagation) statements into
statement-level triggers which it installs in the underlying DBMS.
The trigger calls EdiFlow routines implementing the desired behavior"
(Section VI-B).  The four scopes of the paper's grammar:

========  =============================================================
``ra``    deliver the delta to *running* instances of the activity via
          the procedure's running handler ``p_h,r``
``ta-rp`` deliver to *terminated* activity instances whose process is
          still running, via the finished handler ``p_h,f``
``ta-tp`` deliver to terminated activity instances of *terminated*
          processes, via ``p_h,f``
``fa-rp`` make the delta visible to *future* instances of the activity
          within processes running now (their snapshot is refreshed)
========  =============================================================

The default, with no UP statement, is option 1 of Section V: new data is
ignored by every instance started before the update.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional

from ..db.table import ChangeSet
from ..errors import PropagationError
from ..ivm.delta import Delta
from ..sync.batching import BatchBuffer, IMMEDIATE, PropagationPolicy
from .engine import WorkflowEngine
from .model import CallProcedure, ProcessDefinition, UpdatePropagation


@dataclass
class PropagationLog:
    """Record of one handler invocation (benchmarks and tests read this)."""

    relation: str
    activity: str
    scope: str
    process_instance_id: int
    activity_instance_id: int
    delta_size: int


class PropagationManager:
    """Installs UP triggers and routes deltas to handlers."""

    def __init__(self, engine: WorkflowEngine) -> None:
        self.engine = engine
        self.database = engine.database
        #: relation -> list of (definition, UP statement)
        self._routes: dict[str, list[tuple[ProcessDefinition, UpdatePropagation]]] = {}
        self._installed: set[str] = set()
        self.log: list[PropagationLog] = []
        self._reentrancy = threading.local()
        # Propagation policies (Section V): relation -> policy; absent
        # means immediate.  Manual-policy relations flush when an
        # activity completes (P2, deferred-to-completion) -- the engine
        # calls :meth:`flush_all` from its completion hooks.
        self._policies: dict[str, PropagationPolicy] = {}
        self._buffer = BatchBuffer()
        self._policy_lock = threading.RLock()
        self.flushes = 0
        engine._propagation = self

    # ------------------------------------------------------------------
    # Propagation policies
    def set_policy(self, relation: str, policy: PropagationPolicy) -> None:
        """Configure how changes of ``relation`` reach UP handlers.

        Pending changes flush before the switch so none are stranded.
        """
        self.flush(relation)
        with self._policy_lock:
            if policy.buffers:
                self._policies[relation] = policy
            else:
                self._policies.pop(relation, None)

    def policy(self, relation: str) -> PropagationPolicy:
        with self._policy_lock:
            return self._policies.get(relation, IMMEDIATE)

    def pending_ops(self, relation: str) -> int:
        with self._policy_lock:
            return self._buffer.pending_ops(relation)

    def flush(self, relation: str) -> int:
        """Deliver the buffered net delta of ``relation`` to its routes.

        Returns the number of net operations delivered.  Called by the
        engine whenever an activity or execution completes, so handlers
        registered with scope ``ra`` still see the live instances.
        """
        with self._policy_lock:
            # Cheap empty check first: completion hooks call this on
            # every activity finish, usually with nothing buffered, and
            # must not touch the database lock in that case.
            if self._buffer.pending_ops(relation) == 0:
                return 0
        with self.database.lock:
            with self._policy_lock:
                coalescer = self._buffer.take(relation)
            if coalescer is None or coalescer.is_empty():
                return 0
            self.flushes += 1
            self._route(relation, coalescer.net_changeset())
            return coalescer.net_ops()

    def flush_all(self) -> int:
        """Flush every relation with buffered changes; returns net ops."""
        with self._policy_lock:
            relations = self._buffer.keys()
        return sum(self.flush(relation) for relation in relations)

    # ------------------------------------------------------------------
    def compile(self, definition: ProcessDefinition) -> None:
        """Install triggers for every UP statement of ``definition``."""
        for up in definition.propagations:
            activity = definition.activity(up.activity)
            if up.scope in ("ra", "ta-rp", "ta-tp") and not isinstance(
                activity, CallProcedure
            ):
                raise PropagationError(
                    f"UP scope {up.scope!r} targets activity {up.activity!r}, "
                    "which is not a procedure call and has no delta handlers"
                )
            self._routes.setdefault(up.relation, []).append((definition, up))
            if up.relation not in self._installed:
                self.database.on(
                    up.relation,
                    ("insert", "update", "delete"),
                    self._make_trigger(up.relation),
                    name=f"up_{up.relation}",
                )
                self._installed.add(up.relation)

    def _make_trigger(self, relation: str):
        def trigger(change: ChangeSet) -> None:
            self.on_change(relation, change)

        return trigger

    # ------------------------------------------------------------------
    def on_change(self, relation: str, change: ChangeSet) -> None:
        """Route one change set to every UP route for ``relation``.

        Under a buffering policy the change is coalesced instead; the
        net delta reaches the handlers on flush (threshold overflow or
        activity completion) as ONE delivery.
        """
        if getattr(self._reentrancy, "active", None) == relation:
            # A handler is writing the very relation it reacts to; do not
            # loop (the TriggerManager depth guard is the hard backstop).
            return
        with self._policy_lock:
            policy = self._policies.get(relation)
            if policy is not None:
                coalescer = self._buffer.add(relation, change)
                due = policy.should_flush(
                    coalescer.raw_ops, self._buffer.age_ms(relation)
                )
                if not due:
                    return
        if policy is not None:
            self.flush(relation)
            return
        self._route(relation, change)

    def _route(self, relation: str, change: ChangeSet) -> None:
        delta = Delta.from_changeset(change)
        if delta.is_empty():
            return
        self._reentrancy.active = relation
        try:
            for definition, up in self._routes.get(relation, ()):
                self._apply(definition, up, delta)
        finally:
            self._reentrancy.active = None

    def _apply(
        self, definition: ProcessDefinition, up: UpdatePropagation, delta: Delta
    ) -> None:
        if up.scope == "ra":
            self._apply_running(definition, up, delta)
        elif up.scope == "fa-rp":
            self._apply_future(definition, up, delta)
        elif up.scope == "ta-rp":
            self._apply_terminated(definition, up, delta, process_running=True)
        elif up.scope == "ta-tp":
            self._apply_terminated(definition, up, delta, process_running=False)
        else:  # pragma: no cover - scopes validated at construction
            raise PropagationError(f"unknown scope {up.scope!r}")

    def _apply_running(
        self, definition: ProcessDefinition, up: UpdatePropagation, delta: Delta
    ) -> None:
        for live in self.engine.live_instances_of_activity(
            definition.name, up.activity
        ):
            if not live.procedure.has_running_handler():
                raise PropagationError(
                    f"procedure {live.procedure.get_name()!r} has no running "
                    f"delta handler but UP ({up.relation}, {up.activity}, ra) fired"
                )
            outputs = live.procedure.on_delta_running(live.env, delta)
            self._store_outputs(live.activity, live.env, outputs)
            self.log.append(
                PropagationLog(
                    up.relation,
                    up.activity,
                    "ra",
                    live.execution.id,
                    live.instance.id,
                    len(delta),
                )
            )

    def _apply_terminated(
        self,
        definition: ProcessDefinition,
        up: UpdatePropagation,
        delta: Delta,
        process_running: bool,
    ) -> None:
        for finished in self.engine.finished_instances_of_activity(
            definition.name, up.activity, process_running
        ):
            if not finished.procedure.has_finished_handler():
                raise PropagationError(
                    f"procedure {finished.procedure.get_name()!r} has no "
                    f"finished delta handler but UP ({up.relation}, "
                    f"{up.activity}, {up.scope}) fired"
                )
            outputs = finished.procedure.on_delta_finished(finished.env, delta)
            self._store_outputs(finished.activity, finished.env, outputs)
            self.log.append(
                PropagationLog(
                    up.relation,
                    up.activity,
                    up.scope,
                    finished.execution.id,
                    finished.instance.id,
                    len(delta),
                )
            )

    def _apply_future(
        self, definition: ProcessDefinition, up: UpdatePropagation, delta: Delta
    ) -> None:
        """fa-rp: future instances of the activity, in running processes,
        must see the delta -- their snapshot is promoted to activity-start
        (which includes the delta's tuples)."""
        for execution in self.engine.running_instances_of(definition.name):
            execution.fresh_for.add(up.activity)
            self.log.append(
                PropagationLog(
                    up.relation, up.activity, "fa-rp", execution.id, -1, len(delta)
                )
            )

    def _store_outputs(
        self, activity: CallProcedure, env: Any, outputs: Optional[list[list[dict[str, Any]]]]
    ) -> None:
        """Handler outputs are injected back into the activity's output
        tables ("this framework allows one to recuperate the result of a
        handler invocation and inject it further into the process")."""
        if not outputs:
            return
        for table, rows in zip(activity.outputs, outputs):
            if rows:
                env.write_rows(table, rows)
