"""Scatter-plot mapping: data rows -> visual items.

"A user may want to visualize a scatter plot displaying the number of
publications per year on one machine and displaying the number of
publication by author on another machine.  The two are obtained from the
same data but using two different views" (Section VI-C).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..errors import VisError
from .attributes import VisualItem
from .color import CATEGORICAL_10, SequentialScale
from .scales import LinearScale, OrdinalScale, SqrtScale


class ScatterPlot:
    """Declarative scatter-plot specification.

    ``x``/``y`` name quantitative columns; ``size`` (optional) maps a
    column to dot area; ``color_by`` (optional) maps a categorical column
    to hues or, with ``color_scale='sequential'``, a quantitative column
    to shades.  ``compute`` turns data rows into :class:`VisualItem`s.
    """

    def __init__(
        self,
        x: str,
        y: str,
        key: str,
        size: Optional[str] = None,
        color_by: Optional[str] = None,
        color_scale: str = "categorical",
        label: Optional[str] = None,
        width: float = 800.0,
        height: float = 600.0,
    ) -> None:
        if color_scale not in ("categorical", "sequential"):
            raise VisError(f"unknown color_scale {color_scale!r}")
        self.x = x
        self.y = y
        self.key = key
        self.size = size
        self.color_by = color_by
        self.color_scale = color_scale
        self.label = label
        self.width = width
        self.height = height

    def compute(self, rows: Sequence[dict[str, Any]]) -> list[VisualItem]:
        """Assign visual attributes for ``rows`` (one item per row)."""
        if not rows:
            return []
        x_scale = LinearScale.fit([r[self.x] for r in rows], (0.0, self.width))
        # SVG-style y: larger data values sit higher (smaller y coordinate).
        y_scale = LinearScale.fit([r[self.y] for r in rows], (self.height, 0.0))
        size_scale: Optional[SqrtScale] = None
        if self.size is not None:
            values = [r[self.size] for r in rows if r[self.size] is not None]
            high = max(values) if values else 1.0
            size_scale = SqrtScale((0.0, max(high, 1e-9)), (2.0, 20.0))
        color_fn: Callable[[dict[str, Any]], Optional[str]]
        if self.color_by is None:
            color_fn = lambda row: None  # noqa: E731 - tiny closure
        elif self.color_scale == "categorical":
            ordinal = OrdinalScale(CATEGORICAL_10)
            color_fn = lambda row: ordinal(row[self.color_by])  # noqa: E731
        else:
            values = [r[self.color_by] for r in rows if r[self.color_by] is not None]
            low = min(values) if values else 0.0
            high = max(values) if values else 1.0
            sequential = SequentialScale((low, high))
            color_fn = lambda row: sequential(row[self.color_by])  # noqa: E731
        items = []
        for row in rows:
            if row[self.x] is None or row[self.y] is None:
                continue
            radius = size_scale(row[self.size] or 0.0) if size_scale else None
            items.append(
                VisualItem(
                    obj_id=row[self.key],
                    x=x_scale(row[self.x]),
                    y=y_scale(row[self.y]),
                    width=radius,
                    height=radius,
                    color=color_fn(row),
                    label=str(row[self.label]) if self.label else None,
                )
            )
        return items
