"""Squarified treemap layout.

The US-election application's main view is "a TreeMap visualisation...
computed over the database" (Section III, Figure 1).  This is the
standard squarify algorithm (Bruls, Huizing & van Wijk): lay items into
rows/columns so that cell aspect ratios stay close to 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import LayoutError


@dataclass(frozen=True)
class TreemapCell:
    """One laid-out rectangle."""

    key: Any
    value: float
    x: float
    y: float
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect(self) -> float:
        if self.width == 0 or self.height == 0:
            return float("inf")
        return max(self.width / self.height, self.height / self.width)


def _worst_aspect(row: list[float], side: float) -> float:
    """Worst cell aspect ratio if ``row`` areas share a strip on ``side``."""
    total = sum(row)
    if total == 0 or side == 0:
        return float("inf")
    strip = total / side  # thickness of the strip
    worst = 0.0
    for area in row:
        length = area / strip
        aspect = max(strip / length, length / strip) if length > 0 else float("inf")
        worst = max(worst, aspect)
    return worst


def squarify(
    items: Sequence[tuple[Any, float]],
    x: float,
    y: float,
    width: float,
    height: float,
) -> list[TreemapCell]:
    """Lay out ``(key, value)`` items inside the given rectangle.

    Values must be non-negative; zero-valued items produce zero-area
    cells at the end of the layout.  Items are laid out in decreasing
    value order (the algorithm's requirement for good aspect ratios).
    """
    if width < 0 or height < 0:
        raise LayoutError(f"negative extent {width}x{height}")
    for key, value in items:
        if value < 0:
            raise LayoutError(f"negative treemap value {value!r} for {key!r}")
    positives = sorted(
        (item for item in items if item[1] > 0), key=lambda kv: kv[1], reverse=True
    )
    zeros = [item for item in items if item[1] == 0]
    total = sum(v for _, v in positives)
    cells: list[TreemapCell] = []
    if total > 0 and width > 0 and height > 0:
        full_area = width * height
        scaled = [(k, v / total * full_area) for k, v in positives]
        cells.extend(_layout(scaled, x, y, width, height))
        # Restore original (unscaled) values in the output.
        by_key = {k: v for k, v in positives}
        cells = [
            TreemapCell(c.key, by_key[c.key], c.x, c.y, c.width, c.height)
            for c in cells
        ]
    for key, value in zeros:
        cells.append(TreemapCell(key, value, x + width, y + height, 0.0, 0.0))
    return cells


def _layout(
    scaled: list[tuple[Any, float]], x: float, y: float, width: float, height: float
) -> list[TreemapCell]:
    cells: list[TreemapCell] = []
    remaining = list(scaled)
    while remaining:
        side = min(width, height)
        if side <= 0:
            # Degenerate leftover space: stack zero-thickness cells.
            for key, area in remaining:
                cells.append(TreemapCell(key, area, x, y, 0.0, 0.0))
            break
        row: list[tuple[Any, float]] = [remaining.pop(0)]
        areas = [row[0][1]]
        while remaining:
            candidate = areas + [remaining[0][1]]
            if _worst_aspect(candidate, side) <= _worst_aspect(areas, side):
                item = remaining.pop(0)
                row.append(item)
                areas.append(item[1])
            else:
                break
        strip_total = sum(areas)
        strip = strip_total / side
        # Lay the row along the shorter side.
        offset = 0.0
        if width >= height:
            # Vertical strip at the left.
            for key, area in row:
                length = area / strip if strip > 0 else 0.0
                cells.append(TreemapCell(key, area, x, y + offset, strip, length))
                offset += length
            x += strip
            width -= strip
        else:
            # Horizontal strip at the top.
            for key, area in row:
                length = area / strip if strip > 0 else 0.0
                cells.append(TreemapCell(key, area, x + offset, y, length, strip))
                offset += length
            y += strip
            height -= strip
    return cells


@dataclass(frozen=True)
class NestedCell:
    """One rectangle of a hierarchical treemap, with its depth and path."""

    path: tuple[Any, ...]
    value: float
    x: float
    y: float
    width: float
    height: float
    depth: int
    is_leaf: bool

    @property
    def key(self) -> Any:
        return self.path[-1]

    @property
    def area(self) -> float:
        return self.width * self.height


def squarify_nested(
    tree: dict[Any, Any],
    x: float,
    y: float,
    width: float,
    height: float,
    padding: float = 0.0,
    _depth: int = 0,
    _path: tuple[Any, ...] = (),
) -> list[NestedCell]:
    """Hierarchical squarified treemap.

    ``tree`` maps keys to either a number (leaf weight) or a nested dict
    (subtree).  Each internal node gets a cell sized by its subtree
    total, then its children are squarified inside it (inset by
    ``padding`` on every side, so group borders stay visible).

    Returns cells for *every* node, parents before children, so a
    renderer can paint group backgrounds first.
    """
    if padding < 0:
        raise LayoutError(f"padding must be >= 0, got {padding}")

    def total(node: Any) -> float:
        if isinstance(node, dict):
            return sum(total(child) for child in node.values())
        value = float(node)
        if value < 0:
            raise LayoutError(f"negative treemap value {node!r}")
        return value

    items = [(key, total(node)) for key, node in tree.items()]
    cells = squarify(items, x, y, width, height)
    out: list[NestedCell] = []
    for cell in cells:
        node = tree[cell.key]
        path = _path + (cell.key,)
        is_leaf = not isinstance(node, dict)
        out.append(
            NestedCell(
                path=path,
                value=cell.value,
                x=cell.x,
                y=cell.y,
                width=cell.width,
                height=cell.height,
                depth=_depth,
                is_leaf=is_leaf,
            )
        )
        if not is_leaf and cell.width > 2 * padding and cell.height > 2 * padding:
            out.extend(
                squarify_nested(
                    node,
                    cell.x + padding,
                    cell.y + padding,
                    cell.width - 2 * padding,
                    cell.height - 2 * padding,
                    padding=padding,
                    _depth=_depth + 1,
                    _path=path,
                )
            )
    return out


def treemap_rows(
    rows: Sequence[dict[str, Any]],
    key: str,
    value: str,
    width: float,
    height: float,
    x: float = 0.0,
    y: float = 0.0,
) -> list[TreemapCell]:
    """Convenience: squarify a list of row dicts by two column names."""
    items = [(row[key], float(row[value] or 0.0)) for row in rows]
    return squarify(items, x, y, width, height)
