"""Headless visualization toolkit (the InfoVis-toolkit stand-in)."""

from .attributes import VisualAttributesStore, VisualItem
from .color import (
    CATEGORICAL_10,
    DivergingScale,
    SequentialScale,
    categorical,
    darken,
    lerp,
    lighten,
)
from .component import VisualizationManager
from .display import Display
from .layout import FruchtermanReingold, Graph, LayoutResult, LinLogLayout
from .scales import BandScale, LinearScale, OrdinalScale, SqrtScale
from .scatter import ScatterPlot
from .treemap import NestedCell, TreemapCell, squarify, squarify_nested, treemap_rows
from .views import ViewBinding, ViewManager

__all__ = [
    "BandScale",
    "CATEGORICAL_10",
    "DivergingScale",
    "Display",
    "FruchtermanReingold",
    "Graph",
    "LayoutResult",
    "LinLogLayout",
    "LinearScale",
    "NestedCell",
    "OrdinalScale",
    "ScatterPlot",
    "SequentialScale",
    "SqrtScale",
    "TreemapCell",
    "ViewBinding",
    "ViewManager",
    "VisualAttributesStore",
    "VisualItem",
    "VisualizationManager",
    "categorical",
    "darken",
    "lerp",
    "lighten",
    "squarify",
    "squarify_nested",
    "treemap_rows",
]
