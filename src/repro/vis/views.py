"""Multi-view management (Figure 6 of the paper).

"Ediflow can maintain several visualization views for one visualization...
the visual attributes can be shared by several visualization views and by
several users... the visualization component computes and fills the
visual attributes only once regardless of the number of generated views.
For each view, a display component is activated to show the data on the
associated machine."

A :class:`ViewManager` owns the shared VisualAttributes table side; each
:class:`ViewBinding` couples one display to one synchronized mirror of
that table (optionally partial -- the iPhone/laptop/WILD fractions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..core import datamodel
from ..db.database import Database
from ..sync.client import SyncClient
from ..sync.memtable import MemoryTable, RowPredicate
from ..sync.server import SyncServer
from .attributes import VisualAttributesStore, VisualItem
from .component import VisualizationManager
from .display import Display


@dataclass
class ViewBinding:
    """One display view bound to the shared VisualAttributes table."""

    name: str
    component_id: int
    client: SyncClient
    memtable: MemoryTable
    display: Display

    def refresh(self) -> int:
        """Pull pending changes and redraw; returns #rows applied.

        The redraw is one display-list transaction: however many changes
        the pull folded in, the display commits a single frame.
        """
        self.client.refresh(self.memtable.table)
        rows = [
            row
            for row in self.memtable.all_rows()
            if row["component_id"] == self.component_id
        ]
        return self.display.apply_snapshot(rows)


class ViewManager:
    """Fans one computed visualization out to many display views."""

    def __init__(self, database: Database, server: Optional[SyncServer] = None) -> None:
        self.database = database
        self.visualizations = VisualizationManager(database)
        self.attributes: VisualAttributesStore = self.visualizations.attributes
        self.server = server or SyncServer(database, use_sockets=False)
        self.views: list[ViewBinding] = []

    # ------------------------------------------------------------------
    def add_view(
        self,
        name: str,
        component_id: int,
        fraction: float = 1.0,
        predicate: Optional[RowPredicate] = None,
        width: float = 800.0,
        height: float = 600.0,
    ) -> ViewBinding:
        """Create one display view over the shared attribute table.

        ``fraction`` keeps only that share of rows in the view's mirror
        (the paper's 10% iPhone / 30% laptop / 100% wall example).
        """
        client = SyncClient(self.server)
        memtable = client.mirror(
            datamodel.T_VISUAL_ATTRIBUTES,
            fraction=fraction,
            predicate=predicate,
        )
        display = Display(name=name, width=width, height=height)
        binding = ViewBinding(name, component_id, client, memtable, display)
        binding.refresh()
        self.views.append(binding)
        return binding

    def publish(self, component_id: int, items: Sequence[VisualItem]) -> int:
        """Compute-once write of visual attributes (shared by all views)."""
        return self.attributes.write(component_id, items)

    def publish_positions(
        self, component_id: int, positions: dict[Any, tuple[float, float]]
    ) -> int:
        return self.attributes.write_positions(component_id, positions)

    def refresh_all(self) -> dict[str, int]:
        """Refresh every view; returns rows applied per view name."""
        return {view.name: view.refresh() for view in self.views}

    def close(self) -> None:
        for view in self.views:
            view.client.close()
        self.views.clear()
