"""The VisualAttributes store.

"A visualization can be seen as an assignment of visual attributes (e.g.,
X and Y coordinates, color, size) to a given set of data items...
visualizations have high added value and it must be easy to store and
share them" (Section I).  This module reads/writes the shared
``ediflow_visual_attributes`` table (Figure 3 / Figure 6): the layout
procedure fills it once, and any number of display views render from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from ..core import datamodel
from ..db.database import Database
from ..db.expression import col
from ..db.schema import TID


@dataclass
class VisualItem:
    """One entity's visual attributes within one component."""

    obj_id: Any
    x: Optional[float] = None
    y: Optional[float] = None
    width: Optional[float] = None
    height: Optional[float] = None
    color: Optional[str] = None
    label: Optional[str] = None
    selected: bool = False

    def to_row(self, component_id: int, item_id: int) -> dict[str, Any]:
        return {
            "id": item_id,
            "component_id": component_id,
            "obj_id": self.obj_id,
            "x": self.x,
            "y": self.y,
            "width": self.width,
            "height": self.height,
            "color": self.color,
            "label": self.label,
            "selected": self.selected,
        }

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "VisualItem":
        return cls(
            obj_id=row["obj_id"],
            x=row["x"],
            y=row["y"],
            width=row["width"],
            height=row["height"],
            color=row["color"],
            label=row["label"],
            selected=bool(row["selected"]),
        )


class VisualAttributesStore:
    """CRUD over the shared VisualAttributes table.

    Items are keyed by ``(component_id, obj_id)``.  Batch upserts go
    through ``insert_many``/``update`` so one call produces one
    statement-level notification -- the write path Figure 8 measures
    ("Inserting tuples in VisualAttributes table").
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        datamodel.install_core_schema(database)
        self._allocator = datamodel.IdAllocator(database)
        #: component_id -> (obj_id -> (row id, tid)); lazily built, then
        #: kept current by this store's own writes.  The store assumes it
        #: is the only writer of the VisualAttributes table (it is, in
        #: every EdiFlow deployment: procedures go through it).  Caching
        #: the tid makes updates point operations instead of scans.
        self._cache: dict[int, dict[Any, tuple[int, int]]] = {}

    @property
    def table_name(self) -> str:
        return datamodel.T_VISUAL_ATTRIBUTES

    # ------------------------------------------------------------------
    def write(self, component_id: int, items: Sequence[VisualItem]) -> int:
        """Upsert a batch of items for one component; returns rows written.

        New ``obj_id``s are inserted (one statement for the whole batch);
        existing ones are updated in place.
        """
        if not items:
            return 0
        existing = self._index(component_id)
        inserts: list[dict[str, Any]] = []
        insert_items: list[VisualItem] = []
        updates: list[tuple[int, VisualItem]] = []
        for item in items:
            key = item.obj_id
            if key in existing:
                updates.append((existing[key][1], item))
            else:
                row_id = self._allocator.next_id(datamodel.T_VISUAL_ATTRIBUTES)
                inserts.append(item.to_row(component_id, row_id))
                insert_items.append(item)
        if inserts:
            stored = self.database.insert_many(
                datamodel.T_VISUAL_ATTRIBUTES, inserts
            )
            for item, row in zip(insert_items, stored):
                existing[item.obj_id] = (row["id"], row[TID])
        for tid, item in updates:
            self.database.update_by_tid(
                datamodel.T_VISUAL_ATTRIBUTES,
                tid,
                {
                    "x": item.x,
                    "y": item.y,
                    "width": item.width,
                    "height": item.height,
                    "color": item.color,
                    "label": item.label,
                    "selected": item.selected,
                },
            )
        return len(items)

    def write_positions(
        self, component_id: int, positions: dict[Any, tuple[float, float]]
    ) -> int:
        """Fast path for layout streaming: update only x/y."""
        items = [
            VisualItem(obj_id=obj_id, x=xy[0], y=xy[1])
            for obj_id, xy in positions.items()
        ]
        existing = self._index(component_id)
        inserts = []
        insert_items = []
        for item in items:
            if item.obj_id in existing:
                self.database.update_by_tid(
                    datamodel.T_VISUAL_ATTRIBUTES,
                    existing[item.obj_id][1],
                    {"x": item.x, "y": item.y},
                )
            else:
                row_id = self._allocator.next_id(datamodel.T_VISUAL_ATTRIBUTES)
                inserts.append(item.to_row(component_id, row_id))
                insert_items.append(item)
        if inserts:
            stored = self.database.insert_many(
                datamodel.T_VISUAL_ATTRIBUTES, inserts
            )
            for item, row in zip(insert_items, stored):
                existing[item.obj_id] = (row["id"], row[TID])
        return len(items)

    def _index(self, component_id: int) -> dict[Any, tuple[int, int]]:
        """obj_id -> (row id, tid) for one component (cached)."""
        cached = self._cache.get(component_id)
        if cached is None:
            cached = {}
            for row in self.database.table(datamodel.T_VISUAL_ATTRIBUTES).scan():
                if row["component_id"] == component_id:
                    cached[row["obj_id"]] = (row["id"], row[TID])
            self._cache[component_id] = cached
        return cached

    # ------------------------------------------------------------------
    def read(self, component_id: int) -> list[VisualItem]:
        return [
            VisualItem.from_row(row)
            for row in self.database.table(datamodel.T_VISUAL_ATTRIBUTES).scan()
            if row["component_id"] == component_id
        ]

    def get(self, component_id: int, obj_id: Any) -> Optional[VisualItem]:
        for row in self.database.table(datamodel.T_VISUAL_ATTRIBUTES).scan():
            if row["component_id"] == component_id and row["obj_id"] == obj_id:
                return VisualItem.from_row(row)
        return None

    def select(self, component_id: int, obj_ids: Iterable[Any], selected: bool = True) -> int:
        """Flip the selection flag -- "whether the data instance is
        currently selected by a given visualisation component (which
        typically triggers the recomputation of the other components)"."""
        wanted = set(obj_ids)
        count = 0
        for row in list(self.database.table(datamodel.T_VISUAL_ATTRIBUTES).scan()):
            if row["component_id"] == component_id and row["obj_id"] in wanted:
                self.database.update(
                    datamodel.T_VISUAL_ATTRIBUTES,
                    {"selected": selected},
                    col("id") == row["id"],
                )
                count += 1
        return count

    def selected_ids(self, component_id: int) -> list[Any]:
        """Obj ids currently selected on one component (brush sources
        feed these to forward-lineage queries)."""
        return [
            row["obj_id"]
            for row in self.database.table(datamodel.T_VISUAL_ATTRIBUTES).scan()
            if row["component_id"] == component_id and row["selected"]
        ]

    def remove(self, component_id: int, obj_ids: Iterable[Any]) -> int:
        wanted = set(obj_ids)
        predicate = (col("component_id") == component_id) & col("obj_id").is_in(wanted)
        removed = self.database.delete(datamodel.T_VISUAL_ATTRIBUTES, predicate)
        cached = self._cache.get(component_id)
        if cached is not None:
            for obj_id in wanted:
                cached.pop(obj_id, None)
        return removed

    def clear(self, component_id: int) -> int:
        self._cache.pop(component_id, None)
        return self.database.delete(
            datamodel.T_VISUAL_ATTRIBUTES, col("component_id") == component_id
        )
