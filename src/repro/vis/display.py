"""Headless display: the terminal stage of the visualization pipeline.

A :class:`Display` stands in for one screen of the paper's deployment
(laptop, iPhone, or one WILD tile).  It keeps a display list of visual
items keyed by object id and can render to SVG for inspection.  The
Figure-8 experiment's final step -- "inserting new nodes into the display
screen" -- is :meth:`apply_rows`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterable, Iterator

from ..obs.runtime import OBS
from .attributes import VisualItem


class Display:
    """One render surface fed from VisualAttributes rows."""

    def __init__(self, name: str = "display", width: float = 800, height: float = 600) -> None:
        self.name = name
        self.width = width
        self.height = height
        self.items: dict[Any, VisualItem] = {}
        # Render bookkeeping (benchmarks read these).
        self.inserted = 0
        self.updated = 0
        self.removed = 0
        self.refreshes = 0
        #: Display-list transactions committed (one frame each).
        self.transactions = 0
        # Open transaction() nesting depth; while positive, refresh()
        # only *requests* a frame -- the outermost exit commits one.
        self._txn_depth = 0
        self._txn_refresh_requested = False

    # ------------------------------------------------------------------
    def apply_rows(self, rows: Iterable[dict[str, Any]]) -> int:
        """Fold VisualAttributes rows into the display list."""
        if not OBS.enabled:
            return self._apply_rows_impl(rows)
        with OBS.tracer.span(
            "vis.display.apply", tags={"display": self.name}
        ) as span:
            count = self._apply_rows_impl(rows)
            span.set_tag("rows", count)
        OBS.metrics.histogram("vis.display_apply_ms", display=self.name).observe(
            span.duration_ms
        )
        return count

    def _apply_rows_impl(self, rows: Iterable[dict[str, Any]]) -> int:
        count = 0
        for row in rows:
            item = VisualItem.from_row(row)
            if item.obj_id in self.items:
                self.updated += 1
            else:
                self.inserted += 1
            self.items[item.obj_id] = item
            count += 1
        return count

    def apply_items(self, items: Iterable[VisualItem]) -> int:
        count = 0
        for item in items:
            if item.obj_id in self.items:
                self.updated += 1
            else:
                self.inserted += 1
            self.items[item.obj_id] = item
            count += 1
        return count

    def remove_objects(self, obj_ids: Iterable[Any]) -> int:
        count = 0
        for obj_id in obj_ids:
            if self.items.pop(obj_id, None) is not None:
                self.removed += 1
                count += 1
        return count

    def clear(self) -> None:
        self.items.clear()

    def __len__(self) -> int:
        return len(self.items)

    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Mark one display refresh (a frame); returns the frame number.

        Real toolkits redraw "10 times per second" (Section I); headless,
        a refresh just counts -- the data movement it would render is
        already in ``items``.  Inside a :meth:`transaction` the frame is
        *deferred*: however many refreshes the batch requests, exactly
        one is committed when the outermost transaction closes.
        """
        if self._txn_depth > 0:
            self._txn_refresh_requested = True
            return self.refreshes
        self.refreshes += 1
        return self.refreshes

    @contextmanager
    def transaction(self) -> Iterator["Display"]:
        """Apply a whole batch of display-list edits as one frame.

        Section VII: periodic propagation amortizes layout/render cost --
        a flush of 4096 coalesced changes must redraw once, not 4096
        times.  Reentrant; only the outermost exit commits the frame (and
        only if something inside asked for one).
        """
        self._txn_depth += 1
        try:
            yield self
        finally:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                requested = self._txn_refresh_requested
                self._txn_refresh_requested = False
                self.transactions += 1
                if requested:
                    self.refreshes += 1

    def apply_snapshot(self, rows: Iterable[dict[str, Any]]) -> int:
        """Replace the display list with ``rows`` in one transaction.

        Clear + apply + a single frame: the batched equivalent of the
        clear/apply_rows/refresh sequence view bindings used to issue
        per update.
        """
        with self.transaction():
            self.clear()
            count = self.apply_rows(rows)
            self.refresh()
        return count

    # ------------------------------------------------------------------
    def bounds(self) -> tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) over placed items."""
        xs = [i.x for i in self.items.values() if i.x is not None]
        ys = [i.y for i in self.items.values() if i.y is not None]
        if not xs or not ys:
            return (0.0, 0.0, 1.0, 1.0)
        return (min(xs), min(ys), max(xs), max(ys))

    def render_svg(self) -> str:
        """Render the display list to a standalone SVG string."""
        min_x, min_y, max_x, max_y = self.bounds()
        span_x = max(max_x - min_x, 1e-9)
        span_y = max(max_y - min_y, 1e-9)
        margin = 10.0

        def sx(x: float) -> float:
            return margin + (x - min_x) / span_x * (self.width - 2 * margin)

        def sy(y: float) -> float:
            return margin + (y - min_y) / span_y * (self.height - 2 * margin)

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width:.0f}" '
            f'height="{self.height:.0f}" viewBox="0 0 {self.width:.0f} {self.height:.0f}">'
        ]
        for item in self.items.values():
            if item.x is None or item.y is None:
                continue
            color = item.color or "#4e79a7"
            if item.width and item.height:
                parts.append(
                    f'<rect x="{sx(item.x):.2f}" y="{sy(item.y):.2f}" '
                    f'width="{max(item.width, 0):.2f}" height="{max(item.height, 0):.2f}" '
                    f'fill="{color}" stroke="#ffffff"/>'
                )
            else:
                radius = 3.0
                parts.append(
                    f'<circle cx="{sx(item.x):.2f}" cy="{sy(item.y):.2f}" '
                    f'r="{radius}" fill="{color}"/>'
                )
            if item.label:
                parts.append(
                    f'<text x="{sx(item.x):.2f}" y="{sy(item.y) - 4:.2f}" '
                    f'font-size="9">{_escape(item.label)}</text>'
                )
        parts.append("</svg>")
        return "\n".join(parts)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
