"""Visualizations and their components.

"A Visualization consists of one or more VisualisationComponents.  Each
component offers an individual perspective over a set of entity
instances... Components of a same visualisation correspond to different
ways of rendering the same objects" (Section IV-A).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core import datamodel
from ..db.database import Database
from ..errors import VisError
from .attributes import VisualAttributesStore, VisualItem


class VisualizationManager:
    """Creates and looks up visualizations and components."""

    def __init__(self, database: Database) -> None:
        self.database = database
        datamodel.install_core_schema(database)
        self._allocator = datamodel.IdAllocator(database)
        self.attributes = VisualAttributesStore(database)

    # ------------------------------------------------------------------
    def create_visualization(self, name: str) -> int:
        vis_id = self._allocator.next_id(datamodel.T_VISUALIZATION)
        self.database.insert(
            datamodel.T_VISUALIZATION, {"id": vis_id, "name": name}
        )
        return vis_id

    def create_component(
        self, visualization_id: int, component_type: str, label: Optional[str] = None
    ) -> int:
        if self.database.table(datamodel.T_VISUALIZATION).by_key(visualization_id) is None:
            raise VisError(f"no visualization with id {visualization_id}")
        comp_id = self._allocator.next_id(datamodel.T_VIS_COMPONENT)
        self.database.insert(
            datamodel.T_VIS_COMPONENT,
            {
                "id": comp_id,
                "visualization_id": visualization_id,
                "label": label,
                "type": component_type,
            },
        )
        return comp_id

    def components_of(self, visualization_id: int) -> list[dict[str, Any]]:
        return [
            dict(row)
            for row in self.database.table(datamodel.T_VIS_COMPONENT).rows()
            if row["visualization_id"] == visualization_id
        ]

    def visualization_named(self, name: str) -> Optional[int]:
        for row in self.database.table(datamodel.T_VISUALIZATION).scan():
            if row["name"] == name:
                return row["id"]
        return None

    # ------------------------------------------------------------------
    def selected_objects(self, component_id: int) -> list[Any]:
        """Which objects are currently selected in a component -- the
        paper's example catalog query: "which is the R tuple currently
        selected by the user from the visualization component VC1"."""
        return [
            row["obj_id"]
            for row in self.database.table(datamodel.T_VISUAL_ATTRIBUTES).scan()
            if row["component_id"] == component_id and row["selected"]
        ]

    def write_items(self, component_id: int, items: list[VisualItem]) -> int:
        return self.attributes.write(component_id, items)

    def read_items(self, component_id: int) -> list[VisualItem]:
        return self.attributes.read(component_id)
