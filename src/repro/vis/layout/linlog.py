"""LinLog energy-model graph layout (Noack 2003) with delta handlers.

Section VII-B of the paper: "We use the Edge LinLog algorithm of Noack
which is among the very best for social networks... What makes EdgeLinLog
even more interesting in our context is that it allows for effective
delta handlers."

The node-repulsion LinLog energy of a layout ``p`` is

    U(p) = sum_{(u,v) in E} w_uv * ||p_u - p_v||
         - sum_{u < v} ln ||p_u - p_v||

Minimizing attraction (linear) against repulsion (logarithmic) separates
clusters; we minimize with damped force iterations, vectorized with
numpy and chunked so the O(n^2) repulsion never materializes an n x n
matrix for large graphs.

Incremental relayout mirrors the paper exactly: keep old positions,
place new nodes near the barycenter of their already-laid-out neighbors
(random positions for disconnected ones), and iterate -- "it terminates
much faster since most of the nodes will only move slightly".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ...obs.runtime import OBS
from .graph import Graph, NodeId

#: Called after every iteration with (iteration, positions-by-node, energy).
#: EdiFlow uses it to stream positions to the database "at any rate until
#: the algorithm stops", keeping the system reactive (Section VII-B).
IterationCallback = Callable[[int, dict[NodeId, tuple[float, float]], float], None]


@dataclass
class LayoutResult:
    """Outcome of one layout run."""

    positions: dict[NodeId, tuple[float, float]]
    iterations: int
    energy: float
    converged: bool
    energy_trace: list[float] = field(default_factory=list)


class LinLogLayout:
    """Stateful LinLog layout engine.

    Keeps positions between runs so :meth:`update` (the delta handler
    path) can relayout incrementally.  Deterministic given ``seed``.
    """

    def __init__(
        self,
        graph: Optional[Graph] = None,
        seed: int = 42,
        repulsion: float = 1.0,
        step: float = 0.05,
        tolerance: float = 1e-3,
        chunk_size: int = 512,
    ) -> None:
        self.graph = graph or Graph()
        self.rng = np.random.default_rng(seed)
        self.repulsion = repulsion
        self.step = step
        self.tolerance = tolerance
        self.chunk_size = chunk_size
        self.positions: dict[NodeId, tuple[float, float]] = {}
        self.total_iterations = 0

    # ------------------------------------------------------------------
    # Position management
    def _random_position(self) -> tuple[float, float]:
        xy = self.rng.uniform(-1.0, 1.0, size=2)
        return (float(xy[0]), float(xy[1]))

    def seed_positions(self) -> None:
        """Assign a random position to every node lacking one."""
        for node in self.graph.nodes():
            if node not in self.positions:
                self.positions[node] = self._random_position()

    def place_near_neighbors(self, nodes: Sequence[NodeId], jitter: float = 0.05) -> None:
        """Place new nodes at the barycenter of their laid-out neighbors.

        Disconnected additions get random positions -- both behaviors
        straight from Section VII-B.
        """
        for node in nodes:
            placed_neighbors = [
                self.positions[m]
                for m in self.graph.neighbors(node)
                if m in self.positions
            ]
            if placed_neighbors:
                cx = sum(p[0] for p in placed_neighbors) / len(placed_neighbors)
                cy = sum(p[1] for p in placed_neighbors) / len(placed_neighbors)
                dx, dy = self.rng.uniform(-jitter, jitter, size=2)
                self.positions[node] = (cx + float(dx), cy + float(dy))
            else:
                self.positions[node] = self._random_position()

    def discard_missing(self) -> None:
        """Drop positions of nodes no longer in the graph."""
        live = set(self.graph.nodes())
        for node in list(self.positions):
            if node not in live:
                del self.positions[node]

    # ------------------------------------------------------------------
    # Core iteration (vectorized)
    def _prepare_arrays(
        self,
    ) -> tuple[list[NodeId], np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        nodes = self.graph.nodes()
        index = {node: i for i, node in enumerate(nodes)}
        pos = np.array([self.positions[n] for n in nodes], dtype=np.float64)
        sources, targets, weights = [], [], []
        for u, v, w in self.graph.edges():
            sources.append(index[u])
            targets.append(index[v])
            weights.append(w)
        return (
            nodes,
            pos,
            np.asarray(sources, dtype=np.intp),
            np.asarray(targets, dtype=np.intp),
            np.asarray(weights, dtype=np.float64),
        )

    @staticmethod
    def _attraction(pos: np.ndarray, src: np.ndarray, dst: np.ndarray, w: np.ndarray) -> tuple[np.ndarray, float]:
        """Force and energy of the linear attraction term."""
        forces = np.zeros_like(pos)
        if len(src) == 0:
            return forces, 0.0
        delta = pos[dst] - pos[src]
        dist = np.sqrt((delta**2).sum(axis=1))
        dist = np.maximum(dist, 1e-9)
        # d/dp ||p_u - p_v|| = unit vector; attraction pulls together.
        unit = delta / dist[:, None]
        pull = unit * w[:, None]
        np.add.at(forces, src, pull)
        np.add.at(forces, dst, -pull)
        energy = float((w * dist).sum())
        return forces, energy

    def _repulsion_chunked(self, pos: np.ndarray) -> tuple[np.ndarray, float]:
        """Force and energy of the logarithmic repulsion, O(n^2) chunked."""
        n = len(pos)
        forces = np.zeros_like(pos)
        energy = 0.0
        if n < 2:
            return forces, energy
        chunk = max(1, self.chunk_size)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            block = pos[start:stop]  # (b, 2)
            delta = block[:, None, :] - pos[None, :, :]  # (b, n, 2)
            dist2 = (delta**2).sum(axis=2)
            # Ignore self-pairs.
            rows = np.arange(start, stop) - start
            cols = np.arange(start, stop)
            dist2[rows, cols] = np.inf
            dist2 = np.maximum(dist2, 1e-12)
            # grad of -ln||d|| wrt block position: -delta / dist^2.
            push = (delta / dist2[:, :, None]).sum(axis=1)
            forces[start:stop] += self.repulsion * push
            with np.errstate(divide="ignore"):
                logs = 0.5 * np.log(dist2)
            logs[rows, cols] = 0.0
            energy -= 0.5 * self.repulsion * float(logs.sum())
        return forces, energy

    def _iterate_once(
        self,
        pos: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        w: np.ndarray,
        step: float,
    ) -> tuple[np.ndarray, float, float]:
        """One damped force step; returns (new_pos, energy, max_move)."""
        attraction, e_att = self._attraction(pos, src, dst, w)
        repulsion, e_rep = self._repulsion_chunked(pos)
        force = attraction + repulsion
        # Cap per-node displacement for stability.
        move = force * step
        norms = np.sqrt((move**2).sum(axis=1))
        cap = 0.5
        too_fast = norms > cap
        if too_fast.any():
            move[too_fast] *= (cap / norms[too_fast])[:, None]
        new_pos = pos + move
        max_move = float(norms.clip(max=cap).max()) if len(norms) else 0.0
        return new_pos, e_att + e_rep, max_move

    # ------------------------------------------------------------------
    # Public entry points
    def run(
        self,
        max_iterations: int = 200,
        on_iteration: Optional[IterationCallback] = None,
        step: Optional[float] = None,
    ) -> LayoutResult:
        """Initial computation: random seed positions, iterate to
        convergence (energy change below tolerance) or ``max_iterations``."""
        self.seed_positions()
        self.discard_missing()
        return self._minimize(max_iterations, on_iteration, step or self.step)

    def update(
        self,
        added_nodes: Sequence[NodeId] = (),
        removed_nodes: Sequence[NodeId] = (),
        max_iterations: int = 200,
        on_iteration: Optional[IterationCallback] = None,
        step: Optional[float] = None,
    ) -> LayoutResult:
        """Delta-handler path: incremental relayout after a graph change.

        The caller has already applied the change to ``self.graph``;
        ``added_nodes``/``removed_nodes`` tell the engine which positions
        to create/discard.  Existing positions are kept, so convergence
        "will be much faster" (Section VII-B).
        """
        for node in removed_nodes:
            self.positions.pop(node, None)
        self.discard_missing()
        fresh = [n for n in added_nodes if n in self.graph]
        self.place_near_neighbors(fresh)
        self.seed_positions()  # catch nodes added without being listed
        return self._minimize(max_iterations, on_iteration, step or self.step)

    def _minimize(
        self,
        max_iterations: int,
        on_iteration: Optional[IterationCallback],
        step: float,
    ) -> LayoutResult:
        if not OBS.enabled:
            return self._minimize_impl(max_iterations, on_iteration, step)
        with OBS.tracer.span(
            "vis.layout", tags={"algo": "linlog", "nodes": len(self.graph)}
        ) as span:
            result = self._minimize_impl(max_iterations, on_iteration, step)
            span.set_tag("iterations", result.iterations)
            span.set_tag("converged", result.converged)
        OBS.metrics.histogram("vis.layout_ms", algo="linlog").observe(
            span.duration_ms
        )
        return result

    def _minimize_impl(
        self,
        max_iterations: int,
        on_iteration: Optional[IterationCallback],
        step: float,
    ) -> LayoutResult:
        if len(self.graph) == 0:
            return LayoutResult({}, 0, 0.0, True)
        nodes, pos, src, dst, w = self._prepare_arrays()
        energy_trace: list[float] = []
        previous_energy: Optional[float] = None
        converged = False
        iterations = 0
        current_step = step
        for iteration in range(1, max_iterations + 1):
            iterations = iteration
            new_pos, energy, max_move = self._iterate_once(pos, src, dst, w, current_step)
            if previous_energy is not None and energy > previous_energy:
                # Overshoot: damp the step and retry direction next round.
                current_step *= 0.5
            pos = new_pos
            # The energy is translation-invariant; pin the centroid so the
            # layout does not drift (keeps incremental updates stable).
            pos = pos - pos.mean(axis=0, keepdims=True)
            energy_trace.append(energy)
            self.total_iterations += 1
            if on_iteration is not None:
                snapshot = {
                    node: (float(pos[i, 0]), float(pos[i, 1]))
                    for i, node in enumerate(nodes)
                }
                on_iteration(iteration, snapshot, energy)
            if previous_energy is not None:
                denominator = max(abs(previous_energy), 1e-9)
                if abs(previous_energy - energy) / denominator < self.tolerance:
                    converged = True
                    break
            if max_move < self.tolerance * 0.1:
                converged = True
                break
            previous_energy = energy
        self.positions = {
            node: (float(pos[i, 0]), float(pos[i, 1])) for i, node in enumerate(nodes)
        }
        final_energy = energy_trace[-1] if energy_trace else 0.0
        return LayoutResult(dict(self.positions), iterations, final_energy, converged, energy_trace)

    # ------------------------------------------------------------------
    def energy(self) -> float:
        """Current LinLog energy of the stored positions."""
        if len(self.graph) == 0:
            return 0.0
        _nodes, pos, src, dst, w = self._prepare_arrays()
        _f, e_att = self._attraction(pos, src, dst, w)
        _f2, e_rep = self._repulsion_chunked(pos)
        return e_att + e_rep
