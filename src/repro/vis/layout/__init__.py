"""Graph layout algorithms: LinLog (Noack) and Fruchterman-Reingold."""

from .force import FruchtermanReingold
from .graph import Graph
from .linlog import LayoutResult, LinLogLayout

__all__ = ["FruchtermanReingold", "Graph", "LayoutResult", "LinLogLayout"]
