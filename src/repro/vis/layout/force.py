"""Fruchterman-Reingold force-directed layout (baseline).

The classical spring-embedder: attraction ``d^2 / k`` along edges,
repulsion ``k^2 / d`` between all pairs, with a cooling schedule.  Serves
as the comparison algorithm for the LinLog layout benches (LinLog is the
paper's choice "among the very best for social networks").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...obs.runtime import OBS
from .graph import Graph, NodeId
from .linlog import IterationCallback, LayoutResult


class FruchtermanReingold:
    """Deterministic FR layout over a :class:`Graph`."""

    def __init__(
        self,
        graph: Optional[Graph] = None,
        seed: int = 42,
        area: float = 4.0,
        chunk_size: int = 512,
    ) -> None:
        self.graph = graph or Graph()
        self.rng = np.random.default_rng(seed)
        self.area = area
        self.chunk_size = chunk_size
        self.positions: dict[NodeId, tuple[float, float]] = {}

    def seed_positions(self) -> None:
        for node in self.graph.nodes():
            if node not in self.positions:
                xy = self.rng.uniform(-1.0, 1.0, size=2)
                self.positions[node] = (float(xy[0]), float(xy[1]))

    def run(
        self,
        max_iterations: int = 100,
        on_iteration: Optional[IterationCallback] = None,
    ) -> LayoutResult:
        if not OBS.enabled:
            return self._run_impl(max_iterations, on_iteration)
        with OBS.tracer.span(
            "vis.layout", tags={"algo": "fr", "nodes": len(self.graph)}
        ) as span:
            result = self._run_impl(max_iterations, on_iteration)
            span.set_tag("iterations", result.iterations)
            span.set_tag("converged", result.converged)
        OBS.metrics.histogram("vis.layout_ms", algo="fr").observe(span.duration_ms)
        return result

    def _run_impl(
        self,
        max_iterations: int = 100,
        on_iteration: Optional[IterationCallback] = None,
    ) -> LayoutResult:
        self.seed_positions()
        nodes = self.graph.nodes()
        n = len(nodes)
        if n == 0:
            return LayoutResult({}, 0, 0.0, True)
        index = {node: i for i, node in enumerate(nodes)}
        pos = np.array([self.positions[node] for node in nodes], dtype=np.float64)
        sources, targets = [], []
        for u, v, _w in self.graph.edges():
            sources.append(index[u])
            targets.append(index[v])
        src = np.asarray(sources, dtype=np.intp)
        dst = np.asarray(targets, dtype=np.intp)
        k = float(np.sqrt(self.area / n))
        temperature = 0.1 * float(np.sqrt(self.area))
        cooling = temperature / max(max_iterations, 1)
        displacement_trace: list[float] = []
        iterations = 0
        for iteration in range(1, max_iterations + 1):
            iterations = iteration
            disp = np.zeros_like(pos)
            # Repulsion, chunked to bound memory.
            chunk = max(1, self.chunk_size)
            for start in range(0, n, chunk):
                stop = min(start + chunk, n)
                delta = pos[start:stop, None, :] - pos[None, :, :]
                dist2 = (delta**2).sum(axis=2)
                rows = np.arange(start, stop) - start
                cols = np.arange(start, stop)
                dist2[rows, cols] = np.inf
                dist = np.sqrt(np.maximum(dist2, 1e-12))
                repulse = (delta / dist[:, :, None]) * (k * k / dist)[:, :, None]
                disp[start:stop] += repulse.sum(axis=1)
            # Attraction along edges.
            if len(src):
                delta = pos[src] - pos[dst]
                dist = np.sqrt((delta**2).sum(axis=1))
                dist = np.maximum(dist, 1e-9)
                attract = (delta / dist[:, None]) * (dist * dist / k)[:, None]
                np.add.at(disp, src, -attract)
                np.add.at(disp, dst, attract)
            lengths = np.sqrt((disp**2).sum(axis=1))
            lengths = np.maximum(lengths, 1e-9)
            capped = np.minimum(lengths, temperature)
            pos += disp / lengths[:, None] * capped[:, None]
            displacement_trace.append(float(capped.max()))
            temperature = max(temperature - cooling, 1e-4)
            if on_iteration is not None:
                snapshot = {
                    node: (float(pos[i, 0]), float(pos[i, 1]))
                    for i, node in enumerate(nodes)
                }
                on_iteration(iteration, snapshot, float(capped.max()))
            if capped.max() < 1e-4:
                break
        self.positions = {
            node: (float(pos[i, 0]), float(pos[i, 1])) for i, node in enumerate(nodes)
        }
        converged = bool(displacement_trace and displacement_trace[-1] < 1e-3)
        return LayoutResult(
            dict(self.positions),
            iterations,
            displacement_trace[-1] if displacement_trace else 0.0,
            converged,
            displacement_trace,
        )
