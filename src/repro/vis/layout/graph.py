"""Lightweight undirected graph used by the layout algorithms.

Holds node ids (hashable), weighted edges, and positions.  Supports the
incremental operations the paper's layout handler needs: "it updates the
in-memory co-publication graph, discards the nodes that have been removed
and adds new nodes" (Section VII-B).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from ...errors import LayoutError

NodeId = Hashable


class Graph:
    """Undirected weighted graph with adjacency sets."""

    def __init__(self) -> None:
        self._adjacency: dict[NodeId, dict[NodeId, float]] = {}
        self._edge_count = 0

    # -- construction -------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        self._adjacency.setdefault(node, {})

    def add_edge(self, u: NodeId, v: NodeId, weight: float = 1.0) -> None:
        if u == v:
            raise LayoutError(f"self-loop on {u!r} is not allowed")
        if weight <= 0:
            raise LayoutError(f"edge weight must be positive, got {weight}")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adjacency[u]:
            self._edge_count += 1
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        if v in self._adjacency.get(u, {}):
            del self._adjacency[u][v]
            del self._adjacency[v][u]
            self._edge_count -= 1

    def remove_node(self, node: NodeId) -> None:
        neighbors = self._adjacency.pop(node, None)
        if neighbors is None:
            return
        for other in neighbors:
            del self._adjacency[other][node]
        self._edge_count -= len(neighbors)

    # -- queries -----------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> list[NodeId]:
        return list(self._adjacency)

    def edges(self) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Each undirected edge once (u < v by insertion-independent id)."""
        seen: set[tuple[NodeId, NodeId]] = set()
        for u, neighbors in self._adjacency.items():
            for v, weight in neighbors.items():
                if (v, u) in seen:
                    continue
                seen.add((u, v))
                yield (u, v, weight)

    def neighbors(self, node: NodeId) -> dict[NodeId, float]:
        try:
            return dict(self._adjacency[node])
        except KeyError:
            raise LayoutError(f"no node {node!r}") from None

    def degree(self, node: NodeId) -> int:
        return len(self._adjacency.get(node, {}))

    def weighted_degree(self, node: NodeId) -> float:
        return sum(self._adjacency.get(node, {}).values())

    # -- bulk helpers --------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[NodeId, NodeId]]) -> "Graph":
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def copy(self) -> "Graph":
        clone = Graph()
        for node in self._adjacency:
            clone.add_node(node)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def connected_components(self) -> list[set[NodeId]]:
        """Connected components (used to place disconnected additions)."""
        remaining = set(self._adjacency)
        components: list[set[NodeId]] = []
        while remaining:
            start = next(iter(remaining))
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in self._adjacency[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            remaining -= component
            components.append(component)
        return components
