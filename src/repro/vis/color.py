"""Colors and color scales.

The US-election use case colors states with "varying color shades: the
more the states vote for the respective party, the darker the color"
(Section III) -- that is :class:`SequentialScale`.  Categorical palettes
serve party/cluster hues.

Colors are hex strings (``#rrggbb``) end to end; interpolation happens in
plain sRGB, which is entirely adequate for shade ramps.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import VisError


def parse_hex(color: str) -> tuple[int, int, int]:
    """``#rgb`` or ``#rrggbb`` -> (r, g, b) ints."""
    if not color.startswith("#"):
        raise VisError(f"color must start with '#', got {color!r}")
    digits = color[1:]
    if len(digits) == 3:
        digits = "".join(ch * 2 for ch in digits)
    if len(digits) != 6:
        raise VisError(f"bad hex color {color!r}")
    try:
        return (
            int(digits[0:2], 16),
            int(digits[2:4], 16),
            int(digits[4:6], 16),
        )
    except ValueError:
        raise VisError(f"bad hex color {color!r}") from None


def to_hex(rgb: tuple[int, int, int]) -> str:
    r, g, b = (max(0, min(255, int(round(c)))) for c in rgb)
    return f"#{r:02x}{g:02x}{b:02x}"


def lerp(c0: str, c1: str, t: float) -> str:
    """Linear interpolation between two colors, ``t`` in [0, 1]."""
    t = max(0.0, min(1.0, t))
    r0, g0, b0 = parse_hex(c0)
    r1, g1, b1 = parse_hex(c1)
    return to_hex((r0 + (r1 - r0) * t, g0 + (g1 - g0) * t, b0 + (b1 - b0) * t))


def darken(color: str, amount: float) -> str:
    """Shade toward black by ``amount`` in [0, 1]."""
    return lerp(color, "#000000", amount)


def lighten(color: str, amount: float) -> str:
    """Tint toward white by ``amount`` in [0, 1]."""
    return lerp(color, "#ffffff", amount)


class SequentialScale:
    """Map [v0, v1] to a light->dark (or arbitrary two-stop) color ramp."""

    def __init__(
        self,
        domain: tuple[float, float],
        low: str = "#f7f7f7",
        high: str = "#08306b",
    ) -> None:
        self.domain = (float(domain[0]), float(domain[1]))
        self.low = low
        self.high = high

    def __call__(self, value: float) -> str:
        d0, d1 = self.domain
        if d0 == d1:
            return lerp(self.low, self.high, 0.5)
        t = (value - d0) / (d1 - d0)
        return lerp(self.low, self.high, t)


class DivergingScale:
    """Two ramps around a midpoint (e.g. red <- white -> blue margins)."""

    def __init__(
        self,
        domain: tuple[float, float, float],
        low: str = "#b2182b",
        mid: str = "#f7f7f7",
        high: str = "#2166ac",
    ) -> None:
        d0, dm, d1 = domain
        if not (d0 <= dm <= d1):
            raise VisError(f"diverging domain must be ordered, got {domain}")
        self.domain = (float(d0), float(dm), float(d1))
        self.low = low
        self.mid = mid
        self.high = high

    def __call__(self, value: float) -> str:
        d0, dm, d1 = self.domain
        if value <= dm:
            if d0 == dm:
                return self.mid
            t = (value - d0) / (dm - d0)
            return lerp(self.low, self.mid, t)
        if dm == d1:
            return self.mid
        t = (value - dm) / (d1 - dm)
        return lerp(self.mid, self.high, t)


#: A colorblind-reasonable categorical palette (Tableau-like).
CATEGORICAL_10: tuple[str, ...] = (
    "#4e79a7",
    "#f28e2b",
    "#e15759",
    "#76b7b2",
    "#59a14f",
    "#edc948",
    "#b07aa1",
    "#ff9da7",
    "#9c755f",
    "#bab0ac",
)


def categorical(index: int, palette: Sequence[str] = CATEGORICAL_10) -> str:
    """The ``index``-th categorical color (cycling)."""
    return palette[index % len(palette)]
