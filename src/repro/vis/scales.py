"""Scales: map data values to visual ranges.

The small, classic set every InfoVis-toolkit-style library carries:
linear (quantitative -> pixel), band (categorical -> pixel slots), and
ordinal (categorical -> arbitrary range values, e.g. colors).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from ..errors import VisError


class LinearScale:
    """Affine map from a data domain ``[d0, d1]`` to a range ``[r0, r1]``.

    A degenerate domain (d0 == d1) maps everything to the range midpoint.
    With ``clamp=True`` outputs never leave the range.
    """

    def __init__(
        self,
        domain: tuple[float, float],
        range: tuple[float, float],
        clamp: bool = False,
    ) -> None:
        self.domain = (float(domain[0]), float(domain[1]))
        self.range = (float(range[0]), float(range[1]))
        self.clamp = clamp

    def __call__(self, value: float) -> float:
        d0, d1 = self.domain
        r0, r1 = self.range
        if d0 == d1:
            return (r0 + r1) / 2.0
        t = (value - d0) / (d1 - d0)
        if self.clamp:
            t = min(1.0, max(0.0, t))
        return r0 + t * (r1 - r0)

    def invert(self, output: float) -> float:
        """Map a range value back to the data domain."""
        d0, d1 = self.domain
        r0, r1 = self.range
        if r0 == r1:
            return (d0 + d1) / 2.0
        t = (output - r0) / (r1 - r0)
        return d0 + t * (d1 - d0)

    @classmethod
    def fit(
        cls, values: Sequence[float], range: tuple[float, float], clamp: bool = False
    ) -> "LinearScale":
        """Build a scale whose domain spans the observed values."""
        cleaned = [v for v in values if v is not None]
        if not cleaned:
            return cls((0.0, 1.0), range, clamp=clamp)
        return cls((min(cleaned), max(cleaned)), range, clamp=clamp)


class BandScale:
    """Map categories to evenly spaced bands of ``[r0, r1]``.

    ``padding`` (0..1) is the fraction of each step left empty between
    bands -- the usual bar-chart layout scale.
    """

    def __init__(
        self,
        categories: Sequence[Hashable],
        range: tuple[float, float],
        padding: float = 0.1,
    ) -> None:
        if not categories:
            raise VisError("BandScale needs at least one category")
        if not 0.0 <= padding < 1.0:
            raise VisError(f"padding must be in [0, 1), got {padding}")
        self.categories = list(categories)
        self._index = {c: i for i, c in enumerate(self.categories)}
        if len(self._index) != len(self.categories):
            raise VisError("BandScale categories must be unique")
        self.range = (float(range[0]), float(range[1]))
        self.padding = padding
        span = self.range[1] - self.range[0]
        self.step = span / len(self.categories)
        self.bandwidth = self.step * (1.0 - padding)

    def __call__(self, category: Hashable) -> float:
        """Left edge of the category's band."""
        try:
            index = self._index[category]
        except KeyError:
            raise VisError(f"unknown category {category!r}") from None
        return self.range[0] + index * self.step + (self.step - self.bandwidth) / 2.0

    def center(self, category: Hashable) -> float:
        return self(category) + self.bandwidth / 2.0


class OrdinalScale:
    """Cycle categories through a fixed list of range values."""

    def __init__(self, range_values: Sequence[Any]) -> None:
        if not range_values:
            raise VisError("OrdinalScale needs at least one range value")
        self.range_values = list(range_values)
        self._assigned: dict[Hashable, Any] = {}

    def __call__(self, category: Hashable) -> Any:
        if category not in self._assigned:
            index = len(self._assigned) % len(self.range_values)
            self._assigned[category] = self.range_values[index]
        return self._assigned[category]

    def known_categories(self) -> list[Hashable]:
        return list(self._assigned)


class SqrtScale:
    """Square-root scale, the standard choice for mapping data to *areas*
    (e.g. scatter-plot dot sizes) so perceived size tracks magnitude."""

    def __init__(self, domain: tuple[float, float], range: tuple[float, float]) -> None:
        if domain[0] < 0 or domain[1] < 0:
            raise VisError("SqrtScale domain must be non-negative")
        self._linear = LinearScale(
            (domain[0] ** 0.5, domain[1] ** 0.5), range, clamp=True
        )

    def __call__(self, value: float) -> float:
        if value < 0:
            raise VisError(f"SqrtScale got negative value {value}")
        return self._linear(value**0.5)
