"""Durability benchmarks: WAL overhead and recovery time.

Two questions, each with a paper-shaped answer:

* **What does the WAL cost on the insert pipeline?**  The Figure-8
  pipeline (authors -> visual attributes -> display, two machines over
  loopback sockets) runs once on a plain in-memory database and once per
  fsync policy on a durable one.  The overhead is the relative increase
  of the end-to-end batch time.  The gate: ``fsync=interval`` (group
  commit -- the policy a deployment would pick) must stay within
  ``OVERHEAD_GATE`` percent of the in-memory pipeline.
* **What does recovery cost?**  Recovery time is redo-bounded: it grows
  with the WAL tail length, and a checkpoint folds the tail into the
  snapshot so the redo pass restarts from zero.  We grow a log in
  committed batches, timing ``recover(dir)`` at each size, then
  checkpoint and show the redo pass is empty.

Arms are interleaved and overhead is the best *same-repetition* ratio
over ``BENCH_DURABILITY_REPS`` rounds (the telemetry-overhead bench's
paired measurement): each round runs baseline and durable arms
back-to-back, so machine drift between rounds cancels out of the ratio
instead of inflating it.  Absolute times report the per-arm best.

Scale with ``BENCH_DURABILITY_BATCHES`` x ``BENCH_DURABILITY_ROWS``
(default 6 x 500; CI smoke runs small).
"""

import gc
import os
import time

import pytest

from repro.bench import InsertPipeline, SeriesTable
from repro.db import Database, open_durable, recover
from repro.db.durability import _recover

BATCHES = int(os.environ.get("BENCH_DURABILITY_BATCHES", "6"))
BATCH_ROWS = int(os.environ.get("BENCH_DURABILITY_ROWS", "500"))
REPS = int(os.environ.get("BENCH_DURABILITY_REPS", "4"))
#: The regression gate: fsync=interval WAL overhead on the insert
#: pipeline, in percent.  CI re-checks the same number from the JSON.
OVERHEAD_GATE = 25.0
#: Group-commit tuning for the interval arm (the deployment profile:
#: the log-writer thread fsyncs every 50 ms, and the 256-commit count
#: trigger -- also the backpressure bound -- only caps pathological
#: bursts; steady-state commits never wait on the disk).
GROUP_COMMITS = 256
GROUP_INTERVAL_MS = 50.0

ARMS = ("baseline", "never", "interval", "always")


def _run_pipeline(database) -> float:
    """One pipeline run: warm-up batch, then BATCHES timed batches (ms)."""
    pipeline = InsertPipeline(database=database, use_sockets=True)
    try:
        pipeline.run_batch(100)
        gc.collect()
        start = time.perf_counter()
        for _ in range(BATCHES):
            pipeline.run_batch(BATCH_ROWS)
        return (time.perf_counter() - start) * 1000.0
    finally:
        pipeline.machine1.close()
        pipeline.machine2.close()
        pipeline.server.close()
        pipeline.center.close()


def _open_arm(arm: str, directory):
    if arm == "interval":
        return open_durable(
            directory,
            name="fig8",
            fsync=arm,
            group_commits=GROUP_COMMITS,
            group_interval_ms=GROUP_INTERVAL_MS,
        )
    return open_durable(directory, name="fig8", fsync=arm)


# ----------------------------------------------------------------------
# WAL overhead on the Figure-8 insert pipeline
@pytest.fixture(scope="module")
def overhead_result(emit, emit_json, tmp_path_factory):
    best = {arm: float("inf") for arm in ARMS}
    best_ratio = {arm: float("inf") for arm in ARMS}
    stats = {}
    for rep in range(REPS):
        sample = {}
        for arm in ARMS:
            if arm == "baseline":
                ms = _run_pipeline(Database("fig8"))
            else:
                directory = tmp_path_factory.mktemp(f"{arm}-{rep}") / "data"
                database, manager = _open_arm(arm, directory)
                ms = _run_pipeline(database)
                if ms < best[arm]:
                    stats[arm] = manager.stats()
                manager.close()
            sample[arm] = ms
            best[arm] = min(best[arm], ms)
        # Pair each durable arm against the SAME round's baseline: the
        # ratio is immune to machine drift between rounds.
        for arm in ARMS:
            best_ratio[arm] = min(best_ratio[arm], sample[arm] / sample["baseline"])

    base = best["baseline"]
    overheads = {arm: 100.0 * (best_ratio[arm] - 1.0) for arm in ARMS}
    table = SeriesTable(
        "batch_rows",
        [f"{arm}_ms" for arm in ARMS] + ["interval_overhead_pct"],
    )
    table.add(
        BATCH_ROWS,
        {f"{arm}_ms": best[arm] for arm in ARMS}
        | {"interval_overhead_pct": overheads["interval"]},
    )

    extra = {
        "batches": BATCHES,
        "batch_rows": BATCH_ROWS,
        "reps": REPS,
        "wal": {
            arm: {k: s[k] for k in ("commits", "wal_appends", "wal_syncs", "wal_bytes")}
            for arm, s in stats.items()
        },
        "overhead_gate": {
            "policy": "interval",
            "baseline_ms": base,
            "durable_ms": best["interval"],
            "overhead_pct": overheads["interval"],  # best same-round ratio
            "required_max_pct": OVERHEAD_GATE,
        },
    }
    emit(
        f"\n== WAL overhead on the Figure-8 insert pipeline, "
        f"{BATCHES} x {BATCH_ROWS} rows (sockets) =="
    )
    for arm in ARMS:
        emit(f"  {arm:<9} {best[arm]:9.1f} ms  overhead {overheads[arm]:6.1f}%")
    emit(
        f"fsync=interval overhead: {overheads['interval']:.1f}% "
        f"(gate {OVERHEAD_GATE:.0f}%)"
    )
    emit_json("durability", table, extra=extra)
    return best, overheads


def test_interval_overhead_within_gate(overhead_result):
    """Group-commit durability stays within the pipeline overhead gate."""
    _best, overheads = overhead_result
    assert overheads["interval"] <= OVERHEAD_GATE


def test_never_policy_not_slower_than_always(overhead_result):
    """No-fsync logging must not cost more than fsync-per-commit."""
    best, _overheads = overhead_result
    assert best["never"] <= best["always"] * 1.15  # generous noise margin


# ----------------------------------------------------------------------
# Recovery time vs WAL length
@pytest.fixture(scope="module")
def recovery_result(emit, emit_json, tmp_path_factory):
    directory = tmp_path_factory.mktemp("recovery") / "data"
    database, manager = _open_arm("never", directory)
    database.execute("CREATE TABLE pts (id INTEGER PRIMARY KEY, x FLOAT, y FLOAT)")
    table = SeriesTable("committed_rows", ["wal_bytes", "recover_ms"])
    total = 0
    next_id = 1
    for _step in range(4):
        rows = []
        for _ in range(BATCHES * BATCH_ROWS // 4):
            rows.append({"id": next_id, "x": float(next_id), "y": 0.5 * next_id})
            next_id += 1
        database.insert_many("pts", rows)
        total += len(rows)
        manager.wal.sync()
        start = time.perf_counter()
        recovered = recover(directory)
        elapsed = (time.perf_counter() - start) * 1000.0
        assert len(recovered.table("pts")) == total
        table.add(total, {"wal_bytes": manager.stats()["wal_offset"],
                          "recover_ms": elapsed})

    # A checkpoint folds the tail into the snapshot: the redo pass is
    # empty and recovery cost is snapshot-load only, independent of how
    # long the log was before the checkpoint.
    manager.checkpoint()
    start = time.perf_counter()
    info = _recover(directory)
    post_checkpoint_ms = (time.perf_counter() - start) * 1000.0
    assert len(info.database.table("pts")) == total
    manager.close()

    emit(f"\n== recovery time vs WAL length ({total} committed rows) ==")
    emit(table.format(unit="ms"))
    emit(
        f"after checkpoint: {post_checkpoint_ms:.1f} ms "
        f"({info.replayed_txns} txns replayed)"
    )
    emit_json(
        "durability_recovery",
        table,
        extra={
            "post_checkpoint_ms": post_checkpoint_ms,
            "post_checkpoint_replayed_txns": info.replayed_txns,
        },
    )
    return table, info


def test_recovery_scales_with_wal_length(recovery_result):
    """More committed-but-uncheckpointed work -> longer redo pass."""
    table, _info = recovery_result
    if table.xs()[-1] < 1000:
        pytest.skip("redo tail too small to time reliably (CI smoke scale)")
    times = table.series("recover_ms")
    assert times[-1] >= times[0]  # monotone within noise at 4x the tail


def test_checkpoint_empties_redo_tail(recovery_result):
    """After a checkpoint recovery replays nothing: cost no longer
    depends on how much work preceded the checkpoint."""
    _table, info = recovery_result
    assert info.replayed_txns == 0
