"""Ablation A4: update-propagation policy costs.

Design choice under test: the UP scopes of Section V let a designer pick
*where* deltas go.  Each scope has a different cost profile:

* ``ra``   -- handler runs immediately per statement (freshest, priciest);
* ``ta-rp``-- finished-handler runs per statement while the process lives;
* ``fa-rp``-- near-free bookkeeping now, cost deferred to the next
              activity start (fresh snapshot);
* no UP    -- ignore (the default; zero cost).

We stream insert statements at a running process under each policy and
report per-statement cost.
"""

import pytest

from repro.bench import SeriesTable, Timer
from repro.db import Column, Database
from repro.db.types import INTEGER
from repro.workflow import (
    CallProcedure,
    ProcessDefinition,
    Procedure,
    PropagationManager,
    RelationDecl,
    UpdatePropagation,
    WorkflowEngine,
    seq,
)

STATEMENTS = 100
ROWS_PER_STATEMENT = 25


class CountingProcedure(Procedure):
    """Handlers with a small, realistic cost (touch every delta row)."""

    def __init__(self, name):
        self.name = name
        self.handled_rows = 0

    def run(self, env, inputs, read_write):
        return []

    def on_delta_running(self, env, delta):
        self.handled_rows += sum(1 for _ in delta.inserted)
        return None

    def on_delta_finished(self, env, delta):
        self.handled_rows += sum(1 for _ in delta.inserted)
        return None


def build(scope):
    """Deploy one process with the given UP scope (or none)."""
    db = Database()
    db.create_table("src", [Column("id", INTEGER), Column("v", INTEGER)])
    engine = WorkflowEngine(db)
    PropagationManager(engine)  # attaches itself to the engine
    proc = CountingProcedure(f"proc_{scope or 'none'}")
    engine.procedures.register(proc)
    propagations = []
    if scope is not None:
        propagations = [UpdatePropagation("src", "work", scope)]
    definition = ProcessDefinition(
        "p",
        seq(CallProcedure("work", proc.name, inputs=["src"], detached=True)),
        relations=[RelationDecl("src")],
        procedures=[proc.name],
        propagations=propagations,
    )
    engine.deploy(definition)
    execution = engine.run("p")
    return db, engine, execution, proc


def stream(db, n_statements, start_id=0):
    next_id = start_id
    for _ in range(n_statements):
        db.insert_many(
            "src",
            [{"id": next_id + i, "v": i} for i in range(ROWS_PER_STATEMENT)],
        )
        next_id += ROWS_PER_STATEMENT
    return next_id


POLICIES = (None, "fa-rp", "ta-rp", "ra")


@pytest.fixture(scope="module")
def propagation_table(emit, emit_json):
    # Warm-up run to take import/alloc cold costs off the first policy.
    warm_db, warm_engine, warm_exec, _warm = build("ra")
    stream(warm_db, 10)
    warm_engine.close(warm_exec)

    table = SeriesTable("policy_idx", ["per_stmt_us", "handled_rows"])
    names = []
    for index, scope in enumerate(POLICIES):
        db, engine, execution, proc = build(scope)
        # ta-rp needs the activity finished: finish it for that policy.
        if scope == "ta-rp":
            engine.finish_activity(execution.detached_running[0].instance.id)
        with Timer() as timer:
            stream(db, STATEMENTS)
        engine.close(execution)
        names.append(scope or "none")
        table.add(
            index,
            {
                "per_stmt_us": timer.ms / STATEMENTS * 1000.0,
                "handled_rows": float(proc.handled_rows),
            },
        )
    emit(
        "\n== Ablation A4: per-statement cost under each UP policy ==\n"
        f"policies by index: {dict(enumerate(names))}"
    )
    emit(table.format(unit="us per statement / rows"))
    emit_json("ablation_propagation", table, unit="us per statement / rows")
    return table, names


def test_a4_default_ignore_is_cheapest(propagation_table, benchmark):
    table, names = propagation_table
    db, engine, execution, _proc = build(None)
    state = {"next": 0}

    def kernel():
        state["next"] = stream(db, 5, state["next"])

    benchmark(kernel)
    engine.close(execution)
    costs = dict(zip(names, table.series("per_stmt_us")))
    assert costs["none"] <= costs["ra"]
    assert costs["none"] <= costs["ta-rp"]


def test_a4_ra_and_tarp_handle_every_row(propagation_table, benchmark):
    table, names = propagation_table
    benchmark(lambda: None)
    handled = dict(zip(names, table.series("handled_rows")))
    expected = STATEMENTS * ROWS_PER_STATEMENT
    assert handled["ra"] == expected
    assert handled["ta-rp"] == expected
    assert handled["none"] == 0
    assert handled["fa-rp"] == 0  # cost deferred, not incurred per row


def test_a4_farp_bookkeeping_is_near_free(propagation_table, benchmark):
    table, names = propagation_table
    db, engine, execution, _proc = build("fa-rp")
    state = {"next": 0}

    def kernel():
        state["next"] = stream(db, 5, state["next"])

    benchmark(kernel)
    engine.close(execution)
    costs = dict(zip(names, table.series("per_stmt_us")))
    # fa-rp only flags the execution: within noise of the no-UP baseline.
    assert costs["fa-rp"] < max(costs["ra"], costs["ta-rp"]) * 2
