"""CI gate: batched propagation must beat immediate by a set factor.

Reads ``benchmarks/BENCH_policy_batching.json`` (written by
``bench_policy_batching.py``) and exits non-zero if the threshold-256
arm's burst-insert speedup over the batch-size-1 (immediate) arm falls
below the recorded ``required`` factor.  Run after the benchmark:

    python benchmarks/check_batching_regression.py

Kept as a standalone script (not a test) so the CI job can upload the
JSON artifact even when the gate fails.
"""

import json
import sys
from pathlib import Path

RESULT = Path(__file__).parent / "BENCH_policy_batching.json"


def main() -> int:
    if not RESULT.exists():
        print(f"FAIL: {RESULT} missing -- did bench_policy_batching run?")
        return 2
    payload = json.loads(RESULT.read_text(encoding="utf-8"))
    gate = payload.get("throughput_gate")
    if not isinstance(gate, dict):
        print(f"FAIL: {RESULT} has no throughput_gate block")
        return 2
    measured = float(gate["speedup"])
    required = float(gate["required"])
    verdict = "PASS" if measured >= required else "FAIL"
    print(
        f"{verdict}: threshold-256 vs immediate at {gate['clients']} clients "
        f"over {payload.get('rows')} rows: {measured:.2f}x "
        f"(required {required:.1f}x; immediate {gate['immediate_ms']:.1f} ms, "
        f"batched {gate['threshold_256_ms']:.1f} ms)"
    )
    return 0 if measured >= required else 1


if __name__ == "__main__":
    sys.exit(main())
