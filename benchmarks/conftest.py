"""Shared benchmark fixtures.

``emit`` prints around pytest's output capture so the paper-style series
tables land in the terminal (and in ``bench_output.txt`` when tee'd) even
without ``-s``.  Every emitted block is also appended to
``benchmarks/results.txt`` for later inspection.

``emit_json`` writes machine-readable ``BENCH_<name>.json`` files next to
this conftest (rows, series, units, git revision) so dashboards and
regression tooling can consume results without scraping the text tables.
"""

import json
import subprocess
from pathlib import Path
from typing import Any, Optional

import pytest

RESULTS_FILE = Path(__file__).parent / "results.txt"


def _git_rev() -> Optional[str]:
    """Short git revision of the working tree, or None outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except Exception:
        return None
    rev = proc.stdout.strip()
    return rev or None


@pytest.fixture(scope="session")
def emit_json():
    """Write ``benchmarks/BENCH_<name>.json`` for a bench result.

    Accepts a :class:`repro.bench.SeriesTable` (serialized with
    ``as_json``) or any JSON-ready mapping (stored under ``"data"``).
    Returns the written path.
    """
    rev = _git_rev()

    def _emit_json(
        name: str,
        result: Any,
        unit: str = "ms",
        extra: Optional[dict[str, Any]] = None,
    ) -> Path:
        path = Path(__file__).parent / f"BENCH_{name}.json"
        payload: dict[str, Any] = {"name": name, "unit": unit, "git_rev": rev}
        if hasattr(result, "as_json"):
            payload.update(result.as_json())
        else:
            payload["data"] = result
        if extra:
            payload.update(extra)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path

    return _emit_json


@pytest.fixture(scope="session")
def emit(pytestconfig):
    capman = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text)
        else:
            print(text)
        with open(RESULTS_FILE, "a", encoding="utf-8") as out:
            out.write(text + "\n")

    return _emit


def pytest_sessionstart(session):
    # Fresh results file per run.
    try:
        RESULTS_FILE.unlink()
    except FileNotFoundError:
        pass
