"""Shared benchmark fixtures.

``emit`` prints around pytest's output capture so the paper-style series
tables land in the terminal (and in ``bench_output.txt`` when tee'd) even
without ``-s``.  Every emitted block is also appended to
``benchmarks/results.txt`` for later inspection.
"""

from pathlib import Path

import pytest

RESULTS_FILE = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def emit(pytestconfig):
    capman = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text)
        else:
            print(text)
        with open(RESULTS_FILE, "a", encoding="utf-8") as out:
            out.write(text + "\n")

    return _emit


def pytest_sessionstart(session):
    # Fresh results file per run.
    try:
        RESULTS_FILE.unlink()
    except FileNotFoundError:
        pass
