"""Telemetry sink overhead: tracing+sink vs tracing alone.

The self-hosted telemetry pipeline (``repro.obs.store.TelemetrySink``)
must be cheap enough to leave on while a workload runs: draining the
tracer ring buffer, snapshotting metrics, and persisting both into the
``sys_*`` system tables is batched work that happens on collect cycles,
not per traced operation.  This bench pins that contract on the hottest
traced path -- the SQL point query -- by comparing

* **enabled**: ``Database.execute`` with tracing+metrics on, no sink;
* **enabled + sink**: the same workload with a TelemetrySink collecting
  and flushing every ``COLLECT_EVERY`` queries, the collection cost
  included in the measured loop.

The sink runs in its production configuration -- head sampling
(``SPAN_SAMPLE``) and bounded retention (``SPAN_RETENTION``
collections) -- because persisting *every* span of a microsecond-scale
workload costs about as much as the workload itself; sampling is how
tracing systems make always-on persistence affordable.  Metric values
are never sampled or approximated: only their *persistence* is
deduplicated (changed series between keyframes), so counters,
histograms, and quantiles stay exact.

The sink-vs-enabled delta must stay under 5%.

Scale with ``BENCH_SQL_ROWS`` (default 100k; CI smoke runs small).
"""

import gc
import os
import random

import pytest

import repro.obs as obs
from repro.bench import Timer
from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT
from repro.obs.store import TelemetrySink

ROWS = int(os.environ.get("BENCH_SQL_ROWS", "100000"))
#: Iterations per timing sample (see bench_obs_overhead for rationale).
ITERS = 8000
#: Best-of-N sampling to shed scheduler hiccups and GC pauses.
SAMPLES = 5
#: One collect/flush cycle per this many queries.  Collection cadence
#: is the sink's amortization lever: production sinks collect on a time
#: interval (hundreds of ms), so one cycle per ~80 ms of query work is
#: already far more aggressive than the default ``start()`` cadence.
COLLECT_EVERY = 4000
#: Production sink configuration: persist 1 span in 100, keep the last
#: 8 collections of spans (metric values stay exact; only their
#: persistence is deduplicated between keyframes).
SPAN_SAMPLE = 0.01
SPAN_RETENTION = 8
OVERHEAD_BUDGET = 0.05  # the sink may cost at most 5% on top of tracing


@pytest.fixture(scope="module")
def point_db():
    rng = random.Random(7)
    db = Database()
    db.create_table(
        "emp",
        [
            Column("id", INTEGER, nullable=False),
            Column("dept", TEXT),
            Column("salary", INTEGER),
        ],
        primary_key="id",
    )
    db.insert_many(
        "emp",
        [
            {"id": i, "dept": f"d{rng.randrange(20)}", "salary": rng.randrange(100_000)}
            for i in range(ROWS)
        ],
    )
    return db


def _best_of(fn, samples=SAMPLES):
    """Minimum wall-clock ms over ``samples`` runs of ``fn``."""
    best = float("inf")
    for _ in range(samples):
        gc.collect()
        with Timer() as t:
            fn()
        best = min(best, t.ms)
    return best


def test_telemetry_sink_overhead_under_budget(point_db, emit, emit_json):
    sql = f"SELECT * FROM emp WHERE id = {ROWS // 2}"
    point_db.execute(sql)  # warm statement + plan caches

    def run_enabled():
        execute = point_db.execute
        for _ in range(ITERS):
            execute(sql)

    obs.enable()
    sink = None
    try:
        sink = TelemetrySink(span_sample=SPAN_SAMPLE, span_retention=SPAN_RETENTION)

        def run_with_sink():
            execute = point_db.execute
            for i in range(ITERS):
                execute(sql)
                if (i + 1) % COLLECT_EVERY == 0:
                    sink.collect_and_flush()

        # Pair the two variants back-to-back (alternating order) so both
        # sides of each ratio see the same thermal/frequency conditions;
        # CPU drift between two sequential best-of blocks on shared
        # hardware otherwise dwarfs the ~3% signal.  The gate takes the
        # cleanest observed pair -- the minimum ratio -- because noise
        # only ever inflates the measured overhead.
        run_enabled()  # warm both code paths once
        run_with_sink()
        pairs: list[tuple[float, float]] = []
        for round_no in range(SAMPLES):
            if round_no % 2 == 0:
                e = _best_of(run_enabled, samples=1)
                w = _best_of(run_with_sink, samples=1)
            else:
                w = _best_of(run_with_sink, samples=1)
                e = _best_of(run_enabled, samples=1)
            pairs.append((e, w))
        overhead = min(w / e for e, w in pairs) - 1.0
        enabled_ms = min(e for e, _ in pairs)
        with_sink_ms = min(w for _, w in pairs)
        collections = sink.collections
        spans_stored = sink.spans_stored
        sampled_out = sink.sampled_out
    finally:
        if sink is not None:
            sink.close()
        obs.disable()
        obs.reset()

    emit(
        f"\n== Telemetry sink overhead: SQL point query x{ITERS} ({ROWS} rows) ==\n"
        f"tracing enabled, no sink:  {enabled_ms / ITERS * 1000:.2f} us/query\n"
        f"tracing enabled + sink:    {with_sink_ms / ITERS * 1000:.2f} us/query "
        f"(best-pair overhead {overhead * 100:+.1f}%)\n"
        f"collect cycles: {collections} (every {COLLECT_EVERY} queries), "
        f"{spans_stored} spans persisted, {sampled_out} sampled out "
        f"(rate {SPAN_SAMPLE}, retention {SPAN_RETENTION} collections)"
    )
    emit_json(
        "telemetry_overhead",
        {
            "rows": ROWS,
            "iterations": ITERS,
            "collect_every": COLLECT_EVERY,
            "span_sample": SPAN_SAMPLE,
            "span_retention": SPAN_RETENTION,
            "enabled_us": enabled_ms / ITERS * 1000,
            "with_sink_us": with_sink_ms / ITERS * 1000,
            "sink_overhead": overhead,
            "budget": OVERHEAD_BUDGET,
        },
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"telemetry sink costs {overhead * 100:.1f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%) -- "
        f"enabled {enabled_ms:.2f} ms vs with-sink {with_sink_ms:.2f} ms"
    )
