"""Ablation A1: incremental view maintenance vs full recomputation.

Design choice under test (DESIGN.md #3): EdiFlow propagates deltas into
query-typed activities with IVM instead of recomputing.  The Wikipedia
rationale: "a total recomputation of the aggregation is out of reach,
because change frequency is too high... updates received at a given
moment only affect a tiny part of the database."

Sweep the base-table size; apply a fixed-size delta; compare IVM delta
application against full recomputation.  Expected shape: recompute cost
grows with the base size, IVM cost stays flat -> the speedup widens.
"""

import random

import pytest

from repro.bench import SeriesTable, Timer
from repro.db import AggSpec, Column, Database, col
from repro.db.types import INTEGER, TEXT
from repro.ivm import AggregateView, Delta, apply_delta

BASE_SIZES = (1_000, 5_000, 20_000, 50_000)
DELTA_SIZE = 50


def build(base_size, seed=3):
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        "votes", [Column("state", TEXT), Column("n", INTEGER)]
    )
    rows = [
        {"state": f"s{rng.randrange(51)}", "n": rng.randrange(100)}
        for _ in range(base_size)
    ]
    db.insert_many("votes", rows)
    view = AggregateView(
        "agg",
        "votes",
        group_by=["state"],
        aggregates=[
            AggSpec("SUM", col("n"), "total"),
            AggSpec("COUNT", None, "cnt"),
        ],
    )
    view.recompute(db)
    return db, view, rng


@pytest.fixture(scope="module")
def ivm_table(emit, emit_json):
    table = SeriesTable("base_rows", ["ivm_ms", "recompute_ms", "speedup"])
    for size in BASE_SIZES:
        db, view, rng = build(size)
        delta_rows = [
            {"state": f"s{rng.randrange(51)}", "n": rng.randrange(100)}
            for _ in range(DELTA_SIZE)
        ]
        with Timer() as t_ivm:
            apply_delta(view, Delta.insertions("votes", delta_rows))
        with Timer() as t_re:
            view.recompute(db)
        table.add(
            size,
            {
                "ivm_ms": t_ivm.ms,
                "recompute_ms": t_re.ms,
                "speedup": t_re.ms / max(t_ivm.ms, 1e-6),
            },
        )
    emit("\n== Ablation A1: IVM delta application vs full recomputation "
         f"(delta = {DELTA_SIZE} rows) ==")
    emit(table.format())
    emit_json("ablation_ivm", table)
    return table


def test_a1_ivm_always_beats_recompute(ivm_table, benchmark):
    db, view, rng = build(5_000)
    delta_rows = [{"state": "s1", "n": 1} for _ in range(DELTA_SIZE)]
    benchmark(apply_delta, view, Delta.insertions("votes", delta_rows))
    assert all(s > 1.0 for s in ivm_table.series("speedup"))


def test_a1_speedup_grows_with_base_size(ivm_table, benchmark):
    db, view, _rng = build(2_000)
    benchmark(view.recompute, db)
    speedups = ivm_table.series("speedup")
    assert speedups[-1] > speedups[0], (
        "IVM advantage should widen as the base table grows"
    )


def test_a1_ivm_cost_independent_of_base_size(ivm_table, benchmark):
    def kernel():
        view = AggregateView(
            "x", "votes", ["state"], [AggSpec("COUNT", None, "c")]
        )
        apply_delta(view, Delta.insertions("votes", [{"state": "a", "n": 1}] * 100))

    benchmark(kernel)
    costs = ivm_table.series("ivm_ms")
    # Flat within generous noise: the largest base must not cost 10x the smallest.
    assert costs[-1] < max(costs[0], 0.5) * 10
