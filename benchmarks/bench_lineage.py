"""Lineage capture overhead benchmarks + the 10% CI gate.

Lineage capture is off by default and free when off.  When enabled with
the default configuration (every-256th-SELECT sampling, bounded edge
store), the amortized cost must stay within **10%** of the no-lineage
baseline on the columnar aggregate bench (the paper's hot
visual-analytics query shape).

Differencing two multi-second query streams drowns the ~4% signal in
machine noise, so the gate measures the two quantities that compose it
directly, each best-of-``REPS``:

* **per_query_ms** -- one plain vectorized aggregate (the baseline);
* **captured_ms** -- the same query executed through the in-band
  sampled-capture path (capture returns the result rows, persists edges
  to the store, and the query runs once).

Amortized overhead is then ``(captured_ms - per_query_ms) / (SAMPLE *
per_query_ms)``: every sampling period pays one capture instead of one
plain query.  A separate enabled stream still runs to assert the
sampling machinery fires and captured rows are byte-identical to plain
execution -- correctness is stream-tested, only the timing is composed.

Results land in ``BENCH_lineage.json`` with a ``lineage_gate`` block
re-checked by ``check_lineage_regression.py``.  Scale with
``BENCH_LINEAGE_ROWS`` (default 200k rows).
"""

import os
import random
import time

import pytest

from repro.bench import SeriesTable
from repro.db import Database
from repro.lineage.manager import LineageManager

ROWS = int(os.environ.get("BENCH_LINEAGE_ROWS", "200000"))
#: Default sampling period of LineageManager -- the amortization window
#: the gate assumes (read off the real default, not duplicated here).
SAMPLE = LineageManager(Database("probe"), store=False).sample
GROUPS = 50
REPS = 5
#: The gate: amortized sampled-capture overhead over the plain baseline,
#: in percent.
OVERHEAD_GATE_PCT = 10.0

SQL = (
    "SELECT grp, COUNT(*) AS n, SUM(val) AS s, AVG(val) AS a "
    "FROM big GROUP BY grp"
)


def _make_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY, grp TEXT, val FLOAT)")
    rng = random.Random(7)
    db.insert_many(
        "big",
        [
            {"id": i, "grp": f"g{i % GROUPS}", "val": rng.random() * 100}
            for i in range(ROWS)
        ],
    )
    db.set_engine("vector")
    return db


def _best_of(fn) -> float:
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best


@pytest.fixture(scope="module")
def lineage_result(emit, emit_json):
    db = _make_db()
    baseline = db.query(SQL)  # warm: column store + plan cache

    per_query_ms = _best_of(lambda: db.query(SQL))

    # Correctness under the real sampled path: run a stream one sampling
    # period long, assert capture fired and the results never changed.
    mgr = db.enable_lineage()
    assert mgr.sample == SAMPLE
    for _ in range(SAMPLE):
        assert len(db.query(SQL)) == len(baseline)
    assert mgr.captures >= 1, "sampling never fired over the stream"
    captured_rows, _ = mgr.capture(SQL, db.plan(SQL), record=False)
    assert sorted(map(repr, captured_rows)) == sorted(map(repr, baseline))

    # The in-band captured-query price: capture + store.record, exactly
    # what a sampled SELECT pays (maybe_capture returns the rows, so the
    # query is not re-executed).
    plan = db.plan(SQL)
    store = mgr.store
    captured_ms = _best_of(
        lambda: store.record(SQL, "vectorized", mgr.capture(SQL, plan, record=False)[1], ["big"])
    )
    db.disable_lineage()

    overhead_pct = (captured_ms - per_query_ms) / (SAMPLE * per_query_ms) * 100.0
    full_ratio = captured_ms / per_query_ms

    table = SeriesTable("rows", ["per_query_ms", "captured_ms"])
    table.add(ROWS, {"per_query_ms": per_query_ms, "captured_ms": captured_ms})
    emit(f"\n== lineage capture: vectorized aggregate, {ROWS} rows ==")
    emit(table.format(unit="ms"))
    emit(
        f"captured query: {full_ratio:.1f}x plain ({captured_ms:.1f} ms vs "
        f"{per_query_ms:.1f} ms); amortized at 1/{SAMPLE} sampling: "
        f"{overhead_pct:+.2f}% (gate {OVERHEAD_GATE_PCT:.0f}%)"
    )
    emit_json(
        "lineage",
        table,
        extra={
            "lineage_gate": {
                "query": "aggregate",
                "rows": ROWS,
                "sample": SAMPLE,
                "per_query_ms": per_query_ms,
                "captured_ms": captured_ms,
                "overhead_pct": overhead_pct,
                "limit_pct": OVERHEAD_GATE_PCT,
            },
            "full_capture": {"ratio": full_ratio},
        },
    )
    return {
        "per_query_ms": per_query_ms,
        "captured_ms": captured_ms,
        "overhead_pct": overhead_pct,
        "full_ratio": full_ratio,
    }


def test_sampled_capture_clears_overhead_gate(lineage_result):
    """Default-config lineage stays within 10% of the no-lineage
    baseline, amortized over the sampling period."""
    assert lineage_result["overhead_pct"] <= OVERHEAD_GATE_PCT


def test_full_capture_is_bounded(lineage_result):
    """Unconditional capture pays the whole tax on every query; it should
    cost a modest constant factor over plain execution, not blow up."""
    assert lineage_result["full_ratio"] < 60.0
