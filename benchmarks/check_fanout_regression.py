"""CI gate: async fan-out must beat the threaded engine by a set factor.

Reads ``benchmarks/BENCH_fanout.json`` (written by ``bench_fanout.py``)
and exits non-zero if the async engine's broadcast time at the baseline
fan-out fails to beat the threaded engine's by the recorded ``required``
factor.  Run after the benchmark:

    python benchmarks/check_fanout_regression.py

Kept as a standalone script (not a test) so the CI job can upload the
JSON artifact even when the gate fails.
"""

import json
import sys
from pathlib import Path

RESULT = Path(__file__).parent / "BENCH_fanout.json"


def main() -> int:
    if not RESULT.exists():
        print(f"FAIL: {RESULT} missing -- did bench_fanout run?")
        return 2
    payload = json.loads(RESULT.read_text(encoding="utf-8"))
    gate = payload.get("fanout_gate")
    if not isinstance(gate, dict):
        print(f"FAIL: {RESULT} has no fanout_gate block")
        return 2
    measured = float(gate["speedup"])
    required = float(gate["required"])
    verdict = "PASS" if measured >= required else "FAIL"
    print(
        f"{verdict}: async vs threaded broadcast at {gate['clients']} "
        f"clients over {payload.get('rows')} notifications: {measured:.2f}x "
        f"(required {required:.1f}x; threaded {gate['threaded_ms']:.1f} ms, "
        f"async {gate['async_ms']:.1f} ms)"
    )
    return 0 if measured >= required else 1


if __name__ == "__main__":
    sys.exit(main())
