"""C10k-style fan-out: the async sync engine under a client fleet.

The protocol's callback model (server connects back to each client's
listener, Section VI-C) means N clients = N server-side sockets.  The
threaded engine pays one blocking ``sendall`` -- plus one JSON encode and
one frame build -- *per client per notification*, all on the notifying
thread; the async engine encodes each frame variant once per flush and
pushes bytes through per-client bounded queues serviced by one event
loop.  This benchmark measures what that buys at scale:

* **Connect ramp**: registering N mirror clients back-to-back (listener
  accept + HELLO/REPLY handshake each).
* **Broadcast throughput**: ``BENCH_FANOUT_ROWS`` notifications pushed
  through ``server.broadcast()`` (the exact entry point a center flush
  uses), each fanned out to every client; reported as *deliveries/s*
  (frames actually received by the fleet), measured from first push
  until the last client has every frame.  The storage engine's per-row
  cost is identical across modes and measured elsewhere, so it stays
  out of this loop.
* **NOTIFY latency**: end-to-end per-delivery time from just before
  ``insert()`` to frame receipt at the client, sampled over quiet-state
  probes; p50/p99 across (client, probe) pairs.

The fleet itself is a single ``selectors`` loop on one thread -- no
per-client threads on the receiving side either, so 1k+ clients fit in
one process and the fleet never becomes the bottleneck being measured.

The CI gate (async >= ``FANOUT_GATE``x threaded broadcast throughput at
``BENCH_FANOUT_BASELINE_CLIENTS`` clients) is asserted here and
re-checked from ``BENCH_fanout.json`` by ``check_fanout_regression.py``.

Scale with ``BENCH_FANOUT_CLIENTS`` (default 1024; CI smoke runs 256).
"""

import os
import selectors
import socket
import statistics
import time

import pytest

from repro.bench import SeriesTable, Timer, speedup
from repro.db import Column, Database
from repro.db.types import INTEGER
from repro.sync import NotificationCenter, SyncServer
from repro.sync import protocol
from repro.sync.server import MODE_ASYNC, MODE_THREADED

CLIENTS = int(os.environ.get("BENCH_FANOUT_CLIENTS", "1024"))
BASELINE_CLIENTS = int(os.environ.get("BENCH_FANOUT_BASELINE_CLIENTS", "256"))
ROWS = int(os.environ.get("BENCH_FANOUT_ROWS", "200"))
LATENCY_PROBES = int(os.environ.get("BENCH_FANOUT_PROBES", "30"))
#: The regression gate: at the baseline fan-out the async engine must
#: beat the threaded engine on broadcast throughput by this factor.
FANOUT_GATE = 3.0


def _raise_nofile_limit(need: int) -> None:
    """Lift the soft RLIMIT_NOFILE toward the hard limit; 3 fds/client."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    want = need * 3 + 256
    if soft < want:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(want, hard), hard))


class _FleetClient:
    """One simulated mirror client: a listener pre-handshake, then a
    connected socket whose inbound NOTIFY frames are counted byte-level
    (newline framing) with only sampled JSON decodes."""

    __slots__ = ("listener", "sock", "frames", "mark", "mark_ns", "tail")

    def __init__(self) -> None:
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(1)
        self.listener.setblocking(False)
        self.sock = None
        self.frames = 0  # NOTIFY frames received (REPLY excluded)
        self.mark = 0  # frame count snapshot for the armed probe
        self.mark_ns = 0  # receipt time of the first post-mark frame
        self.tail = b""

    @property
    def port(self) -> int:
        return self.listener.getsockname()[1]

    def on_readable(self, decode_every: int) -> bool:
        """Drain the socket; returns False on EOF."""
        try:
            chunk = self.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return True
        if not chunk:
            return False
        data = self.tail + chunk
        lines = data.split(b"\n")
        self.tail = lines.pop()
        got = 0
        for line in lines:
            if self.frames == 0:
                # First complete frame is the handshake REPLY.
                message = protocol.decode(line)
                assert message["type"] == protocol.REPLY
            elif decode_every and (self.frames % decode_every) == 0:
                message = protocol.decode(line)
                assert message["type"] in (protocol.NOTIFY, protocol.NOTIFY_BATCH)
            self.frames += 1
            got += 1
        if got and self.mark_ns == 0 and self.frames > self.mark:
            self.mark_ns = time.perf_counter_ns()
        return True


class Fleet:
    """N clients on one selector loop, driven inline (no threads): the
    bench calls :meth:`pump` / :meth:`wait_frames` between server acts."""

    def __init__(self, n: int, decode_every: int = 64) -> None:
        _raise_nofile_limit(n)
        self.selector = selectors.DefaultSelector()
        self.decode_every = decode_every
        self.clients = [_FleetClient() for _ in range(n)]
        for client in self.clients:
            self.selector.register(client.listener, selectors.EVENT_READ, client)
        self.hello = protocol.encode(protocol.hello())

    def pump(self, timeout: float = 0.0) -> None:
        for key, _events in self.selector.select(timeout):
            client = key.data
            if key.fileobj is client.listener:
                try:
                    sock, _addr = client.listener.accept()
                except (BlockingIOError, InterruptedError):
                    continue
                sock.setblocking(False)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                # The client side speaks first: HELLO, answered by REPLY.
                sock.sendall(self.hello)
                client.sock = sock
                self.selector.register(sock, selectors.EVENT_READ, client)
            elif not client.on_readable(self.decode_every):
                self.selector.unregister(key.fileobj)

    def wait_frames(self, per_client: int, timeout: float = 60.0) -> bool:
        """Pump until every client has >= per_client NOTIFY frames
        (frame 0 is the REPLY, hence the +1)."""
        deadline = time.monotonic() + timeout
        want = per_client + 1
        while time.monotonic() < deadline:
            if all(c.frames >= want for c in self.clients):
                return True
            self.pump(timeout=0.05)
        return all(c.frames >= want for c in self.clients)

    def connected(self) -> int:
        return sum(1 for c in self.clients if c.sock is not None)

    def arm_probe(self) -> None:
        for client in self.clients:
            client.mark = client.frames
            client.mark_ns = 0

    def probe_latencies_ms(self, start_ns: int) -> list[float]:
        return [
            (c.mark_ns - start_ns) / 1e6 for c in self.clients if c.mark_ns
        ]

    def close(self) -> None:
        for client in self.clients:
            if client.sock is not None:
                try:
                    self.selector.unregister(client.sock)
                except KeyError:
                    pass
                client.sock.close()
            try:
                self.selector.unregister(client.listener)
            except KeyError:
                pass
            client.listener.close()
        self.selector.close()


def _make_db() -> Database:
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", INTEGER)],
        primary_key="id",
    )
    return db


def _run_arm(mode: str, n_clients: int, rows: int, probes: int) -> dict:
    """One (mode, fan-out) measurement: ramp, broadcast, latency."""
    db = _make_db()
    center = NotificationCenter(db)
    server = SyncServer(
        db, center, use_sockets=True, heartbeat_interval=None, mode=mode
    )
    fleet = Fleet(n_clients)
    try:
        # --- connect ramp: register + connect-back + handshake, N times.
        # register_client blocks until the client's HELLO arrives, so the
        # registrations run on a helper thread while this thread pumps
        # the fleet's accept loop.
        import threading

        failures: list[Exception] = []

        def registrar() -> None:
            try:
                for client in fleet.clients:
                    server.register_client("pts", "127.0.0.1", client.port)
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        with Timer() as ramp:
            reg = threading.Thread(target=registrar)
            reg.start()
            while reg.is_alive():
                fleet.pump(timeout=0.01)
            reg.join()
            while fleet.connected() < n_clients:
                fleet.pump(timeout=0.05)
        assert not failures, failures[0]
        assert server.client_count() == n_clients

        # --- broadcast throughput: the notification plane in isolation.
        # server.broadcast() is exactly where a center flush lands; the
        # storage engine's per-row cost (WAL, lineage, triggers) is the
        # same in both modes and measured elsewhere (bench_fig8), so it
        # stays out of this loop.
        with Timer() as burst:
            for i in range(rows):
                server.broadcast("pts", [("insert", i + 1)])
            assert fleet.wait_frames(rows)
        deliveries = rows * n_clients
        assert sum(c.frames for c in fleet.clients) == deliveries + n_clients
        assert server.evictions == 0

        # --- per-delivery latency, quiet state (one in-flight insert).
        samples: list[float] = []
        for i in range(probes):
            fleet.arm_probe()
            start_ns = time.perf_counter_ns()
            db.insert("pts", {"id": rows + i + 1, "x": i})
            assert fleet.wait_frames(rows + i + 1)
            samples.extend(fleet.probe_latencies_ms(start_ns))

        # --- saturation snapshot, taken while everything is still up:
        # event-loop lag / idle headroom and send-queue high watermarks
        # accumulated across the ramp + burst + probes above.
        health = server.health()
    finally:
        fleet.close()
        server.close()
        center.close()
    samples.sort()
    return {
        "mode": mode,
        "clients": n_clients,
        "ramp_ms": ramp.ms,
        "ramp_clients_per_s": n_clients / (ramp.ms / 1000.0),
        "broadcast_ms": burst.ms,
        "deliveries_per_s": deliveries / (burst.ms / 1000.0),
        "latency_p50_ms": statistics.median(samples),
        "latency_p99_ms": samples[min(len(samples) - 1, int(0.99 * len(samples)))],
        "evictions": 0,
        "health": {
            "loop": health["loop"],
            "queues": health["queues"],
            "shards": health["shards"],
        },
    }


def _format_arms(table: SeriesTable, width: int = 16) -> str:
    """Like ``SeriesTable.format`` but with string-valued x (arm names)."""
    header = [table.x_label.rjust(width)] + [
        name[: width - 1].rjust(width) for name in table.series_names
    ]
    lines = ["".join(header)]
    for x, values in table.rows:
        cells = [f"{x:>{width}}"]
        for name in table.series_names:
            cells.append(f"{values[name]:>{width},.2f}")
        lines.append("".join(cells))
    return "\n".join(lines)


@pytest.fixture(scope="module")
def fanout_result(emit, emit_json):
    arms = []
    # Threaded baseline at the gate fan-out, async at the gate fan-out
    # and at full scale (the C10k headline number).
    plan = [(MODE_THREADED, BASELINE_CLIENTS), (MODE_ASYNC, BASELINE_CLIENTS)]
    if CLIENTS != BASELINE_CLIENTS:
        plan.append((MODE_ASYNC, CLIENTS))
    for mode, n_clients in plan:
        arms.append(_run_arm(mode, n_clients, ROWS, LATENCY_PROBES))

    by_key = {(arm["mode"], arm["clients"]): arm for arm in arms}
    threaded = by_key[(MODE_THREADED, BASELINE_CLIENTS)]
    async_base = by_key[(MODE_ASYNC, BASELINE_CLIENTS)]
    gate_speedup = speedup(threaded["broadcast_ms"], async_base["broadcast_ms"])

    table = SeriesTable(
        "arm",
        [
            "ramp_ms",
            "broadcast_ms",
            "deliveries_per_s",
            "latency_p50_ms",
            "latency_p99_ms",
        ],
    )
    for arm in arms:
        table.add(
            f"{arm['mode']}_{arm['clients']}",
            {
                "ramp_ms": arm["ramp_ms"],
                "broadcast_ms": arm["broadcast_ms"],
                "deliveries_per_s": arm["deliveries_per_s"],
                "latency_p50_ms": arm["latency_p50_ms"],
                "latency_p99_ms": arm["latency_p99_ms"],
            },
        )
    headline = by_key.get((MODE_ASYNC, CLIENTS), async_base)
    extra = {
        "rows": ROWS,
        "clients": CLIENTS,
        "baseline_clients": BASELINE_CLIENTS,
        "arms": arms,
        "fanout_gate": {
            "clients": BASELINE_CLIENTS,
            "threaded_ms": threaded["broadcast_ms"],
            "async_ms": async_base["broadcast_ms"],
            "speedup": gate_speedup,
            "required": FANOUT_GATE,
        },
    }
    emit(f"\n== NOTIFY fan-out, {ROWS} rows/arm (socket sync) ==")
    emit(_format_arms(table))
    emit(
        f"async vs threaded broadcast at {BASELINE_CLIENTS} clients: "
        f"{gate_speedup:.1f}x (gate {FANOUT_GATE:.0f}x); "
        f"async@{headline['clients']}: "
        f"{headline['deliveries_per_s']:,.0f} deliveries/s, "
        f"p99 {headline['latency_p99_ms']:.2f} ms"
    )
    loop = headline["health"]["loop"]
    queues = headline["health"]["queues"]
    if loop is not None:
        emit(
            f"async@{headline['clients']} loop health: "
            f"lag p50 {loop['lag_ms']['p50'] or 0:.2f} ms "
            f"p99 {loop['lag_ms']['p99'] or 0:.2f} ms, "
            f"poll idle {loop['poll_idle_ratio']:.1%}; "
            f"queue hiwat {queues['hiwat_frames']} frames "
            f"/ {queues['hiwat_bytes']:,} bytes "
            f"(limit {queues['limit_frames']})"
        )
    emit_json("fanout", table, extra=extra)
    return by_key, gate_speedup


def test_async_beats_threaded_broadcast(fanout_result):
    """The CI gate: encode-once queued fan-out clears FANOUT_GATE."""
    _arms, gate_speedup = fanout_result
    assert gate_speedup >= FANOUT_GATE


def test_full_scale_fanout_sustains(fanout_result):
    """The headline arm held every client and delivered every frame
    (asserted inside the arm); p99 stays in single-digit milliseconds
    territory relative to the broadcast interval."""
    arms, _gate = fanout_result
    headline = arms.get((MODE_ASYNC, CLIENTS)) or arms[(MODE_ASYNC, BASELINE_CLIENTS)]
    assert headline["latency_p99_ms"] > 0.0
    assert headline["deliveries_per_s"] > 0.0


def test_ramp_scales(fanout_result):
    arms, _gate = fanout_result
    for arm in arms.values():
        assert arm["ramp_clients_per_s"] > 50.0


def test_async_arms_report_loop_health(fanout_result):
    """Every async arm lands a saturation snapshot in the JSON: loop lag
    quantiles observed (the loop serviced cross-thread submits) and
    queue high watermarks inside the eviction limits (nothing evicted)."""
    arms, _gate = fanout_result
    for (mode, _clients), arm in arms.items():
        health = arm["health"]
        if mode != MODE_ASYNC:
            assert health["loop"] is None
            continue
        loop = health["loop"]
        assert loop is not None and loop["iterations"] > 0
        assert loop["lag_ms"]["count"] > 0
        assert loop["lag_ms"]["p99"] is not None
        queues = health["queues"]
        assert 0 < queues["hiwat_frames"] <= queues["limit_frames"]
