"""CI gate: continuous profiling must stay under its overhead budget.

Reads ``benchmarks/BENCH_profiler_overhead.json`` (written by
``bench_profiler_overhead.py``) and exits non-zero if the sampler's
measured overhead on the Figure-8 insert pipeline exceeds the recorded
budget, or if the run produced no flamegraph output (a sampler that
observed nothing trivially costs nothing).  Run after the benchmark:

    python benchmarks/check_profiler_regression.py

Kept as a standalone script (not a test) so the CI job can upload the
JSON artifact even when the gate fails.
"""

import json
import sys
from pathlib import Path

RESULT = Path(__file__).parent / "BENCH_profiler_overhead.json"


def main() -> int:
    if not RESULT.exists():
        print(f"FAIL: {RESULT} missing -- did bench_profiler_overhead run?")
        return 2
    payload = json.loads(RESULT.read_text(encoding="utf-8"))
    data = payload.get("data")
    if not isinstance(data, dict):
        print(f"FAIL: {RESULT} has no data block")
        return 2
    overhead = float(data["profiler_overhead"])
    budget = float(data["budget"])
    flame_lines = int(data.get("flamegraph_lines", 0))
    ok = overhead < budget and flame_lines > 0
    verdict = "PASS" if ok else "FAIL"
    print(
        f"{verdict}: profiler overhead on the Figure-8 pipeline at "
        f"{data.get('hz')} Hz: {overhead * 100:+.1f}% "
        f"(budget {budget * 100:.0f}%; baseline {data['baseline_ms']:.1f} ms, "
        f"profiled {data['profiled_ms']:.1f} ms, "
        f"{data.get('samples')} samples, {flame_lines} flamegraph lines)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
