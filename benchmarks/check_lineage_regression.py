"""CI gate: sampled lineage capture must cost <= 10% on the aggregate bench.

Reads ``benchmarks/BENCH_lineage.json`` (written by ``bench_lineage.py``)
and exits non-zero if the enabled-capture overhead over the disabled
baseline exceeds the recorded ``limit_pct``.  Run after the benchmark:

    python benchmarks/check_lineage_regression.py

Kept as a standalone script (not a test) so the CI job can upload the
JSON artifact even when the gate fails.
"""

import json
import sys
from pathlib import Path

RESULT = Path(__file__).parent / "BENCH_lineage.json"


def main() -> int:
    if not RESULT.exists():
        print(f"FAIL: {RESULT} missing -- did bench_lineage run?")
        return 2
    payload = json.loads(RESULT.read_text(encoding="utf-8"))
    gate = payload.get("lineage_gate")
    if not isinstance(gate, dict):
        print(f"FAIL: {RESULT} has no lineage_gate block")
        return 2
    measured = float(gate["overhead_pct"])
    limit = float(gate["limit_pct"])
    verdict = "PASS" if measured <= limit else "FAIL"
    print(
        f"{verdict}: lineage capture (1/{gate['sample']} sampling) on the "
        f"aggregate bench at {gate['rows']} rows: amortized "
        f"{measured:+.2f}% over baseline (limit {limit:.1f}%; "
        f"plain {gate['per_query_ms']:.2f} ms, "
        f"captured {gate['captured_ms']:.2f} ms)"
    )
    return 0 if measured <= limit else 1


if __name__ == "__main__":
    sys.exit(main())
