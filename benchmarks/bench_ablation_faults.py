"""Ablation A6: fault tolerance of the notification path.

Design choice under test: the Section VI-C protocol ships *compact*
notifications and lets clients pull changed rows from R_D keyed by
``last_seq_no``.  A lossy or dying transport therefore costs **latency,
never data**: dropped NOTIFYs are recovered by the next pull, a severed
connection by heartbeat detection + reconnect + seq-no replay, and an
unrecoverable one by degrading to in-process polling.

We drive the full register -> NOTIFY -> refresh cycle over a seeded
:class:`~repro.sync.faults.FaultyTransport` at increasing drop rates and
under repeated forced disconnects, and check the shape that matters:
delivery degrades with the fault rate, convergence never does.
"""

import time

import pytest

from repro.bench import SeriesTable, Timer
from repro.db import Column, Database
from repro.db.types import FLOAT, INTEGER
from repro.retry import RetryPolicy
from repro.sync import (
    FaultPlan,
    FaultyTransport,
    NotificationCenter,
    SyncClient,
    SyncServer,
)

DROP_RATES = (0.0, 0.1, 0.3)
N_ROWS = 200
HB = 0.05


def fresh_stack(plans, seed=7, heartbeat=HB):
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", FLOAT)],
        primary_key="id",
    )
    center = NotificationCenter(db)
    queue = list(plans)
    transports = []

    def factory(stream):
        plan = queue.pop(0) if queue else None
        transport = FaultyTransport(stream, plan, seed=seed)
        transports.append(transport)
        return transport

    server = SyncServer(
        db,
        center,
        use_sockets=True,
        heartbeat_interval=heartbeat,
        transport_factory=factory,
    )
    client = SyncClient(
        server,
        reconnect=RetryPolicy(
            max_attempts=20,
            base_delay=0.01,
            multiplier=1.5,
            max_delay=0.1,
            retryable=(OSError, Exception),
        ),
        heartbeat_timeout=HB * 5 if heartbeat is not None else None,
    )
    client.mirror("pts")
    return db, server, client, transports


def mirrored(client):
    return sorted(r["id"] for r in client.table("pts").all_rows())


@pytest.fixture(scope="module")
def faults_table(emit, emit_json):
    table = SeriesTable(
        "drop_pct", ["insert_ms", "converge_ms", "delivered", "converged"]
    )
    for rate in DROP_RATES:
        plans = [FaultPlan(drop_rate=rate)] if rate > 0 else [None]
        # Liveness off for the sweep: heartbeat PINGs would consume RNG
        # draws (schedule becomes timing-dependent) and reconnect replay
        # would inflate the delivery count we are measuring.
        db, server, client, _transports = fresh_stack(plans, heartbeat=None)
        with Timer() as t_insert:
            for i in range(N_ROWS):
                db.insert("pts", {"id": i, "x": float(i)})
        with Timer() as t_converge:
            client.refresh("pts")
        converged = mirrored(client) == list(range(N_ROWS))
        table.add(
            rate * 100,
            {
                "insert_ms": t_insert.ms,
                "converge_ms": t_converge.ms,
                "delivered": float(client.notify_received),
                "converged": 1.0 if converged else 0.0,
            },
        )
        client.close()
        server.close()
    emit(
        "\n== Ablation A6: notify->pull under a lossy wire "
        f"({N_ROWS} statements, seeded drop rates) =="
    )
    emit(table.format())
    emit_json("ablation_faults", table)
    return table


def test_a6_drops_cost_delivery_never_data(faults_table, benchmark):
    benchmark(lambda: None)
    delivered = faults_table.series("delivered")
    converged = faults_table.series("converged")
    # Delivery shrinks as the wire gets worse...
    assert delivered[0] >= delivered[-1]
    # ...but every run converged to the exact table contents.
    assert converged == [1.0] * len(DROP_RATES)


def test_a6_reconnect_storm_recovers_every_row(faults_table, benchmark):
    """Three consecutive forced disconnects mid-burst: the client must
    reconnect each time and still converge via seq-no replay."""
    plans = [FaultPlan(disconnect_at=5)] * 3
    db, server, client, transports = fresh_stack(plans)
    with Timer() as t_total:
        for i in range(60):
            db.insert("pts", {"id": i, "x": float(i)})
            time.sleep(0.002)  # let NOTIFYs (and deaths) interleave
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline and client.reconnects < 3:
            time.sleep(0.01)
        client.refresh("pts")
    assert client.reconnects >= 3, f"expected 3+ reconnects, got {client.reconnects}"
    assert mirrored(client) == list(range(60))
    assert sum(t.disconnected for t in transports) >= 3

    def kernel():
        db.insert("pts", {"id": kernel.n, "x": 0.0})
        kernel.n += 1
        client.refresh("pts")

    kernel.n = 1000
    benchmark(kernel)
    client.close()
    server.close()


def test_a6_heartbeat_overhead_is_bounded(faults_table, benchmark):
    """Liveness costs a few tiny messages per second, not throughput:
    the notify->refresh hot path is unchanged by heartbeats."""
    db, server, client, _transports = fresh_stack([None])
    benchmark(lambda: None)
    start = time.monotonic()
    pings_before = server.pings_sent
    n = 0
    with Timer() as t_busy:
        while time.monotonic() - start < 0.5:
            db.insert("pts", {"id": n, "x": 0.0})
            n += 1
            if n % 50 == 0:
                client.refresh("pts")
    client.refresh("pts")
    pings_during = server.pings_sent - pings_before
    assert mirrored(client) == list(range(n))
    # Ping traffic stays proportional to elapsed time (~1/HB per second),
    # independent of the thousands of NOTIFYs that flowed meanwhile.
    assert pings_during <= (t_busy.ms / 1000.0) / HB + 10
    client.close()
    server.close()
