"""Unified bench-gate runner: one registry, one CI job matrix.

Every performance gate in CI has the same shape -- run a benchmark that
writes ``BENCH_<name>.json``, then run a standalone check script that
re-reads the JSON and fails on regression (kept separate so the artifact
uploads even when the gate fails).  This driver owns that shape; adding
gate N+1 is one ``GATES`` entry plus a line in the CI matrix.

    python benchmarks/run_gates.py fanout      # one gate
    python benchmarks/run_gates.py --list      # enumerate gates
    python benchmarks/run_gates.py --all       # every gate, stop on fail

Environment overrides in each gate are CI smoke scales; run the bench
files directly (or export the variables yourself) for full-scale numbers.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class Gate:
    """One CI performance gate: tests around a benchmark and its check."""

    name: str
    description: str
    bench: str
    check: str
    #: CI-scale environment overrides for the bench run.
    env: dict[str, str] = field(default_factory=dict)
    #: Correctness suites that must pass before the bench runs (the
    #: gate is meaningless if the subsystem is wrong).
    pre_tests: tuple[str, ...] = ()
    #: Oracles that run after the bench (e.g. property-based equivalence).
    post_tests: tuple[str, ...] = ()
    #: Glob (relative to benchmarks/) of the JSON artifacts to upload.
    artifacts: str = ""


GATES: dict[str, Gate] = {
    gate.name: gate
    for gate in (
        Gate(
            name="batching",
            description="batched propagation must beat immediate by 3x",
            bench="benchmarks/bench_policy_batching.py",
            check="benchmarks/check_batching_regression.py",
            env={"BENCH_BATCH_ROWS": "2000"},
            artifacts="BENCH_policy_batching.json",
        ),
        Gate(
            name="columnar",
            description="vectorized 1M-row aggregate must beat row by 10x",
            bench="benchmarks/bench_columnar.py",
            check="benchmarks/check_columnar_regression.py",
            post_tests=("tests/db/test_vector_oracle.py",),
            artifacts="BENCH_columnar.json",
        ),
        Gate(
            name="lineage",
            description="amortized lineage capture must stay under 10%",
            bench="benchmarks/bench_lineage.py",
            check="benchmarks/check_lineage_regression.py",
            pre_tests=("tests/lineage", "tests/apps/test_telemetry_why.py"),
            artifacts="BENCH_lineage.json",
        ),
        Gate(
            name="durability",
            description="fsync=interval must stay within 25% of in-memory",
            bench="benchmarks/bench_durability.py",
            check="benchmarks/check_durability_regression.py",
            artifacts="BENCH_durability*.json",
        ),
        Gate(
            name="fanout",
            description="async broadcast must beat threaded by 3x at 256 clients",
            bench="benchmarks/bench_fanout.py",
            check="benchmarks/check_fanout_regression.py",
            env={
                "BENCH_FANOUT_CLIENTS": "256",
                "BENCH_FANOUT_ROWS": "200",
                "BENCH_FANOUT_PROBES": "10",
            },
            artifacts="BENCH_fanout.json",
        ),
        Gate(
            name="profiler",
            description="continuous profiling must cost under 5% on fig-8",
            bench="benchmarks/bench_profiler_overhead.py",
            check="benchmarks/check_profiler_regression.py",
            env={"BENCH_PROFILER_BATCH": "300", "BENCH_PROFILER_BATCHES": "4"},
            pre_tests=("tests/obs/test_profiler.py", "tests/obs/test_slowlog.py"),
            artifacts="BENCH_profiler_overhead.json",
        ),
    )
}


def _run(cmd: list[str], env: dict[str, str] | None = None) -> int:
    merged = dict(os.environ)
    merged["PYTHONPATH"] = str(REPO / "src")
    if env:
        merged.update(env)
    print(f"+ {' '.join(cmd)}", flush=True)
    return subprocess.run(cmd, cwd=REPO, env=merged).returncode


def run_gate(gate: Gate) -> int:
    py = sys.executable
    for suite in gate.pre_tests:
        code = _run([py, "-m", "pytest", suite, "-x", "-q"])
        if code:
            return code
    code = _run(
        [py, "-m", "pytest", gate.bench, "-x", "-q", "--benchmark-disable"],
        env=gate.env,
    )
    if code:
        return code
    for suite in gate.post_tests:
        code = _run([py, "-m", "pytest", suite, "-x", "-q"])
        if code:
            return code
    return _run([py, gate.check])


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("gate", nargs="?", choices=sorted(GATES))
    parser.add_argument("--list", action="store_true", help="enumerate gates")
    parser.add_argument("--all", action="store_true", help="run every gate")
    args = parser.parse_args(argv)
    if args.list:
        for gate in GATES.values():
            print(f"{gate.name:12} {gate.description}")
        return 0
    if args.all:
        for gate in GATES.values():
            print(f"=== gate: {gate.name} ===", flush=True)
            code = run_gate(gate)
            if code:
                return code
        return 0
    if not args.gate:
        parser.error("pick a gate, --all, or --list")
    return run_gate(GATES[args.gate])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
