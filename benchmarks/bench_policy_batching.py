"""Propagation-policy benchmarks: batched & coalesced propagation.

Section V of the paper defines three propagation policies -- immediate
(P1), deferred to process completion (P2), and periodic (P3).  The
batching layer (``repro.sync.batching``) implements them as per-table
configuration; these benchmarks measure the trade they buy:

* **Burst-insert throughput**: one writer inserting ``BENCH_BATCH_ROWS``
  rows through the socket sync layer, fanned out to 1/8/32 clients, at
  flush batch sizes 1 (immediate) / 16 / 256 / 4096.  Immediate pays one
  NOTIFY frame per statement per client; a threshold policy coalesces a
  whole batch into (at most) one NOTIFYB frame per client.
* **NOTIFY-to-applied latency**: the price of batching -- a single
  change under a threshold policy waits up to ``max_delay_ms`` before
  the flush ships it.
* **State equivalence**: whatever the policy, the final mirror, view,
  and display states must be byte-identical -- batching reorders and
  coalesces the *wire traffic*, never the *outcome*.

The throughput gate (threshold-256 at least ``THROUGHPUT_GATE``x faster
than immediate at the largest fan-out) is asserted here and re-checked
by CI from ``BENCH_policy_batching.json``.

Scale with ``BENCH_BATCH_ROWS`` (default 10k; CI smoke runs small).
"""

import os
import statistics
import time

import pytest

from repro.bench import SeriesTable, Timer, speedup
from repro.db import Column, Database
from repro.db.schema import TID
from repro.db.types import INTEGER
from repro.ivm import SelectProjectView, ViewRegistry
from repro.sync import (
    IMMEDIATE,
    MANUAL,
    NotificationCenter,
    RefreshDriver,
    SyncClient,
    SyncServer,
    Threshold,
)
from repro.vis.display import Display

ROWS = int(os.environ.get("BENCH_BATCH_ROWS", "10000"))
BATCH_SIZES = (1, 16, 256, 4096)
CLIENT_COUNTS = (1, 8, 32)
#: The regression gate: threshold-256 must beat immediate by this factor
#: on burst-insert throughput at the largest fan-out.  CI re-checks the
#: same number from the emitted JSON.
THROUGHPUT_GATE = 3.0
#: Flush deadline for the latency arms (the batching tax upper bound).
LATENCY_DELAY_MS = 20.0


def _make_db() -> Database:
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", INTEGER)],
        primary_key="id",
    )
    return db


def _stack(n_clients: int, use_sockets: bool):
    db = _make_db()
    center = NotificationCenter(db)
    server = SyncServer(db, center, use_sockets=use_sockets)
    clients = [SyncClient(server) for _ in range(n_clients)]
    mirrors = [client.mirror("pts") for client in clients]
    return db, center, server, clients, mirrors


def _teardown(center, server, clients) -> None:
    for client in clients:
        client.close()
    server.close()
    center.close()


def _policy_for(batch: int):
    if batch <= 1:
        return IMMEDIATE
    # Count-driven: the deadline is far beyond any bench run, so flushes
    # happen exactly every ``batch`` statements (plus one final flush).
    return Threshold(max_changes=batch, max_delay_ms=600_000.0)


def _wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.0005)
    return False


# ----------------------------------------------------------------------
# Burst-insert throughput: batch size x fan-out grid
@pytest.fixture(scope="module")
def throughput_result(emit, emit_json):
    table = SeriesTable("batch_size", [f"clients_{n}_ms" for n in CLIENT_COUNTS])
    grid_ms: dict[tuple[int, int], float] = {}
    for batch in BATCH_SIZES:
        values = {}
        for n_clients in CLIENT_COUNTS:
            db, center, server, clients, mirrors = _stack(
                n_clients, use_sockets=True
            )
            try:
                center.set_policy("pts", _policy_for(batch))
                with Timer() as timer:
                    for i in range(ROWS):
                        db.insert("pts", {"id": i + 1, "x": i})
                    center.flush("pts")
                    for client in clients:
                        client.refresh("pts")
                for mirror in mirrors:
                    assert len(mirror) == ROWS
            finally:
                _teardown(center, server, clients)
            values[f"clients_{n_clients}_ms"] = timer.ms
            grid_ms[(batch, n_clients)] = timer.ms
        table.add(batch, values)

    fan_out = CLIENT_COUNTS[-1]
    gate_speedup = speedup(grid_ms[(1, fan_out)], grid_ms[(256, fan_out)])
    extra = {
        "rows": ROWS,
        "client_counts": list(CLIENT_COUNTS),
        "throughput_gate": {
            "clients": fan_out,
            "immediate_ms": grid_ms[(1, fan_out)],
            "threshold_256_ms": grid_ms[(256, fan_out)],
            "speedup": gate_speedup,
            "required": THROUGHPUT_GATE,
        },
    }
    emit(f"\n== burst-insert propagation, {ROWS} rows (socket sync) ==")
    emit(table.format(unit="ms"))
    emit(
        f"threshold-256 vs immediate at {fan_out} clients: "
        f"{gate_speedup:.1f}x (gate {THROUGHPUT_GATE:.0f}x)"
    )
    emit_json("policy_batching", table, extra=extra)
    return grid_ms, gate_speedup


def test_batching_beats_immediate(throughput_result):
    """Threshold-256 clears the throughput gate at the largest fan-out."""
    _grid, gate_speedup = throughput_result
    assert gate_speedup >= THROUGHPUT_GATE


def test_batching_scales_with_fanout(throughput_result):
    """Batched propagation wins more the more clients listen."""
    grid, _gate = throughput_result
    few = speedup(grid[(1, CLIENT_COUNTS[0])], grid[(256, CLIENT_COUNTS[0])])
    many = speedup(grid[(1, CLIENT_COUNTS[-1])], grid[(256, CLIENT_COUNTS[-1])])
    assert many >= few * 0.8  # fan-out never erodes the win


# ----------------------------------------------------------------------
# NOTIFY-to-applied latency: the batching tax
@pytest.fixture(scope="module")
def latency_result(emit, emit_json):
    table = SeriesTable("batch_size", ["p50_ms", "p95_ms"])
    probes = 30
    for batch in (1, 16, 256):
        db, center, server, clients, mirrors = _stack(1, use_sockets=True)
        mirror = mirrors[0]
        try:
            if batch > 1:
                center.set_policy(
                    "pts",
                    Threshold(max_changes=batch, max_delay_ms=LATENCY_DELAY_MS),
                )
            samples = []
            with RefreshDriver(clients[0], max_rate=500.0, poll_interval=0.001):
                for i in range(probes):
                    start = time.perf_counter()
                    db.insert("pts", {"id": i + 1, "x": i})
                    assert _wait_until(lambda: len(mirror) == i + 1)
                    samples.append((time.perf_counter() - start) * 1000.0)
        finally:
            _teardown(center, server, clients)
        samples.sort()
        table.add(
            batch,
            {
                "p50_ms": statistics.median(samples),
                "p95_ms": samples[min(len(samples) - 1, int(0.95 * len(samples)))],
            },
        )
    emit("\n== NOTIFY-to-applied latency, single change (socket sync) ==")
    emit(table.format(unit="ms"))
    emit_json(
        "policy_latency",
        table,
        extra={"probes": probes, "max_delay_ms": LATENCY_DELAY_MS},
    )
    return table


def test_batched_latency_bounded_by_deadline(latency_result):
    """A lone change under a threshold policy ships within max_delay_ms
    (plus scheduling slack), never unboundedly late."""
    for x, values in latency_result.rows:
        if x > 1:
            assert values["p50_ms"] < LATENCY_DELAY_MS * 10


def test_immediate_latency_beats_batched(latency_result):
    """Immediate is the low-latency end of the trade-off."""
    by_batch = {x: values for x, values in latency_result.rows}
    assert by_batch[1]["p50_ms"] <= by_batch[256]["p50_ms"]


# ----------------------------------------------------------------------
# State equivalence: policies change traffic, never outcomes
def _visible(row):
    return tuple(
        sorted((k, v) for k, v in row.items() if not k.startswith("__"))
    )


def _run_workload_under(policy):
    """Insert/update/delete churn under one policy; return final states."""
    db, center, server, clients, mirrors = _stack(1, use_sockets=False)
    client, mirror = clients[0], mirrors[0]
    registry = ViewRegistry(db)
    registry.register(SelectProjectView("all_pts", "pts"))
    if policy.buffers:
        registry.set_policy("all_pts", policy)
    center.set_policy("pts", policy)
    display = Display(name="bench")
    try:
        n = min(ROWS, 2000)
        tids = []
        for i in range(n):
            tids.append(db.insert("pts", {"id": i + 1, "x": i})[TID])
        for i in range(0, n, 2):  # churn: update every other row...
            db.update_by_tid("pts", tids[i], {"x": i * 10})
        db.delete_by_tids("pts", tids[::5])  # ...and delete every fifth
        center.flush_all()
        registry.flush_all()
        client.refresh("pts")
        display.apply_snapshot(
            {
                "obj_id": row["id"],
                "x": float(row["x"]),
                "y": 0.0,
                "width": None,
                "height": None,
                "color": None,
                "label": None,
                "selected": False,
            }
            for row in mirror.all_rows()
        )
        return (
            sorted(_visible(row) for row in mirror.all_rows()),
            sorted(_visible(row) for row in registry.rows("all_pts")),
            sorted(
                (item.obj_id, item.x) for item in display.items.values()
            ),
        )
    finally:
        _teardown(center, server, clients)


def test_final_state_identical_across_policies(emit):
    """P1/P2/P3 produce byte-identical mirror, view, and display state."""
    arms = {
        "immediate": IMMEDIATE,
        "threshold": Threshold(max_changes=64, max_delay_ms=600_000.0),
        "manual": MANUAL,
    }
    states = {name: _run_workload_under(policy) for name, policy in arms.items()}
    baseline = states["immediate"]
    assert baseline[0], "workload produced no surviving rows"
    for name, state in states.items():
        assert state == baseline, f"policy {name} diverged from immediate"
    emit(
        "\n== state equivalence ==\n"
        f"{len(baseline[0])} rows identical across {sorted(arms)} "
        "(mirror, view, display)"
    )
