"""Observability overhead: instrumented-but-disabled vs no instrumentation.

The repro.obs contract is "off by default, near-zero overhead": every
instrumented hot path costs exactly one attribute check
(``if OBS.enabled:``) plus one method delegation while tracing is off.
This bench pins that contract on the hottest instrumented path -- the SQL
point query -- by comparing

* **baseline**: ``Database._execute_impl`` called directly (the verbatim
  pre-instrumentation body; the guard and delegation are bypassed);
* **disabled**: the public ``Database.execute`` with observability off
  (guard + delegation, no tracing work);
* **enabled**: the public path with tracing on (spans + metrics), for
  context -- this one is allowed to cost real time.

The disabled-vs-baseline delta must stay under 5%.

Scale with ``BENCH_SQL_ROWS`` (default 100k; CI smoke runs small).
"""

import gc
import os
import random

import pytest

import repro.obs as obs
from repro.bench import Timer
from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT

ROWS = int(os.environ.get("BENCH_SQL_ROWS", "100000"))
#: Iterations per timing sample; point queries are a few microseconds,
#: so each sample aggregates enough work to swamp timer resolution.
ITERS = 2000
#: Best-of-N sampling: scheduler hiccups and GC pauses otherwise
#: dominate single samples at this granularity.
SAMPLES = 5
OVERHEAD_BUDGET = 0.05  # disabled instrumentation may cost at most 5%


@pytest.fixture(scope="module")
def point_db():
    rng = random.Random(7)
    db = Database()
    db.create_table(
        "emp",
        [
            Column("id", INTEGER, nullable=False),
            Column("dept", TEXT),
            Column("salary", INTEGER),
        ],
        primary_key="id",
    )
    db.insert_many(
        "emp",
        [
            {"id": i, "dept": f"d{rng.randrange(20)}", "salary": rng.randrange(100_000)}
            for i in range(ROWS)
        ],
    )
    return db


def _best_of(fn, samples=SAMPLES):
    """Minimum wall-clock ms over ``samples`` runs of ``fn``."""
    best = float("inf")
    for _ in range(samples):
        gc.collect()
        with Timer() as t:
            fn()
        best = min(best, t.ms)
    return best


def test_disabled_obs_overhead_under_budget(point_db, emit, emit_json):
    sql = f"SELECT * FROM emp WHERE id = {ROWS // 2}"
    point_db.execute(sql)  # warm statement + plan caches

    def run_baseline():
        execute = point_db._execute_impl
        for _ in range(ITERS):
            execute(sql, ())

    def run_disabled():
        execute = point_db.execute
        for _ in range(ITERS):
            execute(sql)

    def run_enabled():
        execute = point_db.execute
        for _ in range(ITERS):
            execute(sql)

    obs.disable()
    baseline_ms = _best_of(run_baseline)
    disabled_ms = _best_of(run_disabled)
    obs.enable()
    try:
        enabled_ms = _best_of(run_enabled)
    finally:
        obs.disable()
        obs.reset()

    overhead = disabled_ms / baseline_ms - 1.0
    emit(
        f"\n== Observability overhead: SQL point query x{ITERS} ({ROWS} rows) ==\n"
        f"baseline (no instrumentation): {baseline_ms / ITERS * 1000:.2f} us/query\n"
        f"disabled instrumentation:      {disabled_ms / ITERS * 1000:.2f} us/query "
        f"({overhead * 100:+.1f}%)\n"
        f"enabled tracing + metrics:     {enabled_ms / ITERS * 1000:.2f} us/query "
        f"({(enabled_ms / baseline_ms - 1.0) * 100:+.1f}%)"
    )
    emit_json(
        "obs_overhead",
        {
            "rows": ROWS,
            "iterations": ITERS,
            "baseline_us": baseline_ms / ITERS * 1000,
            "disabled_us": disabled_ms / ITERS * 1000,
            "enabled_us": enabled_ms / ITERS * 1000,
            "disabled_overhead": overhead,
            "budget": OVERHEAD_BUDGET,
        },
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"disabled instrumentation costs {overhead * 100:.1f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%) -- "
        f"baseline {baseline_ms:.2f} ms vs disabled {disabled_ms:.2f} ms"
    )
