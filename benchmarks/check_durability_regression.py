"""CI gate: group-commit WAL overhead must stay within bounds.

Reads ``benchmarks/BENCH_durability.json`` (written by
``bench_durability.py``) and exits non-zero if the ``fsync=interval``
arm's overhead over the in-memory Figure-8 insert pipeline exceeds the
recorded ``required_max_pct``.  Run after the benchmark:

    python benchmarks/check_durability_regression.py

Kept as a standalone script (not a test) so the CI job can upload the
JSON artifact even when the gate fails.
"""

import json
import sys
from pathlib import Path

RESULT = Path(__file__).parent / "BENCH_durability.json"


def main() -> int:
    if not RESULT.exists():
        print(f"FAIL: {RESULT} missing -- did bench_durability run?")
        return 2
    payload = json.loads(RESULT.read_text(encoding="utf-8"))
    gate = payload.get("overhead_gate")
    if not isinstance(gate, dict):
        print(f"FAIL: {RESULT} has no overhead_gate block")
        return 2
    measured = float(gate["overhead_pct"])
    required = float(gate["required_max_pct"])
    verdict = "PASS" if measured <= required else "FAIL"
    print(
        f"{verdict}: fsync={gate['policy']} WAL overhead on the insert "
        f"pipeline ({payload.get('batches')} x {payload.get('batch_rows')} "
        f"rows): {measured:.1f}% (max {required:.1f}%; baseline "
        f"{gate['baseline_ms']:.1f} ms, durable {gate['durable_ms']:.1f} ms)"
    )
    return 0 if measured <= required else 1


if __name__ == "__main__":
    sys.exit(main())
