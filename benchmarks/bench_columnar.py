"""Columnar engine benchmarks: row vs vectorized execution.

The vectorized engine (``repro.db.vector``) executes scans, filters, and
group-by aggregates over column chunks (``repro.db.columnar``) instead
of per-row dicts; list comprehensions and builtins over parallel arrays
run at C speed.  These benchmarks measure the win on the three query
shapes the paper's visual-analytics workloads lean on:

* **scan_count**: ``COUNT(*)`` over the whole table -- the vectorized
  plan counts chunk lengths without touching a single value.
* **filter**: a selective predicate (``val > 99``, ~1% selectivity)
  projecting one column.
* **aggregate**: ``GROUP BY`` with COUNT/SUM/AVG over a 50-group key.

Each arm runs at every scale in ``SCALES``, both engines, best of
``REPS``; results are asserted identical between engines before any
timing is trusted.  The regression gate (vectorized aggregate at the
largest scale at least ``AGGREGATE_GATE``x faster than the row engine)
is asserted here and re-checked by CI from ``BENCH_columnar.json`` via
``check_columnar_regression.py``.

Scale with ``BENCH_COLUMNAR_ROWS`` (default 1M; CI smoke can run small,
but the gate is only meaningful at the default scale).
"""

import os
import random
import time

import pytest

from repro.bench import SeriesTable, speedup
from repro.db import Database

MAX_ROWS = int(os.environ.get("BENCH_COLUMNAR_ROWS", "1000000"))
SCALES = tuple(
    sorted({min(100_000, MAX_ROWS), MAX_ROWS})
)
GROUPS = 50
REPS = 3
#: The regression gate: the vectorized aggregate must beat the row
#: engine by this factor at the largest scale.  CI re-checks the same
#: number from the emitted JSON.
AGGREGATE_GATE = 10.0

QUERIES = {
    "scan_count": "SELECT COUNT(*) AS n FROM big",
    "filter": "SELECT id FROM big WHERE val > 99",
    "aggregate": (
        "SELECT grp, COUNT(*) AS n, SUM(val) AS s, AVG(val) AS a "
        "FROM big GROUP BY grp"
    ),
}


def _make_db(rows: int) -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE big (id INTEGER PRIMARY KEY, grp TEXT, val FLOAT)"
    )
    rng = random.Random(7)
    db.insert_many(
        "big",
        [
            {"id": i, "grp": f"g{i % GROUPS}", "val": rng.random() * 100}
            for i in range(rows)
        ],
    )
    return db


def _best_of(db: Database, mode: str, sql: str) -> tuple[float, list]:
    """Best-of-REPS wall time for ``sql`` under engine ``mode``."""
    db.set_engine(mode)
    result = db.query(sql)  # warm: builds the column store / plan cache
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        result = db.query(sql)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, result


@pytest.fixture(scope="module")
def columnar_result(emit, emit_json):
    tables = {
        name: SeriesTable("rows", ["row_ms", "vector_ms", "speedup_x"])
        for name in QUERIES
    }
    grid: dict[tuple[str, int], dict[str, float]] = {}
    for rows in SCALES:
        db = _make_db(rows)
        for name, sql in QUERIES.items():
            row_ms, row_result = _best_of(db, "row", sql)
            vec_ms, vec_result = _best_of(db, "vector", sql)
            # Identical results are a precondition for trusting the
            # timings: same rows, same key order, same rounding.
            assert sorted(map(repr, row_result)) == sorted(
                map(repr, vec_result)
            ), f"{name} diverged at {rows} rows"
            cell = {
                "row_ms": row_ms,
                "vector_ms": vec_ms,
                "speedup_x": speedup(row_ms, vec_ms),
            }
            grid[(name, rows)] = cell
            tables[name].add(rows, cell)

    top = SCALES[-1]
    gate_cell = grid[("aggregate", top)]
    extra = {
        "scales": list(SCALES),
        "groups": GROUPS,
        "reps": REPS,
        "queries": QUERIES,
        "columnar_gate": {
            "query": "aggregate",
            "rows": top,
            "row_ms": gate_cell["row_ms"],
            "vector_ms": gate_cell["vector_ms"],
            "speedup": gate_cell["speedup_x"],
            "required": AGGREGATE_GATE,
        },
    }
    for name, table in tables.items():
        emit(f"\n== {name}: row vs vectorized engine ==")
        emit(table.format(unit="ms"))
    emit(
        f"aggregate at {top} rows: {gate_cell['speedup_x']:.1f}x "
        f"(gate {AGGREGATE_GATE:.0f}x)"
    )
    merged = SeriesTable(
        "rows",
        [f"{name}_{col}" for name in QUERIES for col in
         ("row_ms", "vector_ms", "speedup_x")],
    )
    for rows in SCALES:
        merged.add(
            rows,
            {
                f"{name}_{col}": grid[(name, rows)][col]
                for name in QUERIES
                for col in ("row_ms", "vector_ms", "speedup_x")
            },
        )
    emit_json("columnar", merged, extra=extra)
    return grid


def test_aggregate_clears_gate(columnar_result):
    """Vectorized group-by aggregate clears the 10x gate at full scale."""
    cell = columnar_result[("aggregate", SCALES[-1])]
    assert cell["speedup_x"] >= AGGREGATE_GATE


def test_scan_count_wins_big(columnar_result):
    """COUNT(*) never touches values: the win should be enormous."""
    cell = columnar_result[("scan_count", SCALES[-1])]
    assert cell["speedup_x"] >= AGGREGATE_GATE


def test_filter_beats_row_engine(columnar_result):
    """A selective filter still wins despite result materialization."""
    cell = columnar_result[("filter", SCALES[-1])]
    assert cell["speedup_x"] >= 2.0


def test_speedup_grows_with_scale(columnar_result):
    """The vectorized win should not erode as tables grow."""
    if len(SCALES) < 2:
        pytest.skip("single-scale run")
    small, large = SCALES[0], SCALES[-1]
    agg_small = columnar_result[("aggregate", small)]["speedup_x"]
    agg_large = columnar_result[("aggregate", large)]["speedup_x"]
    assert agg_large >= agg_small * 0.5  # scale never erases the win
