"""Section VII-B: layout procedure delta handlers.

The paper's claims:

* the initial LinLog computation "can take several minutes to converge",
  but streaming positions "every second or at every iteration... allows
  the system to appear reactive";
* the incremental handler places new nodes near laid-out neighbors and
  "terminates much faster since most of the nodes will only move
  slightly... remarkably stable and fast".

We measure initial vs incremental convergence (iterations and time) on
the co-publication network and assert the speedup.
"""

import pytest

from repro.apps import copub
from repro.bench import SeriesTable, Timer, speedup
from repro.vis import LinLogLayout


def make_graph(n_authors=800, n_pubs=650, seed=21):
    generator = copub.CopublicationGenerator(
        n_authors=n_authors, n_teams=40, seed=seed
    )
    publications = generator.take(n_pubs)
    return generator, copub.build_graph(publications)


@pytest.fixture(scope="module")
def handler_results(emit, emit_json):
    generator, graph = make_graph()
    layout = LinLogLayout(graph, seed=3)
    with Timer() as t_initial:
        initial = layout.run(max_iterations=600)
    # Deltas: three rounds of new publications.
    rounds = []
    for round_no in range(3):
        fresh = generator.take(8)
        before = set(graph.nodes())
        copub.build_graph(fresh, graph=graph)
        added = [n for n in graph.nodes() if n not in before]
        with Timer() as t_incr:
            incremental = layout.update(added_nodes=added, max_iterations=600)
        rounds.append((len(added), incremental, t_incr.ms))
    table = SeriesTable("round", ["added_nodes", "iterations", "time_ms"])
    table.add(0, {"added_nodes": len(graph), "iterations": initial.iterations,
                  "time_ms": t_initial.ms})
    for i, (added, result, ms) in enumerate(rounds, start=1):
        table.add(i, {"added_nodes": added, "iterations": result.iterations,
                      "time_ms": ms})
    emit("\n== Section VII-B: initial layout (round 0) vs incremental delta handler ==")
    emit(table.format())
    emit_json("viib_layout_handlers", table)
    return initial, t_initial.ms, rounds


def test_viib_incremental_converges_much_faster(handler_results, benchmark, emit):
    initial, initial_ms, rounds = handler_results
    mean_incr_iters = sum(r.iterations for _a, r, _ms in rounds) / len(rounds)
    factor = initial.iterations / max(mean_incr_iters, 1)
    emit(f"iteration speedup (initial/incremental): {factor:.1f}x")
    assert factor > 3.0, "incremental relayout should converge much faster"
    mean_incr_ms = sum(ms for _a, _r, ms in rounds) / len(rounds)
    assert speedup(initial_ms, mean_incr_ms) > 2.0

    # Headline kernel for pytest-benchmark: one incremental update.
    generator, graph = make_graph(n_authors=300, n_pubs=250, seed=5)
    layout = LinLogLayout(graph, seed=5)
    layout.run(max_iterations=300)

    def incremental_update():
        fresh = generator.take(4)
        before = set(graph.nodes())
        copub.build_graph(fresh, graph=graph)
        added = [n for n in graph.nodes() if n not in before]
        return layout.update(added_nodes=added, max_iterations=300)

    benchmark.pedantic(incremental_update, rounds=3, iterations=1)


def test_viib_all_incremental_rounds_converge(handler_results, benchmark):
    _initial, _ms, rounds = handler_results
    assert all(result.converged for _a, result, _ms in rounds)

    def noop_layout():
        graph = copub.build_graph(
            copub.CopublicationGenerator(n_authors=120, n_teams=10, seed=6).take(80)
        )
        return LinLogLayout(graph, seed=6).run(max_iterations=80)

    benchmark.pedantic(noop_layout, rounds=2, iterations=1)


def test_viib_streaming_keeps_system_reactive(benchmark, emit):
    """Positions stream to the DB during the run: display-visible frames
    exist long before convergence (the paper's reactivity point)."""
    from repro.db import Database
    from repro.vis import VisualAttributesStore

    _generator, graph = make_graph(n_authors=300, n_pubs=250, seed=8)
    db = Database()
    store = VisualAttributesStore(db)
    frames = []

    def stream(iteration, positions, energy):
        if iteration % 10 == 0:
            store.write_positions(1, positions)
            frames.append(iteration)

    layout = LinLogLayout(graph, seed=8)
    result = benchmark.pedantic(
        lambda: layout.run(max_iterations=200, on_iteration=stream),
        rounds=1,
        iterations=1,
    )
    assert frames, "no intermediate frames streamed"
    assert frames[0] <= 10  # a frame existed almost immediately
    stored = len(store.read(1))
    assert stored == len(graph)
    emit(f"streamed {len(frames)} frames during {result.iterations} iterations")
