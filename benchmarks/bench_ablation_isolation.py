"""Ablation A3: isolation query-rewriting overhead.

Design choice under test (DESIGN.md #2): deferred deletes via deletion
tables ``R_deleted`` plus anti-join query rewriting, instead of physical
deletes (which would break running readers) or full MVCC (which the
paper judges unnecessary).

We measure scan cost through the isolation layer as the fraction of
logically-deleted tuples grows, against a raw scan of the same data.
Expected shape: overhead is a modest constant factor and does not blow
up with the deleted fraction.
"""

import pytest

from repro.bench import SeriesTable, Timer
from repro.db import Column, Database, col
from repro.db.types import INTEGER
from repro.workflow import WorkflowEngine
from repro.workflow.isolation import IsolationContext

TABLE_ROWS = 20_000
DELETED_FRACTIONS = (0.0, 0.1, 0.3, 0.5)


def build(deleted_fraction):
    db = Database()
    engine = WorkflowEngine(db)
    db.create_table(
        "items", [Column("id", INTEGER, nullable=False), Column("v", INTEGER)],
        primary_key="id",
    )
    db.insert_many(
        "items", [{"id": i, "v": i % 97} for i in range(TABLE_ROWS)]
    )
    engine.isolation.manage("items")
    # A long-lived witness blocks garbage collection, so deletions stay
    # logical (in R_deleted) instead of becoming physical removals.
    witness = IsolationContext(6, db.now(), None)
    engine.isolation.process_started(6, witness.start_time)
    deleter = IsolationContext(7, db.tick(), None)
    engine.isolation.process_started(7, deleter.start_time)
    cutoff = int(TABLE_ROWS * deleted_fraction)
    if cutoff:
        engine.isolation.logical_delete("items", col("id") < cutoff, deleter)
    engine.isolation.process_ended(7)  # deletions stamped; GC blocked
    # The reader starts after the deleter ended -> must not see deleted rows.
    reader = IsolationContext(8, db.tick(), None)
    return db, engine, reader, cutoff


@pytest.fixture(scope="module")
def isolation_table(emit, emit_json):
    table = SeriesTable(
        "deleted_pct", ["raw_scan_ms", "isolated_scan_ms", "overhead_x"]
    )
    for fraction in DELETED_FRACTIONS:
        db, engine, reader, cutoff = build(fraction)
        with Timer() as t_raw:
            raw = sum(1 for _ in db.table("items").rows())
        with Timer() as t_iso:
            visible = len(engine.isolation.visible_rows("items", reader))
        assert raw == TABLE_ROWS
        assert visible == TABLE_ROWS - cutoff or fraction == 0.0
        table.add(
            fraction * 100,
            {
                "raw_scan_ms": t_raw.ms,
                "isolated_scan_ms": t_iso.ms,
                "overhead_x": t_iso.ms / max(t_raw.ms, 1e-6),
            },
        )
    emit(f"\n== Ablation A3: isolated scan vs raw scan ({TABLE_ROWS} rows) ==")
    emit(table.format())
    emit_json("ablation_isolation", table)
    return table


def test_a3_isolated_scan_correct_under_deletions(isolation_table, benchmark):
    db, engine, reader, cutoff = build(0.3)
    result = benchmark(engine.isolation.visible_rows, "items", reader)
    assert len(result) == TABLE_ROWS - cutoff


def test_a3_overhead_bounded(isolation_table, benchmark):
    db, engine, reader, _cutoff = build(0.0)
    benchmark(engine.isolation.visible_rows, "items", reader)
    overheads = isolation_table.series("overhead_x")
    # The rewriting (hidden-tid set + filter) costs a constant factor;
    # it must not explode as more tuples are logically deleted.
    assert max(overheads) < 30


def test_a3_deleting_process_sees_its_own_deletes(isolation_table, benchmark):
    db = Database()
    engine = WorkflowEngine(db)
    db.create_table("items", [Column("id", INTEGER)], )
    db.insert_many("items", [{"id": i} for i in range(1000)])
    engine.isolation.manage("items")
    ctx = IsolationContext(9, db.now(), None)
    engine.isolation.process_started(9, ctx.start_time)
    engine.isolation.logical_delete("items", col("id") < 500, ctx)

    def kernel():
        return engine.isolation.query("SELECT COUNT(*) AS n FROM items", (), ctx)

    rows = benchmark(kernel)
    assert rows[0]["n"] == 500
