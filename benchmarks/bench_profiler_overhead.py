"""Continuous profiler overhead: Figure-8 pipeline, sampler on vs off.

The sampling profiler (``repro.obs.profiler``) is designed to stay on in
production: a 99 Hz daemon thread walking ``sys._current_frames()``
costs the *sampled* threads nothing directly -- the overhead is GIL
contention from the sampler's own work (one frame walk per live thread
per tick).  This bench pins that contract on the paper's headline
workload, the Figure-8 insert pipeline (DB write -> trigger -> NOTIFY ->
mirror refresh -> delta handler -> layout), by comparing:

* **baseline**: the pipeline with tracing+metrics enabled, no profiler;
* **profiled**: the same batches with the sampler running at
  ``BENCH_PROFILER_HZ`` and span attribution active.

Variants are paired back-to-back in alternating order (see
``bench_telemetry_overhead`` for the rationale) and the gate takes the
cleanest pair: noise only ever inflates the measured overhead.  The
profiled arm must stay within ``OVERHEAD_BUDGET`` of baseline, and the
run must produce a non-empty flamegraph -- a sampler that costs nothing
because it observed nothing would pass a pure time gate.

Scale with ``BENCH_PROFILER_BATCH`` / ``BENCH_PROFILER_BATCHES``.
"""

import gc
import os

import repro.obs as obs
from repro.bench import InsertPipeline, Timer

BATCH = int(os.environ.get("BENCH_PROFILER_BATCH", "500"))
BATCHES = int(os.environ.get("BENCH_PROFILER_BATCHES", "6"))
SAMPLES = int(os.environ.get("BENCH_PROFILER_SAMPLES", "5"))
HZ = float(os.environ.get("BENCH_PROFILER_HZ", "99"))
#: The CI gate: continuous profiling may cost at most 5% wall time.
OVERHEAD_BUDGET = 0.05


def _timed(fn) -> float:
    gc.collect()
    with Timer() as t:
        fn()
    return t.ms


def test_profiler_overhead_under_budget(emit, emit_json):
    obs.enable()
    pipeline = InsertPipeline(use_sockets=False)
    try:
        pipeline.run_batch(BATCH)  # warm caches on both code paths

        def run() -> None:
            for _ in range(BATCHES):
                pipeline.run_batch(BATCH)

        pairs: list[tuple[float, float]] = []
        for round_no in range(SAMPLES):
            if round_no % 2 == 0:
                baseline = _timed(run)
                profiler = obs.OBS.enable_profiler(hz=HZ)
                profiled = _timed(run)
                obs.OBS.disable_profiler()
            else:
                profiler = obs.OBS.enable_profiler(hz=HZ)
                profiled = _timed(run)
                obs.OBS.disable_profiler()
                baseline = _timed(run)
            pairs.append((baseline, profiled))

        overhead = min(p / b for b, p in pairs) - 1.0
        baseline_ms = min(b for b, _ in pairs)
        profiled_ms = min(p for _, p in pairs)
        stats = profiler.stats()
        flame = obs.OBS.flamegraph()
        flame_lines = len([line for line in flame.splitlines() if line])
        hottest = profiler.hottest_spans(limit=5)
    finally:
        pipeline.close()
        obs.disable()
        obs.reset()

    emit(
        f"\n== Profiler overhead: Figure-8 pipeline, "
        f"{BATCHES}x{BATCH}-row batches at {HZ:g} Hz ==\n"
        f"baseline (tracing, no profiler): {baseline_ms:.1f} ms\n"
        f"profiled (sampler running):      {profiled_ms:.1f} ms "
        f"(best-pair overhead {overhead * 100:+.1f}%)\n"
        f"{stats['samples']} samples over {stats['distinct_stacks']} stacks, "
        f"{flame_lines} flamegraph lines; hottest spans: "
        + ", ".join(f"{h['span_name']} {h['self_ms']:.0f}ms" for h in hottest)
    )
    emit_json(
        "profiler_overhead",
        {
            "batch": BATCH,
            "batches": BATCHES,
            "hz": HZ,
            "baseline_ms": baseline_ms,
            "profiled_ms": profiled_ms,
            "profiler_overhead": overhead,
            "budget": OVERHEAD_BUDGET,
            "samples": stats["samples"],
            "attributed_ms": stats["attributed_ms"],
            "distinct_stacks": stats["distinct_stacks"],
            "sampler_errors": stats["errors"],
            "flamegraph_lines": flame_lines,
            "hottest_spans": hottest,
        },
    )
    assert flame_lines > 0, "profiled run produced an empty flamegraph"
    assert stats["errors"] == 0
    assert overhead < OVERHEAD_BUDGET, (
        f"profiler costs {overhead * 100:.1f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%) -- "
        f"baseline {baseline_ms:.1f} ms vs profiled {profiled_ms:.1f} ms"
    )
