"""Figure 7: the INRIA co-publications graph, laid out with LinLog.

The paper's figure is qualitative (a picture of ~4,500 nodes).  We
regenerate its substance: build the synthetic co-publication network at
the paper's scale, run the LinLog layout, and report size, convergence,
and clustering quality (team-mates end up closer than strangers --
the property that makes the picture readable).
"""

import math

import pytest

from repro.apps import copub
from repro.vis import LinLogLayout

#: Paper scale: "about 4500 nodes".  The bench sweep uses smaller sizes
#: to keep wall-clock sane; the headline run matches the paper's size.
PAPER_AUTHORS = 4500
PAPER_PUBLICATIONS = 3600


@pytest.fixture(scope="module")
def copub_graph():
    generator = copub.CopublicationGenerator(
        n_authors=PAPER_AUTHORS, n_teams=180, seed=31
    )
    publications = generator.take(PAPER_PUBLICATIONS)
    graph = copub.build_graph(publications)
    return generator, graph


def test_fig7_graph_matches_paper_scale(copub_graph, benchmark, emit):
    generator, graph = copub_graph
    emit(
        f"\n== Figure 7: co-publication graph ==\n"
        f"authors (nodes available): {PAPER_AUTHORS}\n"
        f"authors with >=1 co-publication: {len(graph)}\n"
        f"co-authorship edges: {graph.edge_count}"
    )
    assert 2000 < len(graph) <= PAPER_AUTHORS
    assert graph.edge_count > len(graph)  # denser than a tree

    def small_layout():
        small = copub.build_graph(
            copub.CopublicationGenerator(n_authors=300, n_teams=20, seed=1).take(200)
        )
        return LinLogLayout(small, seed=5).run(max_iterations=60)

    benchmark(small_layout)


def test_fig7_layout_converges_and_clusters(copub_graph, benchmark, emit, emit_json):
    generator, _big = copub_graph
    # Layout quality check on a mid-size slice (full 4.5k layout is the
    # separate headline iteration bench below).
    small_gen = copub.CopublicationGenerator(n_authors=400, n_teams=20, seed=9)
    publications = small_gen.take(350)
    graph = copub.build_graph(publications)
    result = benchmark.pedantic(
        lambda: LinLogLayout(graph, seed=11).run(max_iterations=300),
        rounds=1,
        iterations=1,
    )
    assert result.converged or result.iterations == 300
    positions = result.positions
    teams = {a["id"]: a["team"] for a in small_gen.authors}
    same_team, cross_team = [], []
    nodes = [n for n in graph.nodes()]
    for i, u in enumerate(nodes[:150]):
        for v in nodes[i + 1 : 150]:
            d = math.dist(positions[u], positions[v])
            if teams[u] == teams[v]:
                same_team.append(d)
            else:
                cross_team.append(d)
    assert same_team and cross_team
    mean_same = sum(same_team) / len(same_team)
    mean_cross = sum(cross_team) / len(cross_team)
    emit(
        f"clustering: mean same-team distance {mean_same:.3f} vs "
        f"cross-team {mean_cross:.3f} ({mean_cross / mean_same:.1f}x)"
    )
    emit_json(
        "fig7_copub_layout",
        {
            "iterations": result.iterations,
            "converged": result.converged,
            "mean_same_team_distance": mean_same,
            "mean_cross_team_distance": mean_cross,
            "separation": mean_cross / mean_same,
        },
        unit="layout distance (dimensionless)",
    )
    assert mean_same < mean_cross  # teams form visible clusters


def test_fig7_full_scale_iteration_cost(copub_graph, benchmark):
    """One LinLog iteration at the paper's full scale (4,500 nodes)."""
    _generator, graph = copub_graph
    layout = LinLogLayout(graph, seed=13)
    layout.seed_positions()

    def one_iteration():
        return layout._minimize(max_iterations=1, on_iteration=None, step=layout.step)

    result = benchmark.pedantic(one_iteration, rounds=3, iterations=1)
    assert len(result.positions) == len(graph)
