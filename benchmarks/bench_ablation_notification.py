"""Ablation A2: compact notify-then-pull vs shipping full tuples.

Design choice under test (DESIGN.md #1): "we keep [notifications] very
compact and transmit no more information than the above" -- a NOTIFY
carries only ``(table, seq_no, op)``; clients pull rows when *they*
decide to refresh.  The alternative pushes every changed row through the
socket immediately.

Why the paper's choice wins: under bursts, a display refreshing at its
own pace (say 10 fps) coalesces many notifications into one pull, while
push pays per-row serialization for every update whether or not a frame
will ever show it.  We measure both under a burst of K statements and
one consumer refresh.
"""

import json

import pytest

from repro.bench import SeriesTable, Timer
from repro.core import datamodel
from repro.db import Column, Database
from repro.db.types import FLOAT, INTEGER
from repro.sync import NotificationCenter, SyncClient, SyncServer
from repro.sync.protocol import encode

BURSTS = (10, 50, 100, 200)
ROWS_PER_STATEMENT = 20


def fresh_stack():
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", FLOAT), Column("y", FLOAT)],
        primary_key="id",
    )
    center = NotificationCenter(db)
    server = SyncServer(db, center, use_sockets=False)
    client = SyncClient(server)
    client.mirror("pts")
    return db, center, server, client


def run_compact(db, client, n_statements, start_id):
    """The paper's protocol: compact notifies, one pull at the end."""
    next_id = start_id
    for _ in range(n_statements):
        rows = [
            {"id": next_id + i, "x": 0.0, "y": 0.0}
            for i in range(ROWS_PER_STATEMENT)
        ]
        next_id += ROWS_PER_STATEMENT
        db.insert_many("pts", rows)
    client.refresh("pts")  # one coalesced pull
    return next_id


def run_push_full(db, n_statements, start_id, sink):
    """Strawman: serialize and 'send' every changed row per statement."""
    next_id = start_id
    for _ in range(n_statements):
        rows = [
            {"id": next_id + i, "x": 0.0, "y": 0.0}
            for i in range(ROWS_PER_STATEMENT)
        ]
        next_id += ROWS_PER_STATEMENT
        db.insert_many("pts", rows)
        for row in rows:
            sink.append(encode({"type": "ROW", "table": "pts", "values": row}))
    return next_id


@pytest.fixture(scope="module")
def notification_table(emit, emit_json):
    table = SeriesTable("statements", ["compact_ms", "push_full_ms", "bytes_pushed"])
    for burst in BURSTS:
        db, center, server, client = fresh_stack()
        with Timer() as t_compact:
            run_compact(db, client, burst, start_id=1)
        client.close()
        server.close()

        db2 = Database()
        db2.create_table(
            "pts",
            [Column("id", INTEGER, nullable=False), Column("x", FLOAT), Column("y", FLOAT)],
            primary_key="id",
        )
        sink: list[bytes] = []
        with Timer() as t_push:
            run_push_full(db2, burst, start_id=1, sink=sink)
        table.add(
            burst,
            {
                "compact_ms": t_compact.ms,
                "push_full_ms": t_push.ms,
                "bytes_pushed": float(sum(len(b) for b in sink)),
            },
        )
    emit("\n== Ablation A2: compact notify-then-pull vs push-full-tuples "
         f"({ROWS_PER_STATEMENT} rows/statement, one refresh per burst) ==")
    emit(table.format())
    emit_json("ablation_notification", table)
    return table


def test_a2_notification_rows_stay_compact(notification_table, benchmark):
    db, center, server, client = fresh_stack()

    def kernel():
        db.insert_many("pts", [{"id": kernel.n + i, "x": 0.0, "y": 0.0} for i in range(50)])
        kernel.n += 50
        client.refresh("pts")

    kernel.n = 1
    benchmark(kernel)
    notifications = db.query(f"SELECT * FROM {datamodel.T_NOTIFICATION}")
    # One compact row per statement, regardless of rows per statement.
    for row in notifications:
        payload = json.dumps(row)
        assert len(payload) < 200
    client.close()
    server.close()


def test_a2_pushed_bytes_grow_linearly_with_rows(notification_table, benchmark):
    benchmark(lambda: None)
    sent = notification_table.series("bytes_pushed")
    xs = notification_table.xs()
    # Push-full bandwidth is proportional to rows; compact is per-statement.
    assert sent[-1] / sent[0] == pytest.approx(xs[-1] / xs[0], rel=0.1)


def test_a2_compact_not_slower_despite_pull(notification_table, benchmark):
    db, center, server, client = fresh_stack()
    state = {"next_id": 1}

    def kernel():
        state["next_id"] = run_compact(db, client, 10, state["next_id"])

    benchmark(kernel)
    compact = notification_table.series("compact_ms")
    push = notification_table.series("push_full_ms")
    # Compact may pay the pull, but stays within 3x of push at every
    # burst size while transmitting none of the row payloads.
    for c, p in zip(compact, push):
        assert c < max(p, 0.5) * 3.0
    client.close()
    server.close()
