"""Figure 8: time to perform insert operations, per pipeline step.

Paper setup (Section VII-C): a DBMS connected to two EdiFlow instances;
batches of tuples are inserted and five steps are timed.  The paper
reports (for 100..2000 tuples): every series grows linearly with batch
size, and "the dominating time is required to write in the
VisualAttributes table".

We reproduce the same six series over loopback sockets and assert the
shape: linearity of the total, and VisualAttributes-insert dominance.
"""

import pytest

from repro.bench import (
    FIG8_SERIES,
    InsertPipeline,
    SeriesTable,
    dominance_ratio,
    is_roughly_linear,
    linear_fit,
)

BATCH_SIZES = (100, 250, 500, 1000, 1500, 2000)


@pytest.fixture(scope="module")
def fig8_table(emit, emit_json):
    """Run the sweep once per session; individual tests check its shape."""
    import gc

    pipeline = InsertPipeline(use_sockets=True)
    table = SeriesTable("tuples", list(FIG8_SERIES))
    repetitions = 3
    try:
        pipeline.run_batch(100)  # warm-up (JIT-less, but warms caches)
        for size in BATCH_SIZES:
            # Best of N repetitions: GC pauses and scheduler hiccups on
            # loopback sockets otherwise dominate single samples.
            samples = []
            for _ in range(repetitions):
                gc.collect()
                samples.append(pipeline.run_batch(size).as_dict())
            best = {
                series: min(sample[series] for sample in samples)
                for series in FIG8_SERIES
            }
            table.add(size, best)
    finally:
        pipeline.close()
    emit("\n== Figure 8: time to perform insert operation (two machines, sockets) ==")
    emit(table.format())
    emit_json("fig8_insert_pipeline", table)
    return table


def test_fig8_total_grows_linearly(fig8_table, benchmark):
    pipeline = InsertPipeline(use_sockets=False)
    try:
        benchmark(pipeline.run_batch, 500)
    finally:
        pipeline.close()
    xs = fig8_table.xs()
    assert is_roughly_linear(xs, fig8_table.series("total"), min_r_squared=0.85)
    slope, _intercept, _r2 = linear_fit(xs, fig8_table.series("total"))
    assert slope > 0


def test_fig8_visualattrs_insert_dominates(fig8_table, benchmark):
    """The paper: "The dominating time is required to write in the
    VisualAttributes table"."""
    pipeline = InsertPipeline(use_sockets=False)
    try:
        benchmark(pipeline.run_batch, 1000)
    finally:
        pipeline.close()
    others = [s for s in FIG8_SERIES if s not in ("insert_visualattrs", "total")]
    ratio = dominance_ratio(fig8_table, "insert_visualattrs", others)
    assert ratio > 1.0, f"VisualAttributes insert should dominate (ratio={ratio:.2f})"


def test_fig8_each_step_scales_with_batch(fig8_table, benchmark):
    pipeline = InsertPipeline(use_sockets=False)
    try:
        benchmark(pipeline.run_batch, 2000)
    finally:
        pipeline.close()
    for series in ("insert_visualattrs", "extract_new_nodes", "insert_into_display"):
        values = fig8_table.series(series)
        # Larger batches cost more end-to-end (allowing noise on smalls).
        assert values[-1] > values[0], f"{series} did not grow with batch size"
