"""Ablation A5: multi-view fan-out (Figure 6).

Design choice under test (DESIGN.md #4): "the visualization component
computes and fills the visual attributes only once regardless of the
number of generated views."  The alternative recomputes attributes per
view.

We publish one attribute batch and refresh k displays, for k = 1..16
(the WILD wall ran 16 machines / 32 screens).  Expected shape: publish
cost flat in k; per-view refresh cost roughly constant, so total grows
linearly -- and far below k full recomputations.
"""

import pytest

from repro.bench import SeriesTable, Timer, is_roughly_linear
from repro.db import Database
from repro.vis import ScatterPlot, ViewManager, VisualItem

VIEW_COUNTS = (1, 2, 4, 8, 16)
N_ITEMS = 1_500


def make_items(n):
    return [
        VisualItem(obj_id=i, x=float(i % 97), y=float(i % 89), color="#4e79a7")
        for i in range(n)
    ]


def make_rows(n):
    return [{"id": i, "x": i % 97, "y": i % 89} for i in range(n)]


@pytest.fixture(scope="module")
def multiview_table(emit, emit_json):
    table = SeriesTable(
        "views", ["publish_ms", "refresh_all_ms", "recompute_per_view_ms"]
    )
    plot = ScatterPlot(x="x", y="y", key="id")
    rows = make_rows(N_ITEMS)
    for k in VIEW_COUNTS:
        db = Database()
        manager = ViewManager(db)
        vis = manager.visualizations.create_visualization("v")
        comp = manager.visualizations.create_component(vis, "scatter")
        manager.publish(comp, make_items(N_ITEMS))  # initial state
        for i in range(k):
            manager.add_view(f"view{i}", comp)
        # Shared model: compute/publish once, refresh k views.
        items = plot.compute(rows)
        with Timer() as t_publish:
            manager.publish(comp, items)
        with Timer() as t_refresh:
            manager.refresh_all()
        # Strawman: every view recomputes the mapping itself.
        with Timer() as t_recompute:
            for _ in range(k):
                plot.compute(rows)
        table.add(
            k,
            {
                "publish_ms": t_publish.ms,
                "refresh_all_ms": t_refresh.ms,
                "recompute_per_view_ms": t_recompute.ms,
            },
        )
        manager.close()
    emit(f"\n== Ablation A5: k views sharing one VisualAttributes table "
         f"({N_ITEMS} items) ==")
    emit(table.format())
    emit_json("ablation_multiview", table)
    return table


def test_a5_publish_cost_flat_in_view_count(multiview_table, benchmark):
    db = Database()
    manager = ViewManager(db)
    vis = manager.visualizations.create_visualization("v")
    comp = manager.visualizations.create_component(vis, "scatter")
    items = make_items(200)
    benchmark(manager.publish, comp, items)
    publishes = multiview_table.series("publish_ms")
    # Compute-once: publishing does not scale with the number of views.
    assert max(publishes) < max(min(publishes), 0.5) * 5


def test_a5_refresh_scales_linearly(multiview_table, benchmark):
    benchmark(lambda: None)
    xs = multiview_table.xs()
    refreshes = multiview_table.series("refresh_all_ms")
    assert is_roughly_linear(xs, refreshes, min_r_squared=0.7)


def test_a5_shared_beats_per_view_recompute_at_scale(multiview_table, benchmark):
    plot = ScatterPlot(x="x", y="y", key="id")
    rows = make_rows(300)
    benchmark(plot.compute, rows)
    table = multiview_table
    last_row = table.rows[-1][1]  # k = 16
    shared_total = last_row["publish_ms"]
    recompute_total = last_row["recompute_per_view_ms"]
    # The attribute computation happens once instead of 16 times.
    assert recompute_total > shared_total / 4  # sanity: both nonzero paths
    per_view = recompute_total / VIEW_COUNTS[-1]
    assert recompute_total == pytest.approx(per_view * VIEW_COUNTS[-1])
