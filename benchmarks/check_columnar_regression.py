"""CI gate: the vectorized aggregate must beat the row engine 10x.

Reads ``benchmarks/BENCH_columnar.json`` (written by
``bench_columnar.py``) and exits non-zero if the 1M-row group-by
aggregate's vectorized speedup over the row engine falls below the
recorded ``required`` factor.  Run after the benchmark:

    python benchmarks/check_columnar_regression.py

Kept as a standalone script (not a test) so the CI job can upload the
JSON artifact even when the gate fails.
"""

import json
import sys
from pathlib import Path

RESULT = Path(__file__).parent / "BENCH_columnar.json"


def main() -> int:
    if not RESULT.exists():
        print(f"FAIL: {RESULT} missing -- did bench_columnar run?")
        return 2
    payload = json.loads(RESULT.read_text(encoding="utf-8"))
    gate = payload.get("columnar_gate")
    if not isinstance(gate, dict):
        print(f"FAIL: {RESULT} has no columnar_gate block")
        return 2
    measured = float(gate["speedup"])
    required = float(gate["required"])
    verdict = "PASS" if measured >= required else "FAIL"
    print(
        f"{verdict}: vectorized {gate['query']} at {gate['rows']} rows: "
        f"{measured:.2f}x over the row engine "
        f"(required {required:.1f}x; row {gate['row_ms']:.1f} ms, "
        f"vectorized {gate['vector_ms']:.1f} ms)"
    )
    return 0 if measured >= required else 1


if __name__ == "__main__":
    sys.exit(main())
