"""Substrate micro-benchmarks: the embedded SQL engine.

Not a paper experiment -- these pin down the cost of the substrate every
EdiFlow mechanism sits on, so regressions in the engine show up here
before they muddy the Figure-8 numbers.  Includes the ablations for the
index-routing optimizations (IndexScan / RangeIndexScan vs full scan)
and the statement/plan cache.

Scale with ``BENCH_SQL_ROWS`` (default 100k; CI smoke runs small).
"""

import os
import random

import pytest

from repro.bench import Timer, speedup
from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT

ROWS = int(os.environ.get("BENCH_SQL_ROWS", "100000"))
#: Ablation repetitions -- enough for stable numbers without letting the
#: forced-full-scan arm dominate wall clock at large ROWS.
REPS = max(20, min(200, 2_000_000 // ROWS))


@pytest.fixture(scope="module")
def loaded_db():
    rng = random.Random(1)
    db = Database()
    db.create_table(
        "emp",
        [
            Column("id", INTEGER, nullable=False),
            Column("dept", TEXT),
            Column("salary", INTEGER),
            Column("ts", INTEGER),
        ],
        primary_key="id",
    )
    db.insert_many(
        "emp",
        [
            {
                "id": i,
                "dept": f"d{rng.randrange(20)}",
                "salary": rng.randrange(100_000),
                # Monotonic event time: the range-scan ablation column.
                "ts": i * 10,
            }
            for i in range(ROWS)
        ],
    )
    # salary stays unindexed on purpose: the full-scan benchmarks below
    # measure genuine scans, not routed plans.
    db.table("emp").create_index("ix_emp_ts", ("ts",), sorted=True)
    return db


def test_insert_throughput(benchmark):
    db = Database()
    db.create_table(
        "t", [Column("id", INTEGER, nullable=False), Column("v", INTEGER)],
        primary_key="id",
    )
    state = {"next": 0}

    def kernel():
        base = state["next"]
        db.insert_many("t", [{"id": base + i, "v": i} for i in range(1000)])
        state["next"] = base + 1000

    benchmark(kernel)


def test_point_lookup_via_index(loaded_db, benchmark):
    rows = benchmark(loaded_db.query, "SELECT * FROM emp WHERE id = 12345")
    assert len(rows) == (1 if ROWS > 12345 else 0)


def test_full_scan_filter(loaded_db, benchmark):
    rows = benchmark(loaded_db.query, "SELECT * FROM emp WHERE salary > 90000")
    assert rows


def test_group_by_aggregate(loaded_db, benchmark):
    rows = benchmark(
        loaded_db.query,
        "SELECT dept, COUNT(*) AS n, AVG(salary) AS mean FROM emp GROUP BY dept",
    )
    assert len(rows) == 20


def test_join(loaded_db, benchmark):
    if not loaded_db.has_table("dept"):
        loaded_db.create_table("dept", [Column("dept", TEXT), Column("city", TEXT)])
        loaded_db.insert_many(
            "dept", [{"dept": f"d{i}", "city": f"c{i}"} for i in range(20)]
        )
    rows = benchmark(
        loaded_db.query,
        "SELECT e.id, d.city FROM emp e JOIN dept d ON e.dept = d.dept "
        "WHERE e.salary > 95000",
    )
    assert rows


def _ablate(db, routed_sql, scan_sql, reps=REPS):
    """Time ``routed_sql`` against its routing-defeated twin.

    Returns ``(speedup, routed_rows, scanned_rows)``.  The two result
    lists must be verified identical by the caller -- routing is a pure
    cost transformation.
    """
    routed_rows = db.query(routed_sql)
    scanned_rows = db.query(scan_sql)
    with Timer() as t_probe:
        for _ in range(reps):
            db.query(routed_sql)
    with Timer() as t_scan:
        for _ in range(reps):
            db.query(scan_sql)
    return speedup(t_scan.ms, t_probe.ms), t_probe, t_scan, routed_rows, scanned_rows


def test_index_probe_ablation(loaded_db, benchmark, emit, emit_json):
    """IndexScan vs forced full scan on the same point predicate."""
    target = ROWS // 2
    factor, t_probe, t_scan, probed, scanned = _ablate(
        loaded_db,
        f"SELECT * FROM emp WHERE id = {target}",
        # `id + 0` defeats routing, forcing the full scan.
        f"SELECT * FROM emp WHERE id + 0 = {target}",
    )
    assert probed == scanned  # identical rows, identical order
    assert len(probed) == 1
    emit(
        f"\n== Substrate: point lookup via index vs full scan ({ROWS} rows) ==\n"
        f"index probe: {t_probe.ms / REPS:.3f} ms/query, "
        f"full scan: {t_scan.ms / REPS:.3f} ms/query, speedup {factor:.0f}x"
    )
    emit_json(
        "substrate_point_lookup",
        {
            "rows": ROWS,
            "index_probe_ms": t_probe.ms / REPS,
            "full_scan_ms": t_scan.ms / REPS,
            "speedup": factor,
        },
    )
    assert factor > 5
    benchmark(loaded_db.query, f"SELECT * FROM emp WHERE id = {target}")


def test_range_scan_ablation(loaded_db, benchmark, emit):
    """RangeIndexScan vs forced full scan over a narrow ts window."""
    low, high = (ROWS // 2) * 10, (ROWS // 2 + 100) * 10
    factor, t_probe, t_scan, probed, scanned = _ablate(
        loaded_db,
        f"SELECT * FROM emp WHERE ts >= {low} AND ts < {high}",
        f"SELECT * FROM emp WHERE ts + 0 >= {low} AND ts + 0 < {high}",
    )
    assert probed == scanned
    assert len(probed) == 100
    emit(
        f"\n== Substrate: range scan via sorted index vs full scan ({ROWS} rows) ==\n"
        f"range scan: {t_probe.ms / REPS:.3f} ms/query, "
        f"full scan: {t_scan.ms / REPS:.3f} ms/query, speedup {factor:.0f}x"
    )
    assert factor > 5
    benchmark(
        loaded_db.query, f"SELECT * FROM emp WHERE ts >= {low} AND ts < {high}"
    )


def test_vectorized_engine_ablation(loaded_db, benchmark, emit, emit_json):
    """Row vs vectorized engine on the substrate's group-by aggregate.

    The same ablation discipline as the index tests: both engines must
    return identical rows before the timings mean anything.  The full
    scan/filter/aggregate grid lives in ``bench_columnar.py``; this arm
    keeps one vectorization number in the substrate suite so engine
    regressions surface alongside the routing ablations.
    """
    sql = "SELECT dept, COUNT(*) AS n, AVG(salary) AS mean FROM emp GROUP BY dept"
    loaded_db.set_engine("row")
    row_rows = loaded_db.query(sql)
    with Timer() as t_row:
        for _ in range(REPS):
            loaded_db.query(sql)
    loaded_db.set_engine("vector")
    vec_rows = loaded_db.query(sql)  # warm: builds the column store
    with Timer() as t_vec:
        for _ in range(REPS):
            loaded_db.query(sql)
    loaded_db.set_engine("auto")
    assert sorted(map(repr, row_rows)) == sorted(map(repr, vec_rows))
    factor = speedup(t_row.ms, t_vec.ms)
    emit(
        f"\n== Substrate: vectorized vs row group-by aggregate ({ROWS} rows) ==\n"
        f"vectorized: {t_vec.ms / REPS:.3f} ms/query, "
        f"row: {t_row.ms / REPS:.3f} ms/query, speedup {factor:.1f}x"
    )
    emit_json(
        "substrate_vectorized",
        {
            "rows": ROWS,
            "row_ms": t_row.ms / REPS,
            "vector_ms": t_vec.ms / REPS,
            "speedup": factor,
        },
    )
    assert factor > 2
    benchmark(loaded_db.query, sql)


def test_plan_cache_ablation(loaded_db, benchmark, emit, emit_json):
    """Repeated identical statement: cached plan vs parse+plan each time."""
    sql = "SELECT * FROM emp WHERE id = 4242"
    loaded_db.query(sql)  # warm both caches
    with Timer() as t_cached:
        for _ in range(500):
            loaded_db.query(sql)
    with Timer() as t_cold:
        for i in range(500):
            # A fresh literal each iteration defeats both caches while
            # keeping the plan shape (single point probe) identical.
            loaded_db.query(f"SELECT * FROM emp WHERE id = {i}")
    factor = speedup(t_cold.ms, t_cached.ms)
    info = loaded_db.cache_info()
    emit(
        f"\n== Substrate: plan cache on repeated statements ==\n"
        f"cached: {t_cached.ms / 500 * 1000:.1f} us/query, "
        f"uncached: {t_cold.ms / 500 * 1000:.1f} us/query, speedup {factor:.1f}x\n"
        f"statement cache: {info['statements']['hits']} hits / "
        f"{info['statements']['misses']} misses; "
        f"plan cache: {info['plans']['hits']} hits / {info['plans']['misses']} misses"
    )
    emit_json(
        "substrate_plan_cache",
        {
            "cached_us": t_cached.ms / 500 * 1000,
            "uncached_us": t_cold.ms / 500 * 1000,
            "speedup": factor,
            "cache_info": info,
        },
    )
    assert factor > 1
    benchmark(loaded_db.query, sql)
