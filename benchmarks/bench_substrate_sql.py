"""Substrate micro-benchmarks: the embedded SQL engine.

Not a paper experiment -- these pin down the cost of the substrate every
EdiFlow mechanism sits on, so regressions in the engine show up here
before they muddy the Figure-8 numbers.  Includes the ablation for the
point-lookup optimization (IndexScan vs full scan).
"""

import random

import pytest

from repro.bench import SeriesTable, Timer, speedup
from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT

ROWS = 20_000


@pytest.fixture(scope="module")
def loaded_db():
    rng = random.Random(1)
    db = Database()
    db.create_table(
        "emp",
        [
            Column("id", INTEGER, nullable=False),
            Column("dept", TEXT),
            Column("salary", INTEGER),
        ],
        primary_key="id",
    )
    db.insert_many(
        "emp",
        [
            {"id": i, "dept": f"d{rng.randrange(20)}", "salary": rng.randrange(100_000)}
            for i in range(ROWS)
        ],
    )
    return db


def test_insert_throughput(benchmark):
    db = Database()
    db.create_table(
        "t", [Column("id", INTEGER, nullable=False), Column("v", INTEGER)],
        primary_key="id",
    )
    state = {"next": 0}

    def kernel():
        base = state["next"]
        db.insert_many("t", [{"id": base + i, "v": i} for i in range(1000)])
        state["next"] = base + 1000

    benchmark(kernel)


def test_point_lookup_via_index(loaded_db, benchmark):
    rows = benchmark(loaded_db.query, "SELECT * FROM emp WHERE id = 12345")
    assert len(rows) == 1


def test_full_scan_filter(loaded_db, benchmark):
    rows = benchmark(loaded_db.query, "SELECT * FROM emp WHERE salary > 90000")
    assert rows


def test_group_by_aggregate(loaded_db, benchmark):
    rows = benchmark(
        loaded_db.query,
        "SELECT dept, COUNT(*) AS n, AVG(salary) AS mean FROM emp GROUP BY dept",
    )
    assert len(rows) == 20


def test_join(loaded_db, benchmark):
    if not loaded_db.has_table("dept"):
        loaded_db.create_table("dept", [Column("dept", TEXT), Column("city", TEXT)])
        loaded_db.insert_many(
            "dept", [{"dept": f"d{i}", "city": f"c{i}"} for i in range(20)]
        )
    rows = benchmark(
        loaded_db.query,
        "SELECT e.id, d.city FROM emp e JOIN dept d ON e.dept = d.dept "
        "WHERE e.salary > 95000",
    )
    assert rows


def test_index_probe_ablation(loaded_db, benchmark, emit):
    """IndexScan vs forced full scan on the same predicate."""
    with Timer() as t_probe:
        for _ in range(200):
            loaded_db.query("SELECT * FROM emp WHERE id = 777")
    with Timer() as t_scan:
        for _ in range(200):
            # `id + 0` defeats the probe, forcing the full scan.
            loaded_db.query("SELECT * FROM emp WHERE id + 0 = 777")
    factor = speedup(t_scan.ms, t_probe.ms)
    emit(
        f"\n== Substrate: point lookup via index vs full scan ({ROWS} rows) ==\n"
        f"index probe: {t_probe.ms / 200:.3f} ms/query, "
        f"full scan: {t_scan.ms / 200:.3f} ms/query, speedup {factor:.0f}x"
    )
    assert factor > 10
    benchmark(loaded_db.query, "SELECT * FROM emp WHERE id = 777")
