"""Trace one insert through the whole reactive pipeline (Figure 8, live).

Builds the full chain -- database, notification center, sync client with a
mirrored table, a materialized view, LinLog layout, display -- switches on
`repro.obs`, performs a single insert, and prints:

  * the six-stage propagation report (db_write / trigger / notify /
    mirror_refresh / delta_handler / layout) with the stitched span tree,
  * the Prometheus-format metrics dump.

Run:  python examples/trace_propagation.py
"""

import repro.obs as obs
from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT
from repro.ivm.registry import ViewRegistry
from repro.ivm.view import SelectProjectView
from repro.sync.client import SyncClient
from repro.sync.server import SyncServer
from repro.vis.attributes import VisualItem
from repro.vis.display import Display
from repro.vis.layout.graph import Graph
from repro.vis.layout.linlog import LinLogLayout


def main() -> None:
    db = Database("ediflow")
    db.create_table(
        "nodes",
        [Column("id", INTEGER, nullable=False), Column("label", TEXT)],
    )
    server = SyncServer(db, use_sockets=False)
    client = SyncClient(server)
    mirror = client.mirror("nodes")
    views = ViewRegistry(db)
    views.register(SelectProjectView("all_nodes", "nodes"))

    obs.enable()

    # The stimulus: one batch insert.  Everything downstream reacts.
    db.insert_many("nodes", [{"id": i, "label": f"n{i}"} for i in range(8)])
    client.refresh("nodes")

    # The visualization runs inside the refresh's trace, exactly as the
    # RefreshDriver's listener fan-out does.
    with obs.tracer().activate(client.last_refresh_context("nodes")):
        graph = Graph()
        for row in mirror.all_rows():
            graph.add_node(row["id"])
        result = LinLogLayout(graph).run(max_iterations=10)
        Display("wall").apply_rows(
            [
                VisualItem(obj_id=n, x=x, y=y).to_row(1, n)
                for n, (x, y) in result.positions.items()
            ]
        )

    print(obs.propagation_report().format())
    print()
    print(obs.metrics().prometheus_text())

    client.close()
    server.close()


if __name__ == "__main__":
    main()
