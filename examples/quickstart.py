"""Quickstart: the EdiFlow platform in ~60 lines.

Creates a database, deploys a tiny reactive process (aggregate + report),
and shows update propagation: new data arriving *after* the process ran
still reaches the finished aggregation activity through its delta handler.

Run:  python examples/quickstart.py
"""

from repro import EdiFlow
from repro.workflow import (
    CallProcedure,
    ProcessDefinition,
    Procedure,
    RelationDecl,
    RunQuery,
    UpdatePropagation,
    seq,
)


class SumByCity(Procedure):
    """Black-box aggregation with an incremental delta handler."""

    name = "sum_by_city"

    def run(self, env, inputs, read_write):
        totals = {}
        for row in inputs[0]:
            totals[row["city"]] = totals.get(row["city"], 0) + row["amount"]
        for city, total in sorted(totals.items()):
            # Writing through env keeps the rows visible to this process
            # instance despite snapshot isolation.
            env.execute(
                "INSERT INTO totals (city, total) VALUES (?, ?)", [city, total]
            )
        return []

    def on_delta_finished(self, env, delta):
        # Fold only the delta in -- no rescan of the sales table.
        for row in delta.inserted:
            updated = env.execute(
                "UPDATE totals SET total = total + ? WHERE city = ?",
                [row["amount"], row["city"]],
            ).rowcount
            if not updated:
                env.execute(
                    "INSERT INTO totals (city, total) VALUES (?, ?)",
                    [row["city"], row["amount"]],
                )
        return None


def main() -> None:
    platform = EdiFlow()
    platform.execute("CREATE TABLE sales (id INTEGER PRIMARY KEY, city TEXT, amount INTEGER)")
    platform.execute("CREATE TABLE totals (city TEXT, total INTEGER)")
    platform.execute(
        "INSERT INTO sales (id, city, amount) VALUES "
        "(1, 'paris', 10), (2, 'lyon', 5), (3, 'paris', 7)"
    )

    platform.procedures.register(SumByCity())
    platform.deploy(
        ProcessDefinition(
            "daily-report",
            seq(
                CallProcedure("aggregate", "sum_by_city", inputs=["sales"]),
                RunQuery("report", "SELECT * FROM totals ORDER BY city",
                         into_variable="report"),
            ),
            relations=[RelationDecl("sales"), RelationDecl("totals")],
            procedures=["sum_by_city"],
            # Keep the finished aggregation fresh while the process is open.
            propagations=[UpdatePropagation("sales", "aggregate", "ta-rp")],
        )
    )

    execution = platform.run("daily-report", close=False)
    print("report after run:     ", execution.variables["report"])

    # A late sale arrives -- the delta handler updates the totals table.
    platform.execute("INSERT INTO sales (id, city, amount) VALUES (4, 'lyon', 20)")
    print("totals after late sale:", platform.query("SELECT * FROM totals ORDER BY city"))

    platform.close_execution(execution)
    print("process status:       ",
          platform.query("SELECT status FROM ediflow_process_instance")[0]["status"])


if __name__ == "__main__":
    main()
