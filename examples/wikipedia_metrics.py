"""The Wikipedia application (paper Section III-b, Figure 2).

A synthetic revision stream plays the role of the live Wikipedia feed
("10 edits per second on average").  The analyzer maintains, incrementally:

  (i)   diffs between successive versions,
  (ii)  per-token contribution tables,
  (iii) distinct effective contributors per article,
  (iv)  per-user totals and the durability metric.

At the end it verifies the incremental metrics against a full
recomputation -- the recomputation the paper calls "out of reach" at
Wikipedia scale.

Run:  python examples/wikipedia_metrics.py
"""

import time

from repro import EdiFlow
from repro.apps import wikipedia


def main() -> None:
    platform = EdiFlow()
    analyzer = wikipedia.WikipediaAnalyzer(platform.database)
    stream = wikipedia.RevisionStream(n_articles=40, n_users=15, seed=2011)

    n_revisions = 600
    start = time.perf_counter()
    for revision in stream.take(n_revisions):
        analyzer.process(revision)
    analyzer.flush_user_metrics()
    elapsed = time.perf_counter() - start
    print(f"processed {n_revisions} revisions incrementally in {elapsed:.2f}s "
          f"({n_revisions / elapsed:.0f} rev/s)")

    articles = sorted(
        analyzer.article_metrics(), key=lambda r: r["versions"], reverse=True
    )
    print("\nhottest articles:")
    print(f"  {'article':>8} {'versions':>9} {'contributors':>13} {'length':>7} {'churn':>7}")
    for row in articles[:5]:
        print(f"  {row['article_id']:>8} {row['versions']:>9} "
              f"{row['contributors']:>13} {row['length']:>7} {row['churn']:>7}")

    users = sorted(
        (u for u in analyzer.user_metrics() if u["durability"] is not None),
        key=lambda r: r["durability"],
        reverse=True,
    )
    print("\nmost durable contributors (surviving/inserted tokens):")
    for row in users[:5]:
        print(f"  user {row['user_id']:>3}: durability {row['durability']:.2f} "
              f"({row['remaining']}/{row['inserted']} tokens, {row['edits']} edits)")

    # Verify against full recomputation.
    incremental = sorted(
        (r["article_id"], r["versions"], r["contributors"], r["length"])
        for r in analyzer.article_metrics()
    )
    start = time.perf_counter()
    analyzer.recompute_all()
    recompute_elapsed = time.perf_counter() - start
    recomputed = sorted(
        (r["article_id"], r["versions"], r["contributors"], r["length"])
        for r in analyzer.article_metrics()
    )
    assert incremental == recomputed, "incremental metrics diverged!"
    print(f"\nfull recomputation took {recompute_elapsed:.2f}s and matches "
          "the incremental metrics exactly")
    print(f"per-revision incremental cost ~{elapsed / n_revisions * 1000:.2f}ms vs "
          f"~{recompute_elapsed * 1000:.0f}ms for one recomputation")


if __name__ == "__main__":
    main()
