"""The INRIA activity-reports application (paper Section III-c).

Synthetic Raweb-like XML activity reports (one per team per year) are
ingested into the database with similarity-based entity resolution --
the same person appears as "Jean Martin", "J. Martin", "MARTIN, Jean"
across years and must collapse to one member row.  Statistics (reports
per research centre, publications per team, member ages) are recomputed
as each new year of reports arrives: the paper's "self-maintained
application which... would automatically and incrementally re-compute
statistics, as needed."

Run:  python examples/inria_reports.py
"""

from repro import EdiFlow
from repro.apps import reports


def main() -> None:
    platform = EdiFlow()
    reports.install_schema(platform.database)
    generator = reports.ReportGenerator(n_teams=8, seed=2005)
    ingestor = reports.ReportIngestor(platform.database)

    # Year by year, new XML files appear and are ingested.
    for year in range(2005, 2009):
        xml_files = [
            generator.to_xml(report)
            for report in generator.reports(year, year)
        ]
        for xml_text in xml_files:
            ingestor.ingest_xml(xml_text)
        stats = reports.compute_statistics(platform.database, as_of_year=year)
        total_reports = int(sum(stats["reports_by_center"].values()))
        members = len(platform.database.table(reports.T_MEMBER))
        print(f"{year}: +{len(xml_files)} reports ingested "
              f"(total {total_reports}), {members} distinct members, "
              f"{ingestor.matcher.merges} name variants merged so far")

    stats = reports.compute_statistics(platform.database, as_of_year=2008)
    print("\nreports by research centre:")
    for center, count in sorted(stats["reports_by_center"].items()):
        print(f"  {center:<14} {int(count)}")

    print("\npublications by team:")
    for team, pubs in sorted(
        stats["publications_by_team"].items(), key=lambda kv: -kv[1]
    )[:5]:
        print(f"  {team:<10} {int(pubs)}")

    print("\nage distribution (2008):")
    for bucket, count in stats["age_distribution"].items():
        print(f"  {bucket:>4} {'#' * int(count)}")

    # The resolution at work: show a merged identity.
    sample = ingestor.matcher.known_names()[:3]
    print("\nsample resolved identities:")
    for person_id, name in sample:
        print(f"  member {person_id}: canonical name {name!r}")


if __name__ == "__main__":
    main()
