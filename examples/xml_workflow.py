"""Declarative deployment: an XML process spec, run and audited.

Shows the XPDL-like XML syntax of paper Section VI-D (parsed into a
process definition, procedures loaded by classpath), plus the execution
monitor: every instance transition lands in queryable tables, so the
advancement of each execution can be inspected after the fact.

Run:  python examples/xml_workflow.py
"""

from repro import EdiFlow
from repro.workflow import ProcessMonitor, Procedure

PROCESS_XML = """
<process name="triage">
  <configuration driver="embedded" uri="memory://" user="oncall"/>
  <constant name="threshold" type="INTEGER" value="80"/>
  <variable name="operator" type="TEXT"/>
  <relation name="alerts" primaryKey="id">
    <column name="id" type="INTEGER"/>
    <column name="severity" type="INTEGER"/>
    <column name="message" type="TEXT"/>
  </relation>
  <function name="summarize"/>
  <body>
    <sequence>
      <activity name="ask" type="askUser" prompt="Who is triaging?" variable="operator"/>
      <activity name="purge" type="update"
                sql="DELETE FROM alerts WHERE severity &lt; 10"/>
      <if condition="SELECT COUNT(*) FROM alerts WHERE severity &gt;= 80">
        <activity name="page" type="runQuery"
                  sql="SELECT * FROM alerts WHERE severity &gt;= 80"
                  intoVariable="pages"/>
      </if>
      <activity name="digest" type="callFunction" procedure="summarize">
        <input table="alerts"/>
        <output table="alert_digest"/>
      </activity>
    </sequence>
  </body>
</process>
"""


class Summarize(Procedure):
    """Black-box procedure loaded via the XML classpath attribute."""

    name = "summarize"

    def run(self, env, inputs, read_write):
        buckets = {}
        for row in inputs[0]:
            band = "high" if row["severity"] >= 80 else "normal"
            buckets[band] = buckets.get(band, 0) + 1
        return [[{"band": band, "n": n} for band, n in sorted(buckets.items())]]


def main() -> None:
    platform = EdiFlow()
    platform.execute("CREATE TABLE alert_digest (band TEXT, n INTEGER)")
    # Procedures can also load from a <function classpath="pkg.mod:Class"/>
    # attribute; scripts outside a package register them directly.
    platform.procedures.register(Summarize())
    definition = platform.deploy_xml(PROCESS_XML)
    print(f"deployed {definition.name!r} with activities "
          f"{definition.activity_names()}")

    platform.execute(
        "INSERT INTO alerts (id, severity, message) VALUES "
        "(1, 95, 'db down'), (2, 40, 'slow query'), (3, 5, 'noise'), "
        "(4, 85, 'disk full')"
    )
    execution = platform.run(
        "triage", user="ada", responder=lambda prompt, var: "ada"
    )

    print(f"\noperator: {execution.variables['operator']}")
    print(f"paged on {len(execution.variables['pages'])} high-severity alerts")
    print("digest:", platform.query("SELECT * FROM alert_digest ORDER BY band"))

    monitor = ProcessMonitor(platform.database)
    print("\nexecution trace:")
    print(monitor.format_trace(execution.id))
    stats = monitor.activity_statistics()
    print("\nactivity statistics:")
    for name, info in sorted(stats.items()):
        print(f"  {name:<8} instances={info['instances']} "
              f"mean_duration={info['mean_duration']}")


if __name__ == "__main__":
    main()
