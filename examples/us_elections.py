"""The US-elections application (paper Section III-a, Figure 1).

Simulates election night: returns stream in, the two-activity EdiFlow
process keeps per-state aggregates fresh through delta handlers, and a
TreeMap (area = population, shade = leading-party share) is re-rendered
as data arrives.  The final frame is written to ``us_elections.svg``.

Run:  python examples/us_elections.py
"""

from repro import EdiFlow
from repro.apps import elections
from repro.vis import Display


def main() -> None:
    platform = EdiFlow()
    elections.install_schema(platform.database)
    platform.procedures.register(elections.AggregateVotes())
    treemap = elections.TreemapVotes()
    platform.procedures.register(treemap)
    platform.deploy(elections.build_process())

    feed = elections.ReturnsFeed(seed=2008, total_minutes=30)
    batches = list(feed.batches())

    # A first tranche of returns exists when the analyst opens the app.
    platform.database.insert_many(elections.T_VOTES, batches[0].rows)
    execution = platform.run("us-elections")
    print(f"process running; {len(batches)} batches of returns to come")

    display = Display("anchor-desk", width=900, height=500)
    reported_states = 0
    for i, batch in enumerate(batches[1:], start=2):
        platform.database.insert_many(elections.T_VOTES, batch.rows)
        # The 'ra' propagation already refreshed the treemap procedure;
        # render its current items.
        display.clear()
        display.apply_items(treemap.last_items)
        display.refresh()
        reported = sum(1 for it in treemap.last_items if it.color != "#cccccc")
        if reported != reported_states:
            reported_states = reported
            print(f"  minute {i:3d}: {reported:2d}/51 states reporting")
        if reported == len(elections.STATES):
            break

    summary = platform.query(
        f"SELECT state, dem, rep, margin FROM {elections.T_AGG} "
        "ORDER BY margin DESC LIMIT 5"
    )
    print("\nstrongest DEM margins:")
    for row in summary:
        print(f"  {row['state']}: {row['margin']:+.2%} "
              f"({row['dem']:,} vs {row['rep']:,})")

    svg = display.render_svg()
    with open("us_elections.svg", "w", encoding="utf-8") as out:
        out.write(svg)
    print(f"\nfinal frame written to us_elections.svg ({len(svg)} bytes, "
          f"{display.refreshes} refreshes)")

    platform.close_execution(execution)
    platform.shutdown()


if __name__ == "__main__":
    main()
