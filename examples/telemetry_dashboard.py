"""The self-hosted telemetry dashboard, live (observability eating its own food).

Runs a normal EdiFlow workload -- a database synchronized to a client
mirror over a real loopback socket -- while a TelemetrySink persists the
tracer's spans and the metric registry's snapshots into the ``sys_spans``
/ ``sys_span_events`` / ``sys_metrics`` system tables.  A
TelemetryDashboard then attaches to those tables through the *same*
sync/view machinery the workload uses, and renders three views:

  * a span waterfall (recent spans, one lane per span name),
  * the NOTIFY -> applied latency distribution (p50/p95/p99 scatter),
  * a per-table batch/coalesce savings treemap.

The dashboard is refreshed across two collect/flush cycles to show the
views updating live, then the per-span-name statistics (maintained
incrementally by an AggregateView over ``sys_spans``) are printed.

Run:  python examples/telemetry_dashboard.py
"""

import time

import repro.obs as obs
from repro.apps.telemetry import TelemetryDashboard
from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT
from repro.obs.store import TelemetrySink
from repro.sync.client import SyncClient
from repro.sync.server import SyncServer


def run_workload(db: Database, client: SyncClient, start: int, count: int) -> None:
    for i in range(start, start + count):
        db.insert("nodes", {"id": i, "label": f"node-{i}"})
    time.sleep(0.3)  # let NOTIFY frames arrive over the socket
    client.refresh("nodes")


def main() -> None:
    obs.enable()

    # The observed workload: a real-socket sync pipeline.
    db = Database("ediflow")
    db.create_table(
        "nodes",
        [Column("id", INTEGER, nullable=False), Column("label", TEXT)],
    )
    server = SyncServer(db, use_sockets=True, heartbeat_interval=None)
    client = SyncClient(server)
    client.mirror("nodes")

    # The telemetry side: sink + dashboard over the system tables.
    sink = TelemetrySink()
    dashboard = TelemetryDashboard(sink)

    for cycle in (1, 2):
        run_workload(db, client, start=cycle * 100, count=50)
        sink.collect_and_flush()
        stats = dashboard.refresh()
        print(
            f"cycle {cycle}: {stats['span_rows']} span rows, "
            f"{stats['metric_rows']} metric rows (snap {stats['snap']}) -> "
            f"waterfall={stats['waterfall_items']} "
            f"latency={stats['latency_items']} "
            f"savings={stats['savings_items']} items"
        )

    print()
    print("per-span statistics (incremental AggregateView over sys_spans):")
    print(dashboard.format_summary())

    print()
    for name, svg in dashboard.render_svg().items():
        print(f"rendered {name}: {len(svg)} bytes of SVG")

    print()
    print("sink counters:", sink.counters())

    client.close()
    server.close()
    dashboard.close()
    sink.close()


if __name__ == "__main__":
    main()
