"""The INRIA co-publications application (paper Sections III-c and VII).

Builds the synthetic co-authorship network, lays it out with LinLog
(streaming positions to the database every iteration, so displays can
refresh while the layout is still converging), fans the picture out to
several unequal displays (the paper's iPhone / laptop / WILD wall), and
then demonstrates the delta handler: new publications arrive and the
incremental relayout converges far faster than the initial one.

Run:  python examples/copublications_wall.py
"""

import time

from repro import EdiFlow
from repro.apps import copub
from repro.vis import LinLogLayout


def main() -> None:
    platform = EdiFlow()
    generator = copub.CopublicationGenerator(n_authors=600, n_teams=40, seed=42)
    publications = copub.load_into_database(platform.database, generator, 450)
    graph = copub.build_graph(publications)
    print(f"co-publication graph: {len(graph)} authors, "
          f"{graph.edge_count} co-authorship edges")

    # Shared visualization + three views of very different sizes.
    vis = platform.views.visualizations.create_visualization("copub-map")
    component = platform.views.visualizations.create_component(vis, "node-link")
    wall = platform.views.add_view("wild-wall", component, fraction=1.0,
                                   width=2560, height=1600)
    laptop = platform.views.add_view("laptop", component, fraction=0.3)
    phone = platform.views.add_view("iphone", component, fraction=0.1)

    # Initial layout, streaming positions so the views stay live.
    layout = LinLogLayout(graph, seed=7)
    stream_every = 20
    published = [0]

    def stream(iteration, positions, energy):
        if iteration % stream_every == 0:
            platform.views.publish_positions(component, positions)
            platform.views.refresh_all()
            published[0] += 1

    start = time.perf_counter()
    initial = layout.run(max_iterations=400, on_iteration=stream)
    initial_time = time.perf_counter() - start
    platform.views.publish_positions(component, initial.positions)
    platform.views.refresh_all()
    print(f"initial layout: {initial.iterations} iterations in {initial_time:.2f}s "
          f"(streamed {published[0]} intermediate frames)")
    print(f"view sizes: wall={len(wall.display)}, laptop={len(laptop.display)}, "
          f"phone={len(phone.display)}")

    # New publications arrive (the reactive part of Section VII-B).
    fresh = generator.take(10)
    before = set(graph.nodes())
    copub.build_graph(fresh, graph=graph)
    added = [n for n in graph.nodes() if n not in before]
    start = time.perf_counter()
    incremental = layout.update(added_nodes=added, max_iterations=400)
    incremental_time = time.perf_counter() - start
    platform.views.publish_positions(component, incremental.positions)
    platform.views.refresh_all()
    print(f"\n{len(fresh)} new publications ({len(added)} new authors)")
    print(f"incremental relayout: {incremental.iterations} iterations in "
          f"{incremental_time:.2f}s "
          f"({initial.iterations / max(incremental.iterations, 1):.1f}x fewer "
          "iterations than the initial layout)")

    svg = wall.display.render_svg()
    with open("copublications.svg", "w", encoding="utf-8") as out:
        out.write(svg)
    print(f"\nwall view written to copublications.svg ({len(svg)} bytes)")
    platform.shutdown()


if __name__ == "__main__":
    main()
