"""Per-view lineage indexes through recompute and incremental deltas."""

import pytest

from repro.db import Column, Database
from repro.db.algebra import AggSpec
from repro.db.expression import col
from repro.db.schema import TID
from repro.db.types import INTEGER, TEXT
from repro.errors import ViewError
from repro.ivm.registry import ViewRegistry
from repro.ivm.view import AggregateView, JoinView, SelectProjectView
from repro.lineage.views import ViewLineage


def make_db():
    db = Database("lin")
    db.create_table("t", [Column("k", INTEGER), Column("v", INTEGER), Column("tag", TEXT)])
    db.create_table("o", [Column("k", INTEGER), Column("w", INTEGER)])
    return db


def tids(db, table, pred=None):
    return {
        row[TID]
        for row in db.table(table).rows()
        if pred is None or pred(row)
    }


class TestViewLineageIndex:
    def test_counted_bidirectional(self):
        vl = ViewLineage()
        vl.add("g1", [("t", 1), ("t", 2)])
        vl.add("g1", [("t", 2)])  # second contribution of the same pair
        assert vl.backward("g1") == {("t", 1), ("t", 2)}
        assert vl.forward(("t", 2)) == {"g1"}
        vl.remove("g1", [("t", 2)])
        assert vl.backward("g1") == {("t", 1), ("t", 2)}  # still counted once
        vl.remove("g1", [("t", 2)])
        assert vl.backward("g1") == {("t", 1)}
        assert vl.forward(("t", 2)) == set()

    def test_remove_unknown_is_tolerated(self):
        vl = ViewLineage()
        vl.remove("nope", [("t", 9)])  # enabling mid-life: no blowup
        assert len(vl) == 0

    def test_forward_many_and_clear(self):
        vl = ViewLineage()
        vl.add("a", [("t", 1)])
        vl.add("b", [("t", 2)])
        assert vl.forward_many([("t", 1), ("t", 2)]) == {"a", "b"}
        vl.clear()
        assert vl.forward_many([("t", 1)]) == set()


class TestAggregateViewLineage:
    """Acceptance: backward lineage of a group is exactly its contributing
    base tids, after full recompute AND after incremental deltas."""

    def make_view(self, db):
        view = AggregateView(
            "stats",
            "t",
            ("tag",),
            [AggSpec("COUNT", None, "n"), AggSpec("SUM", col("v"), "s")],
        ).enable_lineage()
        registry = ViewRegistry(db)
        registry.register(view)
        return view, registry

    def test_backward_after_recompute(self):
        db = make_db()
        db.insert_many(
            "t", [{"k": i, "v": i, "tag": "a" if i % 2 else "b"} for i in range(10)]
        )
        view, _ = self.make_view(db)
        for tag in ("a", "b"):
            expected = {("t", t) for t in tids(db, "t", lambda r, tag=tag: r["tag"] == tag)}
            assert view.backward_lineage((tag,)) == expected

    def test_backward_tracks_incremental_deltas(self):
        db = make_db()
        view, _ = self.make_view(db)  # registered empty, populated by deltas
        db.insert_many("t", [{"k": i, "v": i, "tag": "a"} for i in range(5)])
        db.insert("t", {"k": 99, "v": 1, "tag": "b"})
        a_tids = {("t", t) for t in tids(db, "t", lambda r: r["tag"] == "a")}
        assert view.backward_lineage(("a",)) == a_tids
        # Delete two rows; the group's lineage shrinks to match.
        db.delete("t", col("k") < 2)
        a_tids = {("t", t) for t in tids(db, "t", lambda r: r["tag"] == "a")}
        assert view.backward_lineage(("a",)) == a_tids
        assert len(a_tids) == 3
        # Drain the group entirely: no stale lineage survives.
        db.delete("t", col("tag") == "a")
        assert view.backward_lineage(("a",)) == set()
        assert view.forward_lineage("t", 1) == set()

    def test_delta_state_equals_recompute_state(self):
        db = make_db()
        view, registry = self.make_view(db)
        db.insert_many(
            "t", [{"k": i, "v": i % 4, "tag": "ab"[i % 2]} for i in range(20)]
        )
        db.delete("t", col("v") == 2)
        incremental = {
            key: view.backward_lineage((key,)) for key in ("a", "b")
        }
        registry.recompute("stats")
        recomputed = {
            key: view.backward_lineage((key,)) for key in ("a", "b")
        }
        assert incremental == recomputed

    def test_disabled_lineage_raises(self):
        db = make_db()
        view = AggregateView("plain", "t", ("tag",), [AggSpec("COUNT", None, "n")])
        with pytest.raises(ViewError, match="no lineage index"):
            view.backward_lineage(("a",))


class TestSelectProjectViewLineage:
    def test_backward_through_recompute_and_deltas(self):
        db = make_db()
        view = SelectProjectView("pos", "t", where=col("v") > 0).enable_lineage()
        registry = ViewRegistry(db)
        db.insert_many("t", [{"k": 1, "v": 5, "tag": "a"}, {"k": 2, "v": -1, "tag": "b"}])
        registry.register(view)
        (out,) = view.rows()
        from repro.ivm.delta import row_key

        assert view.backward_lineage(row_key(out)) == {
            ("t", t) for t in tids(db, "t", lambda r: r["v"] > 0)
        }
        # Incremental: a new qualifying row gets its own lineage entry.
        inserted = db.insert("t", {"k": 3, "v": 7, "tag": "a"})
        key = row_key({"k": 3, "v": 7, "tag": "a"})
        assert view.backward_lineage(key) == {("t", inserted[TID])}
        db.delete("t", col("k") == 3)
        assert view.backward_lineage(key) == set()


class TestJoinViewLineage:
    def make_join(self, db):
        view = JoinView("j", "t", "o", "k", "k").enable_lineage()
        registry = ViewRegistry(db)
        registry.register(view)
        return view, registry

    def test_backward_pairs_both_sides(self):
        db = make_db()
        lrow = db.insert("t", {"k": 1, "v": 10, "tag": "a"})
        rrow = db.insert("o", {"k": 1, "w": 20})
        view, _ = self.make_join(db)
        (out,) = view.rows()
        from repro.ivm.delta import row_key

        assert view.backward_lineage(row_key(out)) == {
            ("t", lrow[TID]),
            ("o", rrow[TID]),
        }
        assert view.forward_lineage("o", rrow[TID]) == {row_key(out)}

    def test_delete_after_recompute(self):
        """Regression: a populated recompute followed by a base delete used
        to raise -- the side maps stored full internal rows but deletes
        arrived with hidden fields stripped."""
        db = make_db()
        db.insert_many("t", [{"k": 1, "v": 10, "tag": "a"}, {"k": 1, "v": 11, "tag": "b"}])
        db.insert("o", {"k": 1, "w": 20})
        view, registry = self.make_join(db)
        registry.recompute("j")  # side maps rebuilt from a full scan
        assert len(view) == 2
        db.delete("t", col("v") == 10)  # must not raise
        assert len(view) == 1
        (out,) = view.rows()
        assert out["v"] == 11

    def test_duplicate_images_disambiguated_by_tid(self):
        db = make_db()
        r1 = db.insert("t", {"k": 1, "v": 10, "tag": "a"})
        db.insert("t", {"k": 1, "v": 10, "tag": "a"})  # identical image
        db.insert("o", {"k": 1, "w": 20})
        view, _ = self.make_join(db)
        assert len(view) == 2
        db.delete_by_tids("t", [r1[TID]])
        assert len(view) == 1
