"""LineageStore persistence guards + LineageManager sampling + the
Database-level lineage surface (enable_lineage, EXPLAIN LINEAGE,
query_lineage, backward/forward_lineage)."""

import pytest

from repro.db import Column, Database
from repro.db.algebra import AggSpec
from repro.db.expression import col
from repro.db.types import INTEGER, TEXT
from repro.errors import DatabaseError, LineageError
from repro.ivm.registry import ViewRegistry
from repro.ivm.view import AggregateView
from repro.lineage.store import (
    SYS_LINEAGE_EDGES,
    SYS_LINEAGE_QUERIES,
    LineageStore,
)


def make_db(n=10):
    db = Database("lin")
    db.create_table("t", [Column("k", INTEGER), Column("v", INTEGER), Column("tag", TEXT)])
    if n:
        db.insert_many(
            "t", [{"k": i % 3, "v": i, "tag": "ab"[i % 2]} for i in range(n)]
        )
    return db


class TestLineageStore:
    def test_record_and_read_back(self):
        db = make_db()
        store = LineageStore(db)
        qid = store.record(
            "SELECT ...", "vector", [(("t", 1), ("t", 2)), (("t", 3),)], ["t"]
        )
        assert qid == 1
        edges = store.edges_for(qid)
        assert [(e["out_row"], e["src_tid"]) for e in edges] == [(0, 1), (0, 2), (1, 3)]
        assert store.backward(qid, 0) == {("t", 1), ("t", 2)}
        (qrow,) = db.query(f"SELECT * FROM {SYS_LINEAGE_QUERIES}")
        assert qrow["rows"] == 2 and qrow["edges"] == 3 and not qrow["truncated"]

    def test_recursion_guard_skips_sys_tables(self):
        store = LineageStore(make_db())
        assert store.record("SELECT ...", "row", [(("sys_spans", 1),)], ["sys_spans"]) is None
        assert store.guard_skipped == 1
        assert store.queries_stored == 0

    def test_retention_prunes_old_queries(self):
        db = make_db()
        store = LineageStore(db, retention=3)
        for i in range(7):
            store.record(f"q{i}", "row", [(("t", i),)], ["t"])
        kept = {r["query_id"] for r in db.query(f"SELECT query_id FROM {SYS_LINEAGE_QUERIES}")}
        assert kept == {5, 6, 7}
        edge_qids = {r["query_id"] for r in db.query(f"SELECT query_id FROM {SYS_LINEAGE_EDGES}")}
        assert edge_qids == {5, 6, 7}
        assert store.pruned > 0

    def test_edge_cap_truncates_and_flags(self):
        db = make_db()
        store = LineageStore(db, max_edges_per_query=3)
        lins = [(("t", 1), ("t", 2)), (("t", 3), ("t", 4)), (("t", 5),)]
        qid = store.record("big", "row", lins, ["t"])
        assert len(store.edges_for(qid)) == 2  # second row would overflow
        (qrow,) = db.query(f"SELECT * FROM {SYS_LINEAGE_QUERIES}")
        assert qrow["truncated"] == 1
        assert store.truncated == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LineageStore(make_db(0), retention=0)
        with pytest.raises(ValueError):
            LineageStore(make_db(0), max_edges_per_query=0)


class TestSampling:
    def test_every_nth_select_is_captured(self):
        db = make_db()
        mgr = db.enable_lineage(sample=3)
        for _ in range(9):
            db.query("SELECT k, SUM(v) AS s FROM t GROUP BY k")
        assert mgr.captures == 3  # statements 1, 4, 7
        assert mgr.sampled_out == 6
        assert mgr.store.queries_stored == 3

    def test_sampled_rows_identical_to_unsampled(self):
        db = make_db()
        sql = "SELECT tag, COUNT(*) AS n FROM t GROUP BY tag ORDER BY tag"
        plain = db.query(sql)
        db.enable_lineage(sample=1)
        assert db.query(sql) == plain

    def test_sys_reads_never_captured(self):
        db = make_db()
        mgr = db.enable_lineage(sample=1)
        db.query("SELECT k FROM t")
        assert mgr.captures == 1
        db.query(f"SELECT sql FROM {SYS_LINEAGE_QUERIES}")
        assert mgr.captures == 1  # the sys_ read itself was not captured
        assert mgr.store.guard_skipped == 0  # skipped upstream, pre-store

    def test_disable_lineage(self):
        db = make_db()
        mgr = db.enable_lineage(sample=1)
        db.query("SELECT k FROM t")
        db.disable_lineage()
        assert db.lineage is None
        db.query("SELECT k FROM t")
        assert mgr.captures == 1


class TestDatabaseSurface:
    def test_query_lineage(self):
        db = make_db(4)
        db.enable_lineage(store=False)
        rows, lins = db.query_lineage("SELECT tag, COUNT(*) AS n FROM t GROUP BY tag ORDER BY tag")
        assert len(rows) == len(lins) == 2
        all_tids = {tid for lin in lins for (_, tid) in lin}
        assert len(all_tids) == 4

    def test_query_lineage_requires_enable(self):
        db = make_db(2)
        with pytest.raises(DatabaseError, match="enable_lineage"):
            db.query_lineage("SELECT k FROM t")

    def test_explain_lineage_sql(self):
        db = make_db(4)  # works without enable_lineage: explicit capture
        edges = db.query("EXPLAIN LINEAGE SELECT tag, COUNT(*) AS n FROM t GROUP BY tag")
        assert {e["src_table"] for e in edges} == {"t"}
        assert len(edges) == 4  # every base row feeds some group
        assert {e["out_row"] for e in edges} == {0, 1}

    def test_explain_lineage_parses_alongside_analyze(self):
        db = make_db(2)
        plan_rows = db.query("EXPLAIN SELECT k FROM t")
        assert "plan" in plan_rows[0]
        analyzed = db.query("EXPLAIN ANALYZE SELECT k FROM t")
        assert "(rows=2)" in analyzed[0]["plan"]

    def test_backward_and_forward_lineage_via_views(self):
        db = make_db(6)
        mgr = db.enable_lineage(store=False)
        view = AggregateView(
            "by_tag", "t", ("tag",), [AggSpec("COUNT", None, "n")]
        ).enable_lineage()
        ViewRegistry(db).register(view)  # auto-registers with the manager
        assert "by_tag" in mgr.views()
        back = db.backward_lineage("by_tag", ("a",))
        assert back and all(tbl == "t" for tbl, _ in back)
        some_tid = next(tid for _, tid in back)
        fwd = db.forward_lineage("t", [some_tid])
        assert fwd == {"by_tag": {("a",)}}

    def test_manager_rejects_lineageless_view(self):
        db = make_db(0)
        mgr = db.enable_lineage(store=False)
        plain = AggregateView("v", "t", ("tag",), [AggSpec("COUNT", None, "n")])
        with pytest.raises(LineageError, match="no lineage index"):
            mgr.register_view(plain)

    def test_unknown_view_lookup(self):
        db = make_db(0)
        mgr = db.enable_lineage(store=False)
        with pytest.raises(LineageError, match="no lineage-enabled view"):
            mgr.view("ghost")
