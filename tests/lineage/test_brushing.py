"""Cross-view brushing-and-linking as a forward-lineage query."""

import pytest

from repro.db import Column, Database
from repro.db.algebra import AggSpec
from repro.db.types import INTEGER, TEXT
from repro.errors import LineageError
from repro.ivm.registry import ViewRegistry
from repro.ivm.view import AggregateView
from repro.lineage.brushing import CrossViewLinker
from repro.vis.attributes import VisualAttributesStore, VisualItem

SCATTER, BARS = 1, 2


def make_world():
    db = Database("brush")
    db.create_table(
        "points", [Column("id", INTEGER), Column("x", INTEGER), Column("tag", TEXT)]
    )
    db.insert_many(
        "points",
        [{"id": i, "x": i * 10, "tag": "abc"[i % 3]} for i in range(9)],
    )
    db.enable_lineage(store=False)
    view = AggregateView(
        "by_tag", "points", ("tag",), [AggSpec("COUNT", None, "n")]
    ).enable_lineage()
    ViewRegistry(db).register(view)
    store = VisualAttributesStore(db)
    # A scatter of the raw points and a bar chart of the per-tag counts.
    store.write(SCATTER, [VisualItem(obj_id=i, x=float(i)) for i in range(9)])
    store.write(BARS, [VisualItem(obj_id=t, x=0.0) for t in ("a", "b", "c")])
    linker = CrossViewLinker(db, store)
    linker.bind_table(SCATTER, "points", key="id")
    linker.bind_view(BARS, "by_tag")
    return db, store, linker


class TestCrossViewLinker:
    def test_brush_propagates_through_forward_lineage(self):
        db, store, linker = make_world()
        # Points 0 and 3 are both tag 'a'; point 1 is tag 'b'.
        selected = linker.brush(SCATTER, [0, 3, 1])
        assert selected[SCATTER] == [0, 1, 3]
        assert selected[BARS] == ["a", "b"]
        assert set(store.selected_ids(SCATTER)) == {0, 1, 3}
        assert set(store.selected_ids(BARS)) == {"a", "b"}

    def test_brush_single_group(self):
        db, store, linker = make_world()
        selected = linker.brush(SCATTER, [2])  # tag 'c'
        assert selected[BARS] == ["c"]
        assert store.selected_ids(BARS) == ["c"]

    def test_clear_deselects_everything(self):
        db, store, linker = make_world()
        linker.brush(SCATTER, [0, 1, 2])
        cleared = linker.clear()
        assert sum(cleared.values()) > 0
        assert store.selected_ids(SCATTER) == []
        assert store.selected_ids(BARS) == []

    def test_brush_tracks_base_mutations(self):
        """The link is live: after base-table deltas, the same brush routes
        through the view's *current* lineage."""
        db, store, linker = make_world()
        db.insert("points", {"id": 100, "x": 5, "tag": "c"})
        store.write(SCATTER, [VisualItem(obj_id=100, x=5.0)])
        selected = linker.brush(SCATTER, [100])
        assert selected[BARS] == ["c"]

    def test_requires_lineage_enabled(self):
        db = Database("plain")
        db.create_table("points", [Column("id", INTEGER)])
        store = VisualAttributesStore(db)
        with pytest.raises(LineageError, match="enable_lineage"):
            CrossViewLinker(db, store)

    def test_unbound_source_component(self):
        db, store, linker = make_world()
        with pytest.raises(LineageError, match="not table-bound"):
            linker.brush(99, [1])

    def test_bind_view_validates_registration(self):
        db, store, linker = make_world()
        with pytest.raises(LineageError, match="no lineage-enabled view"):
            linker.bind_view(7, "ghost")
