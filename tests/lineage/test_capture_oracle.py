"""Lineage capture equivalence oracle, property-based.

Backward lineage captured inside the vectorized operators must match the
row engine's per-row capture interpreter **byte-for-byte** -- same
``(table, tid)`` pairs behind every output row, in the canonical order
:func:`~repro.lineage.capture.canon_lineage` defines.  Reuses the PR-7
row/vector harness (schemas, data strategies, query pool).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lineage.capture import capture_plan

from tests.db.test_vector_oracle import (
    QUERIES,
    canon,
    fresh_db,
    other_rows,
    rows_strategy,
)


def capture(db, engine, sql):
    db.set_engine(engine)
    return capture_plan(db.plan(sql), db)


def canon_pairs(rows, lins):
    """Order-insensitive canonical form of (row, lineage) pairs."""
    return sorted(
        repr((sorted(r.items(), key=lambda kv: kv[0]), lin))
        for r, lin in zip(rows, lins)
    )


@given(rows_strategy, other_rows, st.integers(0, len(QUERIES) - 1))
@settings(max_examples=120, deadline=None)
def test_lineage_byte_identical_across_engines(rows, orows, qi):
    sql = QUERIES[qi]
    db = fresh_db(rows, orows)
    rrows, rlins = capture(db, "row", sql)
    vrows, vlins = capture(db, "vector", sql)
    if "ORDER BY" in sql:
        assert vrows == rrows
        assert vlins == rlins
    else:
        assert canon_pairs(vrows, vlins) == canon_pairs(rrows, rlins)


@given(rows_strategy, other_rows, st.integers(0, len(QUERIES) - 1))
@settings(max_examples=60, deadline=None)
def test_capture_rows_match_normal_execution(rows, orows, qi):
    """Capture must be a pure observer: the rows it returns are exactly
    what executing the query without capture produces."""
    sql = QUERIES[qi]
    db = fresh_db(rows, orows)
    for engine in ("row", "vector"):
        db.set_engine(engine)
        expected = db.query(sql)
        got, lins = capture_plan(db.plan(sql), db)
        assert len(got) == len(lins)
        if "ORDER BY" in sql:
            assert got == expected
        else:
            assert canon(got) == canon(expected)


@given(rows_strategy, other_rows, st.integers(0, len(QUERIES) - 1))
@settings(max_examples=60, deadline=None)
def test_lineage_pairs_reference_live_tuples(rows, orows, qi):
    """Every captured (table, tid) pair points at an existing base row,
    and lineage is canonical: sorted, deduplicated."""
    sql = QUERIES[qi]
    db = fresh_db(rows, orows)
    _, lins = capture(db, "vector", sql)
    for lin in lins:
        assert lin == tuple(sorted(set(lin)))
        for table, tid in lin:
            assert table in ("t", "o")
            assert db.table(table).get(tid) is not None
