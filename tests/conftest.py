"""Shared fixtures."""

import pytest

from repro.db import Database
from repro.workflow import PropagationManager, WorkflowEngine


@pytest.fixture
def db():
    """A fresh empty database."""
    return Database("test")


@pytest.fixture
def engine(db):
    """A workflow engine (installs the core schema)."""
    return WorkflowEngine(db)


@pytest.fixture
def propagation(engine):
    """A propagation manager attached to the engine."""
    return PropagationManager(engine)
