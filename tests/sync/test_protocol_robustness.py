"""Hostile-peer robustness: garbage on the wire must fail loudly and
locally, never corrupt state or hang."""

import socket
import threading
import time

import pytest

from repro.db import Column, Database
from repro.db.types import INTEGER
from repro.errors import ProtocolError, SyncError
from repro.sync import NotificationCenter, SyncClient, SyncServer, protocol


class TestMalformedTraffic:
    def test_garbage_line_mid_stream(self):
        a = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        a.bind(("127.0.0.1", 0))
        a.listen(1)
        port = a.getsockname()[1]
        sender = socket.create_connection(("127.0.0.1", port))
        receiver, _ = a.accept()
        a.close()
        stream = protocol.MessageStream(receiver)
        sender.sendall(protocol.encode(protocol.notify("t", 1, "insert")))
        sender.sendall(b"\xff\xfe garbage \xff\n")
        first = stream.receive(timeout=2)
        assert first["seq_no"] == 1
        with pytest.raises(ProtocolError):
            stream.receive(timeout=2)
        sender.close()
        stream.close()

    def test_overlong_unterminated_line(self):
        a = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        a.bind(("127.0.0.1", 0))
        a.listen(1)
        port = a.getsockname()[1]
        sender = socket.create_connection(("127.0.0.1", port))
        receiver, _ = a.accept()
        a.close()
        stream = protocol.MessageStream(receiver)

        def flood():
            try:
                chunk = b"x" * 4096
                for _ in range(64):
                    sender.sendall(chunk)
            except OSError:
                pass

        thread = threading.Thread(target=flood, daemon=True)
        thread.start()
        with pytest.raises(ProtocolError, match="over-long"):
            stream.receive(timeout=5)
        sender.close()
        stream.close()
        thread.join(timeout=2)

    def test_server_refuses_client_that_never_handshakes(self):
        db = Database()
        db.create_table("t", [Column("v", INTEGER)])
        server = SyncServer(db, NotificationCenter(db), use_sockets=True)
        # A listener that accepts but never sends HELLO.
        mute = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        mute.bind(("127.0.0.1", 0))
        mute.listen(1)
        port = mute.getsockname()[1]
        accepted = []

        def accept_and_stall():
            try:
                conn, _ = mute.accept()
                accepted.append(conn)
                time.sleep(10)
            except OSError:
                pass

        thread = threading.Thread(target=accept_and_stall, daemon=True)
        thread.start()
        with pytest.raises(SyncError):
            server.register_client("t", "127.0.0.1", port)
        # Failed registration leaves no ConnectedUser row behind.
        from repro.core import datamodel

        assert db.query(f"SELECT * FROM {datamodel.T_CONNECTED_USER}") == []
        for conn in accepted:
            conn.close()
        mute.close()
        server.close()

    def test_connect_back_to_dead_port_fails_cleanly(self):
        db = Database()
        db.create_table("t", [Column("v", INTEGER)])
        server = SyncServer(db, NotificationCenter(db), use_sockets=True)
        # Find a port with nothing listening.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(SyncError, match="cannot connect"):
            server.register_client("t", "127.0.0.1", dead_port)
        server.close()

    def test_client_death_detected_on_notify(self):
        db = Database()
        db.create_table("pts", [Column("id", INTEGER, nullable=False)],
                        primary_key="id")
        # heartbeat_interval=None isolates the send-failure detection path.
        server = SyncServer(
            db, NotificationCenter(db), use_sockets=True, heartbeat_interval=None
        )
        client = SyncClient(server, auto_reconnect=False)
        client.mirror("pts")
        assert server.client_count() == 1
        assert server.connected_count() == 1
        # Kill the client socket abruptly; subsequent notifies must detach
        # the endpoint -- but the registration (and its last_seq_no purge
        # protection) survives so the client can reconnect and catch up.
        client._stream.close()
        client._listener.close()
        deadline = time.monotonic() + 5
        detached = False
        i = 0
        while time.monotonic() < deadline:
            db.insert("pts", {"id": i})
            i += 1
            if server.connected_count() == 0:
                detached = True
                break
            time.sleep(0.01)
        assert detached, "dead client never detached"
        assert server.client_count() == 1
        assert server.detached_count() == 1
        from repro.core import datamodel

        assert len(db.query(f"SELECT * FROM {datamodel.T_CONNECTED_USER}")) == 1
        server.close()
