"""Cross-socket trace-context propagation (the ``ctx`` frame field).

The in-process link registry cannot cross a real socket: producer and
consumer share no memory in a true client/server deployment.  The
``trace`` capability moves the span context onto the NOTIFY/NOTIFYB
frames themselves, so the Figure-8 propagation chain stitches across
the wire -- and legacy peers that never advertise the capability keep
syncing exactly as before.
"""

import time

import pytest

import repro.obs as obs
from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT
from repro.ivm.registry import ViewRegistry
from repro.ivm.view import SelectProjectView
from repro.obs import STAGES, propagation_report
from repro.sync import protocol
from repro.sync.client import SyncClient
from repro.sync.server import SyncServer
from repro.vis.attributes import VisualItem
from repro.vis.display import Display
from repro.vis.layout.graph import Graph
from repro.vis.layout.linlog import LinLogLayout


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def enabled_obs():
    obs.enable()
    return obs


# ---------------------------------------------------------------------------
# Frame encoding


class TestFrameEncoding:
    def test_trace_context_round_trips(self):
        ctx = protocol.trace_context(7, 9, 123456)
        assert ctx == {"t": 7, "s": 9, "n": 123456}
        frame = protocol.notify("nodes", 3, "insert", ctx=ctx)
        decoded = protocol.decode(protocol.encode(frame))
        assert protocol.frame_trace_context(decoded) == (7, 9, 123456)

    def test_notify_batch_carries_ctx(self):
        frame = protocol.notify_batch(
            "nodes", [("insert", 1), ("insert", 2)], ctx=protocol.trace_context(1, 3, 5)
        )
        decoded = protocol.decode(protocol.encode(frame))
        assert protocol.frame_trace_context(decoded) == (1, 3, 5)
        assert protocol.batch_events(decoded) == [("insert", 1), ("insert", 2)]

    def test_absent_ctx_decodes_to_none(self):
        assert protocol.frame_trace_context(protocol.notify("nodes", 3, "insert")) is None

    @pytest.mark.parametrize(
        "ctx",
        [
            "garbage",
            42,
            [],
            {},
            {"t": 1, "s": 2},  # missing n
            {"t": 1, "s": None, "n": 3},
            {"t": "1", "s": 2, "n": 3},
            {"t": 1.5, "s": 2, "n": 3},
            {"t": True, "s": 2, "n": 3},  # bools are not span ids
        ],
    )
    def test_malformed_ctx_degrades_to_none(self, ctx):
        message = protocol.notify("nodes", 3, "insert")
        message["ctx"] = ctx
        assert protocol.frame_trace_context(message) is None

    def test_trace_capability_negotiated(self):
        hello = protocol.hello([protocol.CAP_BATCH, protocol.CAP_TRACE])
        assert protocol.peer_caps(hello) == frozenset(
            {protocol.CAP_BATCH, protocol.CAP_TRACE}
        )
        # Unknown capabilities are ignored, not fatal.
        assert protocol.peer_caps(protocol.hello(["trace", "future-cap"])) == frozenset(
            {protocol.CAP_TRACE}
        )


# ---------------------------------------------------------------------------
# Real-socket propagation


def wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def socket_pipeline():
    """DB -> real loopback socket -> mirror, with a view attached."""
    db = Database("ediflow")
    db.create_table(
        "nodes",
        [Column("id", INTEGER, nullable=False), Column("label", TEXT)],
    )
    server = SyncServer(db, use_sockets=True, heartbeat_interval=None)
    client = SyncClient(server)
    mirror = client.mirror("nodes")
    registry = ViewRegistry(db)
    registry.register(SelectProjectView("all_nodes", "nodes"))
    yield db, client, mirror
    client.close()
    server.close()


def drive_socket_update(db, client, mirror, base=0, rows=5):
    before = client.notify_received
    db.insert_many(
        "nodes", [{"id": base + i, "label": f"n{base + i}"} for i in range(rows)]
    )
    assert wait_for(lambda: client.notify_received > before), "NOTIFY never arrived"
    client.refresh("nodes")
    with obs.tracer().activate(client.last_refresh_context("nodes")):
        graph = Graph()
        for row in mirror.all_rows():
            graph.add_node(row["id"])
        result = LinLogLayout(graph).run(max_iterations=5)
        display = Display()
        display.apply_rows(
            [
                VisualItem(obj_id=n, x=x, y=y).to_row(1, n)
                for n, (x, y) in result.positions.items()
            ]
        )


def clear_link_registry():
    """Drop the in-process link registry, leaving frames as the only
    bridge -- exactly the situation of a true remote client."""
    tracer = obs.tracer()
    with tracer._lock:
        tracer._links.clear()


class TestSocketPropagation:
    def test_refresh_parents_via_frame_context(self, socket_pipeline, enabled_obs):
        db, client, mirror = socket_pipeline
        before = client.notify_received
        db.insert_many("nodes", [{"id": i, "label": f"n{i}"} for i in range(5)])
        assert wait_for(lambda: client.notify_received > before)
        clear_link_registry()  # frames must carry the context on their own
        client.refresh("nodes")

        (refresh,) = obs.tracer().spans_named("sync.mirror_refresh")
        assert refresh.tags["ctx_source"] == "frame"
        assert refresh.parent_id is not None
        # The adopted parent is the server-side notify span of this trace.
        notifies = obs.tracer().spans_named("sync.notify")
        assert refresh.trace_id in {s.trace_id for s in notifies}

    def test_six_stages_stitch_across_the_socket(self, socket_pipeline, enabled_obs):
        db, client, mirror = socket_pipeline
        drive_socket_update(db, client, mirror)
        report = propagation_report()
        assert report.missing_stages() == []
        assert set(report.stages) == set(STAGES)
        assert len({span.trace_id for span in report.spans}) == 1

    def test_notify_to_applied_latency_recorded(self, socket_pipeline, enabled_obs):
        db, client, mirror = socket_pipeline
        drive_socket_update(db, client, mirror)
        histograms = obs.metrics().snapshot()["histograms"]
        series = histograms["sync.notify_to_applied_ms{table=nodes}"]
        assert series["count"] >= 1
        assert series["p50"] is not None

    def test_frames_carry_ctx_only_while_tracing(self, socket_pipeline):
        db, client, mirror = socket_pipeline
        # Tracing off: trace-capable peers still get plain frames.
        before = client.notify_received
        db.insert("nodes", {"id": 1, "label": "a"})
        assert wait_for(lambda: client.notify_received > before)
        assert client._frame_contexts == {}
        client.refresh("nodes")
        assert len(mirror.all_rows()) == 1


class TestLegacyPeer:
    @pytest.fixture
    def legacy_handshake(self, monkeypatch):
        """A client that never advertises the trace capability."""
        original = protocol.client_handshake

        def handshake(stream, timeout=5.0, caps=None):
            return original(stream, timeout=timeout, caps=[protocol.CAP_BATCH])

        monkeypatch.setattr(
            "repro.sync.client.protocol.client_handshake", handshake
        )

    def test_legacy_peer_gets_no_ctx_and_still_syncs(
        self, legacy_handshake, socket_pipeline, enabled_obs
    ):
        db, client, mirror = socket_pipeline
        assert protocol.CAP_TRACE not in client.server_caps
        before = client.notify_received
        db.insert_many("nodes", [{"id": i, "label": f"n{i}"} for i in range(4)])
        assert wait_for(lambda: client.notify_received > before)
        # No frame ever carried a context...
        assert client._frame_contexts == {}
        # ...and the data path is unaffected.
        client.refresh("nodes")
        assert len(mirror.all_rows()) == 4
        (refresh,) = obs.tracer().spans_named("sync.mirror_refresh")
        # In-process link registry still bridges (same-process fallback).
        assert refresh.tags.get("ctx_source") in ("link", None)
