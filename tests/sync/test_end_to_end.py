"""Full synchronization protocol, in-process and over real sockets."""

import pytest

from repro.core import datamodel
from repro.errors import SyncError
from repro.sync import NotificationCenter, SyncClient, SyncServer


@pytest.fixture
def points_db(db):
    db.execute("CREATE TABLE pts (id INTEGER PRIMARY KEY, x FLOAT, y FLOAT)")
    db.execute("INSERT INTO pts (id, x, y) VALUES (1, 0.0, 0.0), (2, 1.0, 1.0)")
    return db


@pytest.fixture(params=["inprocess", "sockets"])
def stack(request, points_db):
    center = NotificationCenter(points_db)
    server = SyncServer(points_db, center, use_sockets=request.param == "sockets")
    client = SyncClient(server)
    yield points_db, server, client
    client.close()
    server.close()


def settle(client, table):
    """In socket mode, wait for the NOTIFY before pulling."""
    if client.server.use_sockets:
        assert client.wait_dirty(table, timeout=5.0)


class TestMirrorLifecycle:
    def test_initial_fill(self, stack):
        db, server, client = stack
        rm = client.mirror("pts")
        assert len(rm) == 2
        assert db.query(
            f"SELECT COUNT(*) AS n FROM {datamodel.T_CONNECTED_USER}"
        )[0]["n"] == 1

    def test_duplicate_mirror_rejected(self, stack):
        _db, _server, client = stack
        client.mirror("pts")
        with pytest.raises(SyncError):
            client.mirror("pts")

    def test_close_removes_connected_user(self, stack):
        db, server, client = stack
        client.mirror("pts")
        client.close()
        assert db.query(f"SELECT * FROM {datamodel.T_CONNECTED_USER}") == []


class TestChangeFlow:
    def test_insert_flows_to_mirror(self, stack):
        db, _server, client = stack
        rm = client.mirror("pts")
        db.execute("INSERT INTO pts (id, x, y) VALUES (3, 2.0, 2.0)")
        settle(client, "pts")
        stats = client.refresh("pts")
        assert stats["upserts"] == 1
        assert rm.get(rm.tids()[-1])["id"] == 3

    def test_update_flows_to_mirror(self, stack):
        db, _server, client = stack
        rm = client.mirror("pts")
        db.execute("UPDATE pts SET x = 9.0 WHERE id = 1")
        settle(client, "pts")
        client.refresh("pts")
        values = {r["id"]: r["x"] for r in rm.all_rows()}
        assert values[1] == 9.0

    def test_delete_flows_to_mirror(self, stack):
        db, _server, client = stack
        rm = client.mirror("pts")
        db.execute("DELETE FROM pts WHERE id = 2")
        settle(client, "pts")
        stats = client.refresh("pts")
        assert stats["deletes"] == 1
        assert sorted(r["id"] for r in rm.all_rows()) == [1]

    def test_batched_changes_in_one_refresh(self, stack):
        db, _server, client = stack
        rm = client.mirror("pts")
        db.execute("INSERT INTO pts (id, x, y) VALUES (3, 0.0, 0.0)")
        db.execute("UPDATE pts SET x = 5.0 WHERE id = 1")
        db.execute("DELETE FROM pts WHERE id = 2")
        settle(client, "pts")
        stats = client.refresh("pts")
        assert stats["upserts"] == 2
        assert stats["deletes"] == 1
        assert len(rm) == 2

    def test_refresh_without_changes_is_noop(self, stack):
        _db, _server, client = stack
        client.mirror("pts")
        stats = client.refresh("pts")
        assert stats == {"upserts": 0, "deletes": 0}

    def test_consumption_tracked_for_purge(self, stack):
        db, server, client = stack
        client.mirror("pts")
        db.execute("INSERT INTO pts (id, x, y) VALUES (3, 0.0, 0.0)")
        settle(client, "pts")
        client.refresh("pts")
        assert server.purge_notifications() >= 1
        leftovers = db.query(f"SELECT * FROM {datamodel.T_NOTIFICATION}")
        assert leftovers == []


class TestWriteBack:
    def test_write_back_updates_database(self, stack):
        db, _server, client = stack
        rm = client.mirror("pts")
        tid = rm.tids()[0]
        client.write_back("pts", tid, "x", 123.0)
        assert db.query("SELECT x FROM pts WHERE id = 1")[0]["x"] == 123.0

    def test_echo_processed_smartly(self, stack):
        db, _server, client = stack
        rm = client.mirror("pts")
        tid = rm.tids()[0]
        client.write_back("pts", tid, "x", 123.0)
        settle(client, "pts")
        client.refresh("pts")
        assert rm.skipped_self_updates == 1
        assert rm.applied_updates == 0


class TestMultipleClients:
    def test_two_clients_same_table(self, stack):
        db, server, client = stack
        client2 = SyncClient(server)
        try:
            rm1 = client.mirror("pts")
            rm2 = client2.mirror("pts")
            db.execute("INSERT INTO pts (id, x, y) VALUES (3, 0.0, 0.0)")
            settle(client, "pts")
            settle(client2, "pts")
            client.refresh("pts")
            client2.refresh("pts")
            assert len(rm1) == len(rm2) == 3
        finally:
            client2.close()

    def test_one_client_two_tables(self, stack):
        db, _server, client = stack
        db.execute("CREATE TABLE labels (id INTEGER PRIMARY KEY, txt TEXT)")
        rm_points = client.mirror("pts")
        rm_labels = client.mirror("labels")
        db.execute("INSERT INTO labels (id, txt) VALUES (1, 'hi')")
        settle(client, "labels")
        client.refresh("labels")
        assert len(rm_labels) == 1
        assert len(rm_points) == 2

    def test_partial_mirror_client(self, stack):
        db, server, client = stack
        client2 = SyncClient(server)
        try:
            full = client.mirror("pts")
            half = client2.mirror("pts", fraction=0.5)
            assert len(half) <= len(full)
        finally:
            client2.close()


class TestServerBookkeeping:
    def test_client_count(self, stack):
        _db, server, client = stack
        assert server.client_count() == 0
        client.mirror("pts")
        assert server.client_count() == 1

    def test_register_after_close_rejected(self, stack):
        _db, server, _client = stack
        server.close()
        with pytest.raises(SyncError):
            server.register_client("pts", "127.0.0.1", 1)
