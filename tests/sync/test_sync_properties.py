"""Property-based synchronization tests.

Invariant: after any sequence of inserts/updates/deletes on R_D followed
by one refresh, the full mirror R_M equals R_D exactly -- refreshes may
happen at arbitrary points in the sequence without affecting the end
state (the protocol is oblivious to refresh timing).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, col
from repro.db.schema import TID
from repro.db.types import INTEGER
from repro.sync import NotificationCenter, SyncClient, SyncServer

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 30), st.integers(0, 5)),
        st.tuples(st.just("update"), st.integers(0, 30), st.integers(0, 5)),
        st.tuples(st.just("delete"), st.integers(0, 30), st.integers(0, 5)),
        st.tuples(st.just("refresh"), st.just(0), st.just(0)),
    ),
    max_size=40,
)


def build_stack():
    db = Database()
    db.create_table(
        "t",
        [Column("k", INTEGER, nullable=False), Column("v", INTEGER)],
        primary_key="k",
    )
    server = SyncServer(db, NotificationCenter(db), use_sockets=False)
    client = SyncClient(server)
    mirror = client.mirror("t")
    return db, server, client, mirror


def apply(db, op, key, value):
    kind = op
    if kind == "insert":
        if db.table("t").by_key(key) is None:
            db.insert("t", {"k": key, "v": value})
    elif kind == "update":
        db.update("t", {"v": value}, col("k") == key)
    elif kind == "delete":
        db.delete("t", col("k") == key)


@given(operations)
@settings(max_examples=60, deadline=None)
def test_mirror_equals_base_after_final_refresh(ops):
    db, server, client, mirror = build_stack()
    for kind, key, value in ops:
        if kind == "refresh":
            client.refresh("t")
        else:
            apply(db, kind, key, value)
    client.refresh("t")
    base = {row["k"]: row["v"] for row in db.table("t").rows()}
    mirrored = {row["k"]: row["v"] for row in mirror.all_rows()}
    assert mirrored == base
    client.close()
    server.close()


@given(operations)
@settings(max_examples=40, deadline=None)
def test_mirror_tids_match_base(ops):
    db, server, client, mirror = build_stack()
    for kind, key, value in ops:
        if kind == "refresh":
            client.refresh("t")
        else:
            apply(db, kind, key, value)
    client.refresh("t")
    base_tids = {row[TID] for row in db.table("t").rows()}
    assert set(mirror.tids()) == base_tids
    client.close()
    server.close()


@given(operations)
@settings(max_examples=40, deadline=None)
def test_purge_never_breaks_future_refreshes(ops):
    db, server, client, mirror = build_stack()
    for i, (kind, key, value) in enumerate(ops):
        if kind == "refresh":
            client.refresh("t")
            server.purge_notifications()
        else:
            apply(db, kind, key, value)
    client.refresh("t")
    base = {row["k"]: row["v"] for row in db.table("t").rows()}
    mirrored = {row["k"]: row["v"] for row in mirror.all_rows()}
    assert mirrored == base
    client.close()
    server.close()
