"""The rate-limited automatic refresh driver."""

import time

import pytest

from repro.db import Column, Database
from repro.db.types import INTEGER
from repro.errors import SyncError
from repro.sync import NotificationCenter, RefreshDriver, SyncClient, SyncServer


@pytest.fixture(params=["inprocess", "sockets"])
def stack(request, db):
    db.create_table(
        "pts", [Column("id", INTEGER, nullable=False), Column("x", INTEGER)],
        primary_key="id",
    )
    server = SyncServer(
        db, NotificationCenter(db), use_sockets=request.param == "sockets"
    )
    client = SyncClient(server)
    mirror = client.mirror("pts")
    yield db, server, client, mirror
    client.close()
    server.close()


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestDriver:
    def test_auto_refresh_applies_changes(self, stack):
        db, _server, client, mirror = stack
        with RefreshDriver(client, max_rate=100.0) as driver:
            db.insert("pts", {"id": 1, "x": 10})
            assert wait_until(lambda: len(mirror) == 1)
            assert driver.refreshes >= 1

    def test_burst_coalesces_under_rate_limit(self, stack):
        db, _server, client, mirror = stack
        with RefreshDriver(client, max_rate=5.0) as driver:
            # 30 statements in a burst far above the 5 Hz budget.
            for i in range(30):
                db.insert("pts", {"id": i + 1, "x": i})
            assert wait_until(lambda: len(mirror) == 30)
            # Many notifications, few refreshes.
            assert driver.refreshes < 10
            assert client.notify_received >= 30 or not client.server.use_sockets

    def test_idle_tables_cost_nothing(self, stack):
        _db, _server, client, _mirror = stack
        with RefreshDriver(client, max_rate=100.0) as driver:
            time.sleep(0.05)
            assert driver.refreshes == 0

    def test_flush_bypasses_rate_limit(self, stack):
        db, _server, client, mirror = stack
        driver = RefreshDriver(client, max_rate=0.1)  # one per 10s
        db.insert("pts", {"id": 1, "x": 1})
        if client.server.use_sockets:
            assert client.wait_dirty("pts")
        stats = driver.flush("pts")
        assert stats["upserts"] == 1
        assert len(mirror) == 1

    def test_start_stop_idempotent(self, stack):
        _db, _server, client, _mirror = stack
        driver = RefreshDriver(client)
        driver.start()
        driver.start()  # no second thread
        assert driver.running()
        driver.stop()
        assert not driver.running()
        driver.stop()  # harmless

    def test_listener_callbacks(self, stack):
        db, _server, client, mirror = stack
        events = []
        with RefreshDriver(client, max_rate=100.0) as driver:
            driver.on_refresh(lambda table, stats: events.append((table, stats)))
            db.insert("pts", {"id": 1, "x": 1})
            assert wait_until(lambda: events)
        table, stats = events[0]
        assert table == "pts"
        assert stats["upserts"] >= 1

    def test_invalid_rate(self, stack):
        _db, _server, client, _mirror = stack
        with pytest.raises(SyncError):
            RefreshDriver(client, max_rate=0)

    def test_driver_survives_client_close(self, stack):
        db, _server, client, _mirror = stack
        driver = RefreshDriver(client, max_rate=100.0)
        driver.start()
        db.insert("pts", {"id": 1, "x": 1})
        wait_until(lambda: driver.refreshes >= 1)
        client.close()
        db.insert("pts", {"id": 2, "x": 2})
        time.sleep(0.05)
        driver.stop()  # must not hang or raise
