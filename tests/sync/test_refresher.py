"""The rate-limited automatic refresh driver."""

import threading
import time

import pytest

from repro.db import Column
from repro.db.types import INTEGER
from repro.errors import SyncError
from repro.sync import NotificationCenter, RefreshDriver, SyncClient, SyncServer


@pytest.fixture(params=["inprocess", "sockets"])
def stack(request, db):
    db.create_table(
        "pts", [Column("id", INTEGER, nullable=False), Column("x", INTEGER)],
        primary_key="id",
    )
    server = SyncServer(
        db, NotificationCenter(db), use_sockets=request.param == "sockets"
    )
    client = SyncClient(server)
    mirror = client.mirror("pts")
    yield db, server, client, mirror
    client.close()
    server.close()


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestDriver:
    def test_auto_refresh_applies_changes(self, stack):
        db, _server, client, mirror = stack
        with RefreshDriver(client, max_rate=100.0) as driver:
            db.insert("pts", {"id": 1, "x": 10})
            assert wait_until(lambda: len(mirror) == 1)
            assert driver.refreshes >= 1

    def test_burst_coalesces_under_rate_limit(self, stack):
        db, _server, client, mirror = stack
        with RefreshDriver(client, max_rate=5.0) as driver:
            # 30 statements in a burst far above the 5 Hz budget.
            for i in range(30):
                db.insert("pts", {"id": i + 1, "x": i})
            assert wait_until(lambda: len(mirror) == 30)
            # Many notifications, few refreshes.
            assert driver.refreshes < 10
            assert client.notify_received >= 30 or not client.server.use_sockets

    def test_idle_tables_cost_nothing(self, stack):
        _db, _server, client, _mirror = stack
        with RefreshDriver(client, max_rate=100.0) as driver:
            time.sleep(0.05)
            assert driver.refreshes == 0

    def test_flush_bypasses_rate_limit(self, stack):
        db, _server, client, mirror = stack
        driver = RefreshDriver(client, max_rate=0.1)  # one per 10s
        db.insert("pts", {"id": 1, "x": 1})
        if client.server.use_sockets:
            assert client.wait_dirty("pts")
        stats = driver.flush("pts")
        assert stats["upserts"] == 1
        assert len(mirror) == 1

    def test_start_stop_idempotent(self, stack):
        _db, _server, client, _mirror = stack
        driver = RefreshDriver(client)
        driver.start()
        driver.start()  # no second thread
        assert driver.running()
        driver.stop()
        assert not driver.running()
        driver.stop()  # harmless

    def test_listener_callbacks(self, stack):
        db, _server, client, mirror = stack
        events = []
        with RefreshDriver(client, max_rate=100.0) as driver:
            driver.on_refresh(lambda table, stats: events.append((table, stats)))
            db.insert("pts", {"id": 1, "x": 1})
            assert wait_until(lambda: events)
        table, stats = events[0]
        assert table == "pts"
        assert stats["upserts"] >= 1

    def test_invalid_rate(self, stack):
        _db, _server, client, _mirror = stack
        with pytest.raises(SyncError):
            RefreshDriver(client, max_rate=0)

    def test_driver_survives_client_close(self, stack):
        db, _server, client, _mirror = stack
        driver = RefreshDriver(client, max_rate=100.0)
        driver.start()
        db.insert("pts", {"id": 1, "x": 1})
        wait_until(lambda: driver.refreshes >= 1)
        client.close()
        db.insert("pts", {"id": 2, "x": 2})
        time.sleep(0.05)
        driver.stop()  # must not hang or raise


class TestConcurrencyRegressions:
    """Races between the driver loop, explicit flushes, and purging."""

    def test_flush_vs_loop_never_double_applies(self, stack):
        """driver.flush and the _loop thread racing on one table must not
        both consume the same changes_since window (refreshes of a table
        are serialized in the client)."""
        db, _server, client, mirror = stack
        stop = threading.Event()
        errors = []

        def flusher():
            while not stop.is_set():
                try:
                    client.refresh("pts")
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        thread = threading.Thread(target=flusher, daemon=True)
        with RefreshDriver(client, max_rate=1000.0, poll_interval=0.0005):
            thread.start()
            for i in range(200):
                db.insert("pts", {"id": i + 1, "x": i})
            assert wait_until(lambda: len(mirror) == 200)
            stop.set()
            thread.join(timeout=5.0)
        assert not errors
        client.refresh("pts")
        # An insert-only workload pulled twice would re-apply existing
        # rows as updates; serialized refreshes never do.
        assert mirror.applied_updates == 0
        assert mirror.applied_inserts == 200

    def test_refresh_vs_purge_race(self, stack):
        """A concurrent purge must never shift a changes_since scan: the
        snapshot is taken under the database lock (regression for the
        RefreshDriver.flush / NotificationCenter.purge race)."""
        db, server, client, mirror = stack
        stop = threading.Event()
        errors = []

        def purger():
            while not stop.is_set():
                try:
                    server.purge_notifications()
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        thread = threading.Thread(target=purger, daemon=True)
        thread.start()
        try:
            for i in range(300):
                db.insert("pts", {"id": i + 1, "x": i})
                if i % 7 == 0:
                    client.refresh("pts")
        finally:
            stop.set()
            thread.join(timeout=5.0)
        assert not errors
        client.refresh("pts")
        rows = {r["id"]: r["x"] for r in mirror.all_rows()}
        assert rows == {i + 1: i for i in range(300)}
