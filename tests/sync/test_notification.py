"""Notification table, tombstones, listeners, purge (Section VI-C)."""

import pytest

from repro.core import datamodel
from repro.db import col
from repro.errors import SyncError
from repro.sync import NotificationCenter, T_CHANGED_ROWS


@pytest.fixture
def setup(db):
    db.execute("CREATE TABLE pts (id INTEGER PRIMARY KEY, x FLOAT)")
    center = NotificationCenter(db)
    center.watch("pts")
    return db, center


class TestNotificationRows:
    def test_insert_produces_compact_notification(self, setup):
        db, center = setup
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.5), (2, 1.5)")
        rows = db.query(f"SELECT * FROM {datamodel.T_NOTIFICATION}")
        assert len(rows) == 1  # statement-level: one per statement
        row = rows[0]
        assert row["table_name"] == "pts"
        assert row["op"] == "insert"
        assert row["seq_no"] == 1
        assert set(rows[0]) == {"seq_no", "ts", "table_name", "op"}  # compact

    def test_seq_nos_increase(self, setup):
        db, center = setup
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0)")
        db.execute("UPDATE pts SET x = 1.0")
        db.execute("DELETE FROM pts")
        seqs = [r["seq_no"] for r in db.query(
            f"SELECT seq_no FROM {datamodel.T_NOTIFICATION} ORDER BY seq_no"
        )]
        assert seqs == [1, 2, 3]
        ops = [r["op"] for r in db.query(
            f"SELECT op FROM {datamodel.T_NOTIFICATION} ORDER BY seq_no"
        )]
        assert ops == ["insert", "update", "delete"]

    def test_tombstones_record_tids(self, setup):
        db, center = setup
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0), (2, 0.0)")
        changed = db.query(f"SELECT * FROM {T_CHANGED_ROWS}")
        assert len(changed) == 2
        assert all(c["seq_no"] == 1 for c in changed)

    def test_unwatched_table_silent(self, setup):
        db, center = setup
        db.execute("CREATE TABLE other (a INTEGER)")
        db.execute("INSERT INTO other (a) VALUES (1)")
        assert db.query(f"SELECT * FROM {datamodel.T_NOTIFICATION}") == []

    def test_unwatch(self, setup):
        db, center = setup
        center.unwatch("pts")
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0)")
        assert db.query(f"SELECT * FROM {datamodel.T_NOTIFICATION}") == []

    def test_watch_idempotent(self, setup):
        db, center = setup
        center.watch("pts")
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0)")
        assert len(db.query(f"SELECT * FROM {datamodel.T_NOTIFICATION}")) == 1

    def test_cannot_watch_machinery_tables(self, setup):
        db, center = setup
        with pytest.raises(SyncError):
            center.watch(datamodel.T_NOTIFICATION)
        with pytest.raises(SyncError):
            center.watch(T_CHANGED_ROWS)

    def test_seq_resumes_after_existing_rows(self, db):
        db.execute("CREATE TABLE pts (id INTEGER)")
        datamodel.install_core_schema(db)
        db.insert(
            datamodel.T_NOTIFICATION,
            {"seq_no": 10, "ts": 1, "table_name": "pts", "op": "insert"},
        )
        center = NotificationCenter(db)  # seeds its counter past 10
        center.watch("pts")
        db.execute("INSERT INTO pts (id) VALUES (1)")
        seqs = [
            r["seq_no"]
            for r in db.query(f"SELECT seq_no FROM {datamodel.T_NOTIFICATION}")
        ]
        assert max(seqs) == 11


class TestListeners:
    def test_listener_callbacks(self, setup):
        db, center = setup
        events = []
        center.add_listener(lambda table, op, seq: events.append((table, op, seq)))
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0)")
        db.execute("DELETE FROM pts")
        assert events == [("pts", "insert", 1), ("pts", "delete", 2)]

    def test_remove_listener(self, setup):
        db, center = setup
        events = []
        listener = lambda *a: events.append(a)  # noqa: E731
        center.add_listener(listener)
        center.remove_listener(listener)
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0)")
        assert events == []


class TestChangesSince:
    def test_replay_order(self, setup):
        db, center = setup
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0)")
        db.execute("UPDATE pts SET x = 2.0 WHERE id = 1")
        newest, changes = center.changes_since("pts", 0)
        assert newest == 2
        assert [op for _tid, op in changes] == ["insert", "update"]

    def test_since_filters_consumed(self, setup):
        db, center = setup
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0)")
        newest, _ = center.changes_since("pts", 0)
        db.execute("INSERT INTO pts (id, x) VALUES (2, 0.0)")
        newest2, changes = center.changes_since("pts", newest)
        assert len(changes) == 1
        assert newest2 == newest + 1

    def test_empty(self, setup):
        db, center = setup
        newest, changes = center.changes_since("pts", 0)
        assert newest == 0
        assert changes == []


class TestPurge:
    def test_purge_respects_slowest_client(self, setup):
        db, center = setup
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0)")
        db.execute("INSERT INTO pts (id, x) VALUES (2, 0.0)")
        # Two connected clients at different consumption points.
        db.insert(
            datamodel.T_CONNECTED_USER,
            {"id": 1, "host": "h", "port": 1, "table_name": "pts", "last_seq_no": 2},
        )
        db.insert(
            datamodel.T_CONNECTED_USER,
            {"id": 2, "host": "h", "port": 2, "table_name": "pts", "last_seq_no": 1},
        )
        removed = center.purge()
        assert removed == 1  # only seq 1: the slowest client consumed it
        db.update(datamodel.T_CONNECTED_USER, {"last_seq_no": 3}, col("id") == 2)
        removed = center.purge()
        assert removed == 1  # seq 2 now consumed by everyone
        assert db.query(f"SELECT * FROM {datamodel.T_NOTIFICATION}") == []

    def test_purge_without_clients_drops_all(self, setup):
        db, center = setup
        db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0)")
        assert center.purge() == 1
        assert db.query(f"SELECT * FROM {T_CHANGED_ROWS}") == []
