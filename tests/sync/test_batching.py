"""Propagation policies, delta coalescing, and batched NOTIFY frames."""

import socket
import threading
import time

import pytest

from repro.db import Column
from repro.db.schema import TID
from repro.db.table import ChangeSet
from repro.db.types import INTEGER, TEXT
from repro.errors import ProtocolError, SyncError
from repro.sync import (
    DeltaCoalescer,
    IMMEDIATE,
    Immediate,
    MANUAL,
    Manual,
    NotificationCenter,
    SyncClient,
    SyncServer,
    Threshold,
)
from repro.sync import protocol


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def make_change(table="t", inserted=(), updated=(), deleted=()):
    change = ChangeSet(table)
    change.inserted.extend(inserted)
    change.updated.extend(updated)
    change.deleted.extend(deleted)
    return change


def row(tid, **cols):
    image = {TID: tid}
    image.update(cols)
    return image


# ----------------------------------------------------------------------
class TestPolicies:
    def test_immediate_always_flushes(self):
        assert Immediate().should_flush(1, 0.0)
        assert not IMMEDIATE.buffers

    def test_threshold_flushes_on_count_or_age(self):
        policy = Threshold(max_changes=3, max_delay_ms=50.0)
        assert policy.buffers
        assert not policy.should_flush(2, 10.0)
        assert policy.should_flush(3, 0.0)
        assert policy.should_flush(1, 50.0)

    def test_threshold_without_time_bound(self):
        policy = Threshold(max_changes=10, max_delay_ms=None)
        assert not policy.should_flush(9, 1e9)
        assert policy.should_flush(10, 0.0)

    def test_threshold_validation(self):
        with pytest.raises(SyncError):
            Threshold(max_changes=0)
        with pytest.raises(SyncError):
            Threshold(max_delay_ms=-1.0)

    def test_manual_never_auto_flushes(self):
        assert not Manual().should_flush(10**9, 1e9)
        assert MANUAL.buffers


class TestDeltaCoalescer:
    def test_insert_update_collapses_to_insert(self):
        c = DeltaCoalescer("t")
        c.add(make_change(inserted=[row(1, x=1)]))
        c.add(make_change(updated=[(row(1, x=1), row(1, x=2))]))
        net = c.net_changeset()
        assert [r["x"] for r in net.inserted] == [2]
        assert not net.updated and not net.deleted
        assert c.raw_ops == 2 and c.net_ops() == 1 and c.coalesced_away() == 1

    def test_insert_delete_is_a_noop(self):
        c = DeltaCoalescer("t")
        c.add(make_change(inserted=[row(1, x=1)]))
        c.add(make_change(deleted=[row(1, x=1)]))
        assert c.is_empty()
        assert c.coalesced_away() == 2

    def test_update_update_keeps_first_before_last_after(self):
        c = DeltaCoalescer("t")
        c.add(make_change(updated=[(row(1, x=1), row(1, x=2))]))
        c.add(make_change(updated=[(row(1, x=2), row(1, x=3))]))
        ((before, after),) = c.net_changeset().updated
        assert before["x"] == 1 and after["x"] == 3

    def test_update_delete_keeps_original_before_image(self):
        c = DeltaCoalescer("t")
        c.add(make_change(updated=[(row(1, x=1), row(1, x=2))]))
        c.add(make_change(deleted=[row(1, x=2)]))
        (tombstone,) = c.net_changeset().deleted
        assert tombstone["x"] == 1

    def test_delete_insert_becomes_update(self):
        c = DeltaCoalescer("t")
        c.add(make_change(deleted=[row(1, x=1)]))
        c.add(make_change(inserted=[row(1, x=9)]))
        ((before, after),) = c.net_changeset().updated
        assert before["x"] == 1 and after["x"] == 9

    def test_distinct_tids_do_not_interact(self):
        c = DeltaCoalescer("t")
        c.add(make_change(inserted=[row(1, x=1), row(2, x=2)]))
        c.add(make_change(deleted=[row(2, x=2)]))
        net = c.net_changeset()
        assert [r[TID] for r in net.inserted] == [1]
        assert not net.deleted  # insert+delete annihilated tid 2

    def test_table_mismatch_rejected(self):
        c = DeltaCoalescer("t")
        with pytest.raises(SyncError):
            c.add(make_change(table="other", inserted=[row(1)]))

    def test_burst_insert_then_delete_flushes_to_nothing(self):
        c = DeltaCoalescer("t")
        c.add(make_change(inserted=[row(i) for i in range(1000)]))
        c.add(make_change(deleted=[row(i) for i in range(1000)]))
        assert c.is_empty() and c.coalesced_away() == 2000


# ----------------------------------------------------------------------
class TestProtocolFrames:
    def test_notify_batch_round_trip(self):
        frame = protocol.notify_batch(
            "t", [("insert", 3), ("update", 4), ("delete", 7)]
        )
        decoded = protocol.decode(protocol.encode(frame))
        assert decoded["type"] == protocol.NOTIFY_BATCH
        assert decoded["lo"] == 3 and decoded["hi"] == 7
        assert protocol.batch_events(decoded) == [
            ("insert", 3),
            ("update", 4),
            ("delete", 7),
        ]

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.notify_batch("t", [])

    def test_malformed_events_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.batch_events({"type": protocol.NOTIFY_BATCH, "events": []})
        with pytest.raises(ProtocolError):
            protocol.batch_events(
                {"type": protocol.NOTIFY_BATCH, "events": [["insert"]]}
            )

    def test_caps_negotiation(self):
        message = protocol.hello(caps=[protocol.CAP_BATCH, "future-unknown"])
        assert protocol.peer_caps(message) == frozenset({protocol.CAP_BATCH})
        # Pre-capability peers (no caps key) and garbage degrade to empty.
        assert protocol.peer_caps(protocol.hello()) == frozenset()
        assert protocol.peer_caps({"type": "HELLO", "caps": 17}) == frozenset()


# ----------------------------------------------------------------------
@pytest.fixture
def stack(db):
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", INTEGER)],
        primary_key="id",
    )
    server = SyncServer(db, NotificationCenter(db), use_sockets=True)
    client = SyncClient(server)
    mirror = client.mirror("pts")
    yield db, server, client, mirror
    client.close()
    server.close()
    server.center.close()


class TestCenterPolicies:
    def test_threshold_buffers_then_flushes_net_delta(self, db):
        db.create_table("t", [Column("id", INTEGER), Column("v", TEXT)])
        center = NotificationCenter(db)
        center.watch("t")
        batches = []
        center.add_batch_listener(lambda table, events: batches.append(events))
        center.set_policy("t", Threshold(max_changes=100, max_delay_ms=None))
        for i in range(10):
            db.insert("t", {"id": i, "v": str(i)})
        assert center.pending_ops("t") == 10
        assert batches == []
        shipped = center.flush("t")
        assert shipped == 10
        # 10 coalesced inserts become ONE seq-no (one op kind), one call.
        assert len(batches) == 1 and len(batches[0]) == 1
        assert center.pending_ops("t") == 0
        center.close()

    def test_insert_delete_burst_flushes_to_zero(self, db):
        db.create_table("t", [Column("id", INTEGER)])
        center = NotificationCenter(db)
        center.watch("t")
        center.set_policy("t", MANUAL)
        rows = [db.insert("t", {"id": i}) for i in range(50)]
        for r in rows:
            db.delete_by_tids("t", [r[TID]])
        assert center.flush("t") == 0  # everything coalesced away
        assert center.coalesced_ops == 100
        center.close()

    def test_policy_switch_flushes_pending(self, db):
        db.create_table("t", [Column("id", INTEGER)])
        center = NotificationCenter(db)
        center.watch("t")
        center.set_policy("t", MANUAL)
        db.insert("t", {"id": 1})
        assert center.pending_ops("t") == 1
        center.set_policy("t", IMMEDIATE)
        assert center.pending_ops("t") == 0
        newest, changes = center.changes_since("t", 0)
        assert len(changes) == 1
        center.close()

    def test_timer_flushes_aged_batches(self, db):
        db.create_table("t", [Column("id", INTEGER)])
        center = NotificationCenter(db)
        center.watch("t")
        center.set_policy("t", Threshold(max_changes=10**6, max_delay_ms=20.0))
        db.insert("t", {"id": 1})
        assert wait_until(lambda: center.pending_ops("t") == 0, timeout=2.0)
        _newest, changes = center.changes_since("t", 0)
        assert len(changes) == 1
        center.close()

    def test_close_flushes_everything(self, db):
        db.create_table("t", [Column("id", INTEGER)])
        center = NotificationCenter(db)
        center.watch("t")
        center.set_policy("t", MANUAL)
        db.insert("t", {"id": 1})
        center.close()
        _newest, changes = center.changes_since("t", 0)
        assert len(changes) == 1


# ----------------------------------------------------------------------
class TestBatchedNotifyEndToEnd:
    def test_batch_capable_client_gets_one_frame(self, stack):
        db, server, client, mirror = stack
        assert protocol.CAP_BATCH in client.server_caps
        # One row exists before batching starts, so updating it inside
        # the batch window nets an *update* (not a coalesced insert) and
        # the flush carries two op kinds -> two seqs -> one NOTIFYB.
        seed = db.insert("pts", {"id": 100, "x": -1})
        server.center.set_policy("pts", Threshold(max_changes=64, max_delay_ms=None))
        for i in range(10):
            db.insert("pts", {"id": i + 1, "x": i})
        db.update_by_tid("pts", seed[TID], {"x": 99})
        server.center.flush("pts")
        assert wait_until(lambda: client.batch_notifies_received >= 1)
        assert client.wait_dirty("pts")
        client.refresh("pts")
        rows = {r["id"]: r["x"] for r in mirror.all_rows()}
        assert rows[100] == 99
        assert {i + 1 for i in range(10)} <= set(rows)

    def test_single_event_flush_uses_plain_notify(self, stack):
        db, server, client, mirror = stack
        server.center.set_policy("pts", MANUAL)
        db.insert("pts", {"id": 1, "x": 1})
        server.center.flush("pts")
        assert wait_until(lambda: client.notify_received >= 1)
        assert client.batch_notifies_received == 0  # one event, one NOTIFY

    def test_legacy_peer_receives_per_event_notifies(self, db):
        """A peer that never advertised the batch cap gets plain NOTIFYs."""
        db.create_table("pts", [Column("id", INTEGER)], primary_key="id")
        center = NotificationCenter(db)
        server = SyncServer(db, center, use_sockets=True, heartbeat_interval=None)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        received = []

        def legacy_client():
            sock, _ = listener.accept()
            stream = protocol.MessageStream(sock)
            stream.send(protocol.hello())  # NO caps: pre-batch peer
            reply = stream.receive(5.0)
            assert reply["type"] == protocol.REPLY
            try:
                while True:
                    message = stream.receive(5.0)
                    if message["type"] == protocol.DISCONNECT:
                        return
                    received.append(message)
            except (ProtocolError, OSError):
                return

        thread = threading.Thread(target=legacy_client, daemon=True)
        thread.start()
        try:
            server.register_client("pts", "127.0.0.1", port)
            seed = db.insert("pts", {"id": 100})
            center.set_policy("pts", MANUAL)
            for i in range(5):
                db.insert("pts", {"id": i})
            db.update_by_tid("pts", seed[TID], {"id": 101})
            center.flush("pts")
            # Two seq-nos (insert batch + delete batch) -> two NOTIFYs,
            # zero NOTIFYB frames.
            assert wait_until(
                lambda: len([m for m in received if m["type"] == protocol.NOTIFY])
                >= 2
            )
            assert all(m["type"] != protocol.NOTIFY_BATCH for m in received)
        finally:
            server.close()
            center.close()
            listener.close()
            thread.join(timeout=2.0)

    def test_reconnect_mid_batch_replays_without_double_apply(self, stack):
        """A client detached across a flush must converge exactly once."""
        db, server, client, mirror = stack
        server.center.set_policy("pts", Threshold(max_changes=10**6, max_delay_ms=None))
        for i in range(20):
            db.insert("pts", {"id": i + 1, "x": i})
        # Kill the transport while the batch is still buffered server-side.
        endpoint = server._endpoints[(client.host, client.port)]
        endpoint.stream.close()
        server.center.flush("pts")  # delivery fails -> missed_count grows
        assert wait_until(lambda: client.status == "connected" and client.reconnects >= 1)
        assert wait_until(lambda: client.wait_dirty("pts", timeout=0.1) or True)
        client.refresh("pts")
        assert wait_until(lambda: len(mirror) == 20)
        # Replay must not double-apply: every row arrived as one insert.
        assert mirror.applied_inserts == 20
        assert mirror.applied_updates == 0
        rows = {r["id"]: r["x"] for r in mirror.all_rows()}
        assert rows == {i + 1: i for i in range(20)}

    def test_evict_detached_with_buffered_batches(self, stack):
        db, server, client, mirror = stack
        server.center.set_policy("pts", MANUAL)
        endpoint = server._endpoints[(client.host, client.port)]
        # Stop the client from auto-reconnecting so the link stays down.
        client.auto_reconnect = False
        endpoint.stream.close()
        for i in range(5):
            db.insert("pts", {"id": i + 1, "x": i})
        server.center.flush("pts")
        assert wait_until(lambda: server.detached_count() >= 1)
        assert server.evict_detached(max_age=0.0) == 1
        assert server.client_count() == 0
        # With the dead registration gone, the purge horizon advances and
        # the batched notifications can be reclaimed.
        assert server.purge_notifications() > 0
