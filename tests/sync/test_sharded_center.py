"""The sharded notification plane.

Tables map to shards by a stable CRC32 (so the mapping survives process
restarts and ``PYTHONHASHSEED`` randomization); each shard owns its own
lock, :class:`BatchBuffer`, and lazily-started flush timer thread.  What
must NOT change relative to the single-lock center: globally monotonic
sequence numbers, lossless ``notifications_since`` replay, and flush
semantics under every propagation policy."""

import threading
import time
import zlib

from repro.db import Column, Database
from repro.db.types import FLOAT, INTEGER
from repro.sync import NotificationCenter
from repro.sync.batching import IMMEDIATE, MANUAL, Threshold
from repro.sync.notification import DEFAULT_SHARDS


def make_db(tables):
    db = Database()
    for name in tables:
        db.create_table(
            name,
            [Column("id", INTEGER, nullable=False), Column("x", FLOAT)],
            primary_key="id",
        )
    return db


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestShardMapping:
    def test_shard_of_is_stable_crc32(self):
        db = make_db([])
        center = NotificationCenter(db)
        try:
            for table in ("pts", "aux", "sys_lineage", "a" * 40):
                expected = zlib.crc32(table.encode("utf-8")) % center.shard_count
                assert center.shard_of(table) == expected
                assert 0 <= center.shard_of(table) < center.shard_count
        finally:
            center.close()

    def test_default_shard_count(self):
        db = make_db([])
        center = NotificationCenter(db)
        try:
            assert center.shard_count == DEFAULT_SHARDS
        finally:
            center.close()

    def test_single_shard_degenerate(self):
        db = make_db(["t0", "t1", "t2"])
        center = NotificationCenter(db, shards=1)
        try:
            assert center.shard_count == 1
            for name in ("t0", "t1", "t2"):
                assert center.shard_of(name) == 0
                center.watch(name)
                center.set_policy(name, MANUAL)
                db.insert(name, {"id": 1, "x": 1.0})
            assert center.flush_all() == 3
        finally:
            center.close()


class TestOrderingAcrossShards:
    def test_seq_nos_globally_monotonic_across_shards(self):
        """Interleaved writes to tables on different shards must still
        mint one global, gapless sequence."""
        tables = [f"t{i}" for i in range(6)]
        db = make_db(tables)
        center = NotificationCenter(db, shards=4)
        try:
            owners = {center.shard_of(t) for t in tables}
            assert len(owners) > 1  # the test actually crosses shards
            for t in tables:
                center.watch(t)
            for i in range(24):
                db.insert(tables[i % len(tables)], {"id": i, "x": float(i)})
            seqs = []
            for t in tables:
                seqs.extend(seq for seq, _op in center.notifications_since(t, 0))
            seqs.sort()
            assert len(seqs) == 24
            assert seqs == list(range(seqs[0], seqs[0] + 24))
        finally:
            center.close()

    def test_replay_per_table_is_lossless_and_ordered(self):
        db = make_db(["pts", "aux"])
        center = NotificationCenter(db, shards=8)
        try:
            center.watch("pts")
            center.watch("aux")
            for i in range(5):
                db.insert("pts", {"id": i, "x": float(i)})
                db.insert("aux", {"id": i, "x": float(i)})
            pts = center.notifications_since("pts", 0)
            assert [op for _seq, op in pts] == ["insert"] * 5
            assert [s for s, _ in pts] == sorted(s for s, _ in pts)
            # Cursor semantics: replay from the middle yields the tail.
            mid = pts[2][0]
            assert center.notifications_since("pts", mid) == pts[3:]
        finally:
            center.close()


class TestPerShardFlushing:
    def test_pending_ops_isolated_per_shard(self):
        db = make_db(["t0", "t1", "t2", "t3"])
        center = NotificationCenter(db, shards=4)
        try:
            buffered = []
            for name in ("t0", "t1", "t2", "t3"):
                center.watch(name)
                center.set_policy(name, MANUAL)
            for name in ("t0", "t1", "t2", "t3"):
                db.insert(name, {"id": 1, "x": 1.0})
                buffered.append(name)
            per_table = {t: center.pending_ops(t) for t in buffered}
            assert all(v == 1 for v in per_table.values())
            # Flushing one table drains only its own shard's entry.
            assert center.flush("t0") == 1
            assert center.pending_ops("t0") == 0
            assert center.pending_ops("t1") == 1
            stats = center.shard_stats()
            assert sum(s["pending_ops"] for s in stats) == 3
            assert sum(s["flushes"] for s in stats) == 1
        finally:
            center.close()

    def test_flush_all_drains_every_shard(self):
        tables = [f"t{i}" for i in range(10)]
        db = make_db(tables)
        center = NotificationCenter(db, shards=4)
        try:
            for t in tables:
                center.watch(t)
                center.set_policy(t, MANUAL)
                db.insert(t, {"id": 1, "x": 1.0})
            assert center.flush_all() == len(tables)
            assert all(s["pending_ops"] == 0 for s in center.shard_stats())
        finally:
            center.close()

    def test_timer_threads_start_only_on_shards_with_timed_policies(self):
        db = make_db(["timed", "counted", "manual"])
        center = NotificationCenter(db, shards=8)
        try:
            for t in ("timed", "counted", "manual"):
                center.watch(t)
            center.set_policy("manual", MANUAL)
            center.set_policy("counted", Threshold(max_changes=100, max_delay_ms=None))
            assert all(s.flush_thread is None for s in center._shards)
            center.set_policy("timed", Threshold(max_changes=100, max_delay_ms=20.0))
            started = [s.index for s in center._shards if s.flush_thread is not None]
            assert started == [center.shard_of("timed")]
            # And the timer actually fires: the buffered change flushes
            # by age without any further writes.
            db.insert("timed", {"id": 1, "x": 1.0})
            assert wait_until(lambda: center.pending_ops("timed") == 0)
            assert center.notifications_since("timed", 0)
        finally:
            center.close()

    def test_immediate_policy_unaffected_by_sharding(self):
        db = make_db(["pts"])
        center = NotificationCenter(db, shards=8)
        try:
            center.watch("pts")
            assert center.policy("pts") is IMMEDIATE
            db.insert("pts", {"id": 1, "x": 1.0})
            assert center.pending_ops("pts") == 0
            assert len(center.notifications_since("pts", 0)) == 1
        finally:
            center.close()


class TestConcurrency:
    def test_concurrent_writers_across_shards(self):
        """Writers hammering tables on different shards, with threshold
        flushing in play: no lost notifications, one global order."""
        tables = [f"t{i}" for i in range(8)]
        db = make_db(tables)
        center = NotificationCenter(db, shards=8)
        rows_per_table = 25
        try:
            for t in tables:
                center.watch(t)
                center.set_policy(t, Threshold(max_changes=5, max_delay_ms=None))
            errors = []

            def writer(table):
                try:
                    for i in range(rows_per_table):
                        db.insert(table, {"id": i, "x": float(i)})
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=writer, args=(t,)) for t in tables]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert not errors
            center.flush_all()
            seqs = []
            for t in tables:
                notes = center.notifications_since(t, 0)
                assert sum(1 for _ in notes) >= 1
                seqs.extend(s for s, _ in notes)
            # Coalescing may merge ops, but sequence numbers never collide.
            assert len(seqs) == len(set(seqs))
        finally:
            center.close()

    def test_close_joins_all_shard_timers(self):
        tables = [f"t{i}" for i in range(12)]
        db = make_db(tables)
        center = NotificationCenter(db, shards=4)
        for t in tables:
            center.watch(t)
            center.set_policy(t, Threshold(max_changes=100, max_delay_ms=10.0))
        started = [s.flush_thread for s in center._shards if s.flush_thread]
        assert len(started) == len({center.shard_of(t) for t in tables})
        center.close()
        assert all(not th.is_alive() for th in started)
