"""Hook containment: a raising observer must never take down delivery.

Notify and status hooks are user code running on liveness-critical
threads -- the in-process listener, the socket read loop, and the
reconnector.  These tests install deliberately-broken hooks and assert
the pipeline keeps flowing: later hooks still fire, dirty flags still
land, and reconnection still completes.  Failures are counted on
``client.hook_failures`` and the ``sync.client.hook_failures`` metric.
"""

import time

import pytest

import repro.obs as obs
from repro.db import Column, Database
from repro.db.types import FLOAT, INTEGER
from repro.retry import RetryPolicy
from repro.sync import (
    FaultPlan,
    FaultyTransport,
    NotificationCenter,
    SyncClient,
    SyncServer,
)
from repro.sync import client as client_mod

HB = 0.05


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def make_db():
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", FLOAT)],
        primary_key="id",
    )
    return db


def make_inprocess():
    db = make_db()
    server = SyncServer(db, use_sockets=False)
    client = SyncClient(server)
    return db, server, client


class TestNotifyHookContainment:
    def test_raising_notify_hook_does_not_break_delivery(self):
        db, server, client = make_inprocess()
        try:
            client.mirror("pts")
            survivors = []
            client.on_notify(lambda *a: (_ for _ in ()).throw(RuntimeError("boom")))
            client.on_notify(lambda table, op, seq: survivors.append((table, op, seq)))
            db.insert("pts", {"id": 1, "x": 1.0})
            # Later hooks still ran and the dirty flag still landed.
            assert survivors == [("pts", "insert", 1)]
            assert "pts" in client.dirty_tables()
            assert client.hook_failures == 1
            # The mirror still converges.
            client.refresh("pts")
            assert client.table("pts").all_rows()
        finally:
            client.close()
            server.close()

    def test_failures_counted_even_while_obs_disabled(self):
        """Hook failures are a rare liveness-relevant event: the counter is
        unconditional, not gated on obs.enabled()."""
        db, server, client = make_inprocess()
        try:
            client.mirror("pts")
            client.on_notify(lambda *a: 1 / 0)
            db.insert("pts", {"id": 1, "x": 1.0})
            db.insert("pts", {"id": 2, "x": 2.0})
            assert client.hook_failures == 2
            counters = obs.metrics().snapshot()["counters"]
            assert counters["sync.client.hook_failures{kind=notify}"] == 2
        finally:
            client.close()
            server.close()


class TestStatusHookContainment:
    def test_raising_status_hook_does_not_kill_reconnect(self):
        """The acceptance scenario from the issue: a status hook that raises
        must not abort the reconnect thread mid-recovery."""
        db = make_db()
        center = NotificationCenter(db)
        plans = [FaultPlan(disconnect_at=2)]

        def factory(stream):
            plan = plans.pop(0) if plans else None
            return FaultyTransport(stream, plan)

        server = SyncServer(
            db,
            center,
            use_sockets=True,
            heartbeat_interval=HB,
            transport_factory=factory,
        )
        client = SyncClient(
            server,
            heartbeat_timeout=HB * 5,
            reconnect=RetryPolicy(
                max_attempts=10,
                base_delay=0.01,
                multiplier=1.5,
                max_delay=0.1,
                jitter=0.5,
                retryable=(OSError, Exception),
            ),
        )
        statuses = []
        client.on_status(lambda *a: (_ for _ in ()).throw(RuntimeError("bad hook")))
        client.on_status(lambda status, reason: statuses.append(status))
        try:
            client.mirror("pts")
            for i in range(4):
                db.insert("pts", {"id": i, "x": float(i)})
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and client.reconnects == 0:
                time.sleep(0.005)
            assert client.reconnects >= 1, "client never reconnected"
            assert client.wait_status(client_mod.CONNECTED, timeout=5.0)
            # Every transition the broken hook saw, the healthy one saw too,
            # and each raised exactly once per transition.
            assert client_mod.CONNECTED in statuses
            assert client.hook_failures == len(statuses)
            counters = obs.metrics().snapshot()["counters"]
            assert counters["sync.client.hook_failures{kind=status}"] == len(statuses)
            # And the data path still converges after recovery.
            client.refresh("pts")
            assert len(client.table("pts").all_rows()) == 4
        finally:
            client.close()
            server.close()
