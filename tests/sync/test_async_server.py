"""The async (event-loop) server engine: mode selection, encode-once
fan-out accounting, bounded send queues with slow-client eviction, and
graceful drain on shutdown.

The protocol-level behavior (reconnect, replay, batching, traces) is
covered by the pre-existing suite, which runs against whatever engine
``EDIFLOW_SYNC_MODE`` selects; this file pins the contracts that only
exist in async mode."""

import socket
import time

import pytest

from repro.db import Column, Database
from repro.db.types import FLOAT, INTEGER
from repro.errors import SyncError
from repro.retry import RetryPolicy
from repro.sync import NotificationCenter, SyncClient, SyncServer
from repro.sync.server import MODE_ASYNC, MODE_THREADED, default_mode


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def fast_reconnect(max_attempts=10):
    return RetryPolicy(
        max_attempts=max_attempts,
        base_delay=0.01,
        multiplier=1.5,
        max_delay=0.1,
        jitter=0.5,
        retryable=(OSError, Exception),
    )


def make_db():
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", FLOAT)],
        primary_key="id",
    )
    return db


def make_stack(**server_kwargs):
    db = make_db()
    center = NotificationCenter(db)
    server_kwargs.setdefault("use_sockets", True)
    server_kwargs.setdefault("heartbeat_interval", None)
    server = SyncServer(db, center, **server_kwargs)
    client = SyncClient(server, reconnect=fast_reconnect())
    return db, center, server, client


def contents(client):
    return sorted((r["id"], r["x"]) for r in client.table("pts").all_rows())


class _StubSock:
    """Wraps a real socket but refuses writes: the kernel-buffer-full
    condition, made deterministic."""

    def __init__(self, real):
        self._real = real
        self.blocked = True

    def send(self, data):
        if self.blocked:
            raise BlockingIOError("stubbed: kernel buffer full")
        return self._real.send(data)

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestModeSelection:
    def test_default_mode_is_async(self, monkeypatch):
        monkeypatch.delenv("EDIFLOW_SYNC_MODE", raising=False)
        assert default_mode() == MODE_ASYNC
        db = make_db()
        server = SyncServer(db, NotificationCenter(db), use_sockets=False)
        assert server.mode == MODE_ASYNC
        server.close()

    def test_env_var_selects_threaded(self, monkeypatch):
        monkeypatch.setenv("EDIFLOW_SYNC_MODE", "threaded")
        db = make_db()
        server = SyncServer(db, NotificationCenter(db), use_sockets=False)
        assert server.mode == MODE_THREADED
        server.close()

    def test_explicit_mode_overrides_env(self, monkeypatch):
        monkeypatch.setenv("EDIFLOW_SYNC_MODE", "threaded")
        db = make_db()
        server = SyncServer(
            db, NotificationCenter(db), use_sockets=False, mode=MODE_ASYNC
        )
        assert server.mode == MODE_ASYNC
        server.close()

    def test_unknown_mode_rejected(self):
        db = make_db()
        with pytest.raises(SyncError):
            SyncServer(db, NotificationCenter(db), use_sockets=False, mode="fibers")

    def test_threaded_mode_still_serves_sockets(self):
        db, _center, server, client = make_stack(
            mode=MODE_THREADED, heartbeat_interval=0.05
        )
        try:
            client.mirror("pts")
            db.insert("pts", {"id": 1, "x": 1.0})
            assert client.wait_dirty("pts", timeout=5.0)
            client.refresh("pts")
            assert contents(client) == [(1, 1.0)]
        finally:
            client.close()
            server.close()


class TestAsyncEngine:
    def test_no_liveness_threads_even_with_heartbeats_on(self):
        """Async heartbeats ride the event loop: no per-client reader
        threads, no dedicated heartbeat thread."""
        db, _center, server, client = make_stack(
            mode=MODE_ASYNC, heartbeat_interval=0.05
        )
        try:
            client.mirror("pts")
            assert server._heartbeat_thread is None
            assert server._loop is not None
            # Liveness still works: pings flow and PONGs come back.
            assert wait_until(
                lambda: server.pings_sent >= 2 and server.pongs_received >= 2
            )
            assert server.connected_count() == 1
        finally:
            client.close()
            server.close()

    def test_notify_accounting_is_synchronous_on_healthy_links(self):
        db, _center, server, client = make_stack(mode=MODE_ASYNC)
        try:
            client.mirror("pts")
            link = next(iter(server._links.values()))
            db.insert("pts", {"id": 1, "x": 1.0})
            # No sleeping: the idle-queue inline write credits the link
            # before insert() returns.
            assert link.notify_count == 1
            assert link.missed_count == 0
        finally:
            client.close()
            server.close()

    def test_slow_client_is_evicted_at_queue_bound(self):
        db, _center, server, client = make_stack(
            mode=MODE_ASYNC, max_queue_frames=16
        )
        try:
            client.mirror("pts")
            endpoint = server._endpoints[(client.host, client.port)]
            conn = endpoint.conn
            assert conn is not None
            link = next(iter(server._links.values()))
            conn.sock = _StubSock(conn.sock)
            # Frames pile up in the bounded queue...
            for i in range(10):
                db.insert("pts", {"id": i, "x": float(i)})
            assert server.queued_frames() == 10
            assert link.notify_count == 0
            # ...until the bound trips and the slow client is evicted.
            for i in range(10, 30):
                db.insert("pts", {"id": i, "x": float(i)})
            assert server.evictions == 1
            # Eviction detaches the callback, but the fast_reconnect
            # client may re-attach (on a fresh, unstubbed socket) before
            # we look -- possibly even mid-loop, in which case the tail
            # of the inserts is delivered live.  The race-free
            # invariants: exactly one registered link, the bounded
            # queue's worth of frames (and everything sent while
            # detached) became replayable misses, and every
            # notification is accounted for exactly once.
            assert server.detached_count() + server.connected_count() == 1
            assert wait_until(lambda: server.queued_frames() == 0)
            assert link.missed_count > server.max_queue_frames
            assert link.notify_count + link.missed_count == 30
            # The registration survived eviction: the client reconnects
            # through the ordinary machinery and replays what it missed.
            assert server.client_count() == 1
            assert wait_until(lambda: client.reconnects >= 1)
            client.refresh("pts")
            assert contents(client) == [(i, float(i)) for i in range(30)]
        finally:
            client.close()
            server.close()

    def test_close_drains_queued_frames_before_shutdown(self):
        db, _center, server, client = make_stack(mode=MODE_ASYNC)
        received = []
        client.on_notify(lambda table, op, seq: received.append(seq))
        try:
            client.mirror("pts")
            for i in range(50):
                db.insert("pts", {"id": i, "x": float(i)})
            server.close()
            # Everything queued at close() time reached the client before
            # the FIN: the drain is graceful, not a truncation.
            assert wait_until(lambda: len(received) >= 50)
        finally:
            client.close()

    def test_externally_closed_socket_detaches_via_loop(self):
        """The event loop notices a read EOF even with heartbeats off."""
        db = make_db()
        center = NotificationCenter(db)
        server = SyncServer(
            db, center, use_sockets=True, heartbeat_interval=None, mode=MODE_ASYNC
        )
        # No auto-reconnect: the only detach path is the loop's read EOF.
        client = SyncClient(server, auto_reconnect=False)
        try:
            client.mirror("pts")
            # Client kills its end (shutdown, so the FIN goes out even
            # with its reader thread mid-recv); the loop is watching
            # readability and detaches without any NOTIFY traffic.
            client._stream._sock.shutdown(socket.SHUT_RDWR)
            assert wait_until(lambda: server.detaches >= 1)
            assert server.client_count() == 1  # registration survives
        finally:
            client.close()
            server.close()

    def test_shared_endpoint_two_tables_one_connection(self):
        db, _center, server, client = make_stack(mode=MODE_ASYNC)
        db.create_table(
            "aux",
            [Column("id", INTEGER, nullable=False), Column("x", FLOAT)],
            primary_key="id",
        )
        try:
            client.mirror("pts")
            client.mirror("aux")
            assert len(server._endpoints) == 1
            db.insert("pts", {"id": 1, "x": 1.0})
            db.insert("aux", {"id": 2, "x": 2.0})
            assert client.wait_dirty("pts", timeout=5.0)
            assert client.wait_dirty("aux", timeout=5.0)
            client.refresh("pts")
            client.refresh("aux")
            assert contents(client) == [(1, 1.0)]
        finally:
            client.close()
            server.close()


class TestAcceptFailureAccounting:
    def test_shutdown_accept_stays_silent(self):
        db, _center, server, client = make_stack(mode=MODE_ASYNC)
        try:
            client.mirror("pts")
            assert client.accept_failures == 0
        finally:
            client.close()
            server.close()
        # close() tears the listener down; no counter increment for that.
        assert client.accept_failures == 0

    def test_real_accept_failure_is_counted(self):
        db = make_db()
        center = NotificationCenter(db)
        server = SyncServer(db, center, use_sockets=True, heartbeat_interval=None)
        client = SyncClient(server)
        try:
            client._open_listener()
            # Break the listener while the client still believes it is
            # healthy: accept() now fails with a real OSError.
            client._listener.close()
            with pytest.raises(SyncError, match="listener unusable"):
                client._accept_callback_connection(timeout=0.2)
            assert client.accept_failures == 1
        finally:
            client.close()
            server.close()


class TestHealth:
    """SyncServer.health(): one saturation snapshot, published as gauges."""

    def test_async_snapshot_reports_loop_and_queues(self):
        db, _center, server, client = make_stack(mode=MODE_ASYNC)
        try:
            client.mirror("pts")
            for i in range(20):
                db.insert("pts", {"id": i, "x": float(i)})
            client.wait_dirty("pts", timeout=5.0)
            health = server.health()
            assert health["mode"] == MODE_ASYNC
            assert health["connected"] == 1
            loop = health["loop"]
            assert loop is not None and loop["iterations"] > 0
            lag = loop["lag_ms"]
            assert lag["count"] > 0 and lag["p99"] is not None
            assert 0.0 <= loop["poll_idle_ratio"] <= 1.0
            queues = health["queues"]
            assert queues["connections"] == 1
            # Twenty notifies crossed the wire: the high watermark moved.
            assert 1 <= queues["hiwat_frames"] <= queues["limit_frames"]
            assert queues["hiwat_bytes"] > 0
            assert health["shards"], "shard stats missing"
            assert all("pending_ops" in s for s in health["shards"])
        finally:
            client.close()
            server.close()

    def test_threaded_snapshot_has_no_loop(self):
        db, _center, server, client = make_stack(mode=MODE_THREADED)
        try:
            client.mirror("pts")
            health = server.health()
            assert health["mode"] == MODE_THREADED
            assert health["loop"] is None
            assert health["queues"]["connections"] == 0  # no async conns
        finally:
            client.close()
            server.close()

    def test_health_gauges_land_in_sys_metrics(self):
        """The acceptance path: health() -> sync.health.* gauges -> a
        running TelemetrySink persists them into sys_metrics."""
        import repro.obs as obs
        from repro.obs.store import SYS_METRICS, TelemetrySink

        obs.disable()
        obs.reset()
        obs.enable()
        sink = None
        db, _center, server, client = make_stack(mode=MODE_ASYNC)
        try:
            client.mirror("pts")
            for i in range(10):
                db.insert("pts", {"id": i, "x": float(i)})
            client.wait_dirty("pts", timeout=5.0)
            server.health()
            sink = TelemetrySink()
            sink.collect_and_flush()
            rows = sink.database.query(f"SELECT * FROM {SYS_METRICS}")
            stored = {r["name"] for r in rows if r["name"].startswith("sync.health.")}
            assert "sync.health.loop_lag_p99_ms" in stored
            assert "sync.health.loop_poll_idle_ratio" in stored
            assert "sync.health.queue_hiwat_frames" in stored
            assert "sync.health.connected" in stored
            connected = [
                r for r in rows if r["name"] == "sync.health.connected"
            ]
            assert any(r["value"] == 1.0 for r in connected)
            # Shard occupancy keeps its shard label through the sink.
            shard_rows = [
                r for r in rows if r["name"] == "sync.health.shard_pending_ops"
            ]
            import json

            assert shard_rows
            assert all("shard" in json.loads(r["labels"]) for r in shard_rows)
        finally:
            client.close()
            server.close()
            if sink is not None:
                sink.close()
            obs.disable()
            obs.reset()
