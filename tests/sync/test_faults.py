"""FaultyTransport and protocol edge cases: the wire misbehaving on
schedule must never corrupt mirrors or hang the stack."""

import socket
import threading

import pytest

from repro.db import Column, Database
from repro.db.types import FLOAT, INTEGER
from repro.errors import ProtocolError, SyncError
from repro.sync import (
    FaultPlan,
    FaultyTransport,
    NotificationCenter,
    SyncClient,
    SyncServer,
    protocol,
)


def stream_pair():
    """A connected (sender_stream, receiver_stream) over loopback TCP."""
    acceptor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    acceptor.bind(("127.0.0.1", 0))
    acceptor.listen(1)
    port = acceptor.getsockname()[1]
    out_sock = socket.create_connection(("127.0.0.1", port))
    in_sock, _ = acceptor.accept()
    acceptor.close()
    return protocol.MessageStream(out_sock), protocol.MessageStream(in_sock)


class TestFaultyTransportUnit:
    def test_drop_at_index(self):
        sender, receiver = stream_pair()
        faulty = FaultyTransport(sender, FaultPlan(drop=frozenset({1})))
        for seq in range(3):
            faulty.send(protocol.notify("t", seq, "insert"))
        got = [receiver.receive(timeout=2)["seq_no"] for _ in range(2)]
        assert got == [0, 2]
        assert faulty.dropped == 1
        sender.close()
        receiver.close()

    def test_duplicate_at_index(self):
        sender, receiver = stream_pair()
        faulty = FaultyTransport(sender, FaultPlan(duplicate=frozenset({0})))
        faulty.send(protocol.notify("t", 7, "insert"))
        assert receiver.receive(timeout=2)["seq_no"] == 7
        assert receiver.receive(timeout=2)["seq_no"] == 7
        assert faulty.duplicated == 1
        sender.close()
        receiver.close()

    def test_hold_reorders_deterministically(self):
        sender, receiver = stream_pair()
        # Message 0 is held until message 1 has been sent: arrival order 1, 0.
        faulty = FaultyTransport(sender, FaultPlan(hold={0: 1}))
        faulty.send(protocol.notify("t", 0, "insert"))
        faulty.send(protocol.notify("t", 1, "insert"))
        got = [receiver.receive(timeout=2)["seq_no"] for _ in range(2)]
        assert got == [1, 0]
        assert faulty.reordered == 1
        sender.close()
        receiver.close()

    def test_disconnect_at_kills_socket(self):
        sender, receiver = stream_pair()
        faulty = FaultyTransport(sender, FaultPlan(disconnect_at=1))
        faulty.send(protocol.notify("t", 0, "insert"))
        with pytest.raises(OSError):
            faulty.send(protocol.notify("t", 1, "insert"))
        assert receiver.receive(timeout=2)["seq_no"] == 0
        with pytest.raises(ProtocolError, match="closed"):
            receiver.receive(timeout=2)
        receiver.close()

    def test_truncate_leaves_partial_line_then_eof(self):
        sender, receiver = stream_pair()
        faulty = FaultyTransport(sender, FaultPlan(truncate_at=0))
        with pytest.raises(OSError):
            faulty.send(protocol.notify("t", 0, "insert"))
        # The peer sees a half message and then EOF -- a loud protocol
        # error, never a silently-parsed partial frame.
        with pytest.raises(ProtocolError):
            receiver.receive(timeout=2)
        receiver.close()

    def test_probabilistic_drops_are_seeded(self):
        def run(seed):
            sender, receiver = stream_pair()
            faulty = FaultyTransport(
                sender, FaultPlan(drop_rate=0.5), seed=seed
            )
            for seq in range(20):
                faulty.send(protocol.notify("t", seq, "insert"))
            received = []
            try:
                while len(received) < 20 - faulty.dropped:
                    received.append(receiver.receive(timeout=2)["seq_no"])
            finally:
                sender.close()
                receiver.close()
            return received

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestProtocolEdgeCases:
    def test_wrong_magic_handshake_rejected(self):
        sender, receiver = stream_pair()
        sender.send({"type": protocol.HELLO, "magic": "not-ediflow"})
        with pytest.raises(ProtocolError, match="bad handshake"):
            protocol.server_handshake(receiver, timeout=2)
        sender.close()
        receiver.close()

    def test_wrong_magic_reply_rejected(self):
        sender, receiver = stream_pair()
        receiver.send({"type": protocol.REPLY, "magic": "evil"})

        def absorb_hello():
            try:
                receiver.receive(timeout=2)
            except ProtocolError:
                pass

        thread = threading.Thread(target=absorb_hello, daemon=True)
        thread.start()
        with pytest.raises(ProtocolError, match="bad handshake"):
            protocol.client_handshake(sender, timeout=2)
        thread.join(timeout=2)
        sender.close()
        receiver.close()

    def test_truncated_json_line_is_protocol_error(self):
        sender, receiver = stream_pair()
        sender._sock.sendall(b'{"type": "NOTIFY", "table"\n')
        with pytest.raises(ProtocolError, match="undecodable"):
            receiver.receive(timeout=2)
        sender.close()
        receiver.close()

    def test_oversized_outgoing_message_rejected(self):
        with pytest.raises(ProtocolError, match="too large"):
            protocol.encode({"type": "NOTIFY", "pad": "x" * (1 << 17)})

    def test_oversized_terminated_line_rejected(self):
        # A peer ignoring our encoder can still ship a huge *terminated*
        # line; the receiver must bound it, not decode it.
        sender, receiver = stream_pair()
        payload = b'{"type": "NOTIFY", "pad": "' + b"x" * (1 << 17) + b'"}\n'
        thread = threading.Thread(
            target=lambda: sender._sock.sendall(payload), daemon=True
        )
        thread.start()
        with pytest.raises(ProtocolError, match="over-long"):
            receiver.receive(timeout=5)
        thread.join(timeout=2)
        sender.close()
        receiver.close()

    def test_disconnect_during_handshake(self):
        sender, receiver = stream_pair()
        sender.close()  # peer vanishes before HELLO
        with pytest.raises(ProtocolError, match="closed"):
            protocol.server_handshake(receiver, timeout=2)
        receiver.close()


def fault_stack(plans, heartbeat_interval=None, **client_kwargs):
    """A socket-mode stack whose Nth callback connection gets plans[N]
    (subsequent connections run clean)."""
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", FLOAT)],
        primary_key="id",
    )
    center = NotificationCenter(db)
    queue = list(plans)
    transports = []

    def factory(stream):
        plan = queue.pop(0) if queue else None
        transport = FaultyTransport(stream, plan)
        transports.append(transport)
        return transport

    server = SyncServer(
        db,
        center,
        use_sockets=True,
        heartbeat_interval=heartbeat_interval,
        transport_factory=factory,
    )
    client = SyncClient(server, **client_kwargs)
    return db, server, client, transports


def mirrored_ids(client):
    return sorted(r["id"] for r in client.table("pts").all_rows())


class TestFaultyFullCycle:
    """register -> NOTIFY -> refresh with a misbehaving wire."""

    def test_dropped_notifies_do_not_lose_data(self):
        # Messages: 0 = handshake REPLY, 1.. = NOTIFYs (heartbeats off).
        db, server, client, transports = fault_stack(
            [FaultPlan(drop=frozenset({1, 3}))]
        )
        try:
            client.mirror("pts")
            for i in range(4):
                db.insert("pts", {"id": i, "x": float(i)})
            # NOTIFYs 2 and 4 arrive; 1 and 3 were dropped.
            assert client.wait_dirty("pts", timeout=5.0)
            client.refresh("pts")
            # The pull path reads changes_since(last_seq_no), so dropped
            # notifications cost latency, never data.
            assert mirrored_ids(client) == [0, 1, 2, 3]
            assert transports[0].dropped == 2
        finally:
            client.close()
            server.close()

    def test_duplicated_and_reordered_notifies_converge(self):
        db, server, client, transports = fault_stack(
            [FaultPlan(duplicate=frozenset({1}), hold={2: 3})]
        )
        try:
            client.mirror("pts")
            for i in range(4):
                db.insert("pts", {"id": i, "x": float(i)})
            assert client.wait_dirty("pts", timeout=5.0)
            deadline_ids = [0, 1, 2, 3]
            client.refresh("pts")
            assert mirrored_ids(client) == deadline_ids
            assert transports[0].duplicated == 1
            assert transports[0].reordered == 1
            # Refreshing again changes nothing: duplicate NOTIFYs coalesce
            # into dirty flags, they are never applied twice.
            stats = client.refresh("pts")
            assert stats == {"upserts": 0, "deletes": 0}
            assert mirrored_ids(client) == deadline_ids
        finally:
            client.close()
            server.close()

    def test_mid_handshake_truncation_fails_registration_cleanly(self):
        db, server, client, _transports = fault_stack([FaultPlan(truncate_at=0)])
        try:
            with pytest.raises(SyncError):
                client.mirror("pts")
            # No ConnectedUser row survives the failed registration.
            from repro.core import datamodel

            assert db.query(f"SELECT * FROM {datamodel.T_CONNECTED_USER}") == []
        finally:
            client.close()
            server.close()
