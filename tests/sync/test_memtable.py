"""In-memory mirrors: upserts, deletes, partial mirrors, echo suppression."""

import pytest

from repro.db.schema import TID
from repro.errors import SyncError
from repro.sync import MemoryTable


def row(tid, **values):
    values[TID] = tid
    return values


class TestApply:
    def test_upsert_inserts_then_updates(self):
        rm = MemoryTable("t")
        rm.apply_upsert(row(1, x=1))
        assert rm.applied_inserts == 1
        rm.apply_upsert(row(1, x=2))
        assert rm.applied_updates == 1
        assert rm.get(1)["x"] == 2

    def test_delete(self):
        rm = MemoryTable("t")
        rm.apply_upsert(row(1, x=1))
        rm.apply_delete(1)
        assert rm.get(1) is None
        assert rm.applied_deletes == 1
        rm.apply_delete(1)  # idempotent
        assert rm.applied_deletes == 1

    def test_reads_are_copies(self):
        rm = MemoryTable("t")
        rm.apply_upsert(row(1, x=1))
        copy = rm.get(1)
        copy["x"] = 999
        assert rm.get(1)["x"] == 1

    def test_iteration_and_len(self):
        rm = MemoryTable("t")
        rm.apply_upsert(row(1, x=1))
        rm.apply_upsert(row(2, x=2))
        assert len(rm) == 2
        assert sorted(r["x"] for r in rm) == [1, 2]
        assert rm.tids() == [1, 2]


class TestPartialMirrors:
    def test_fraction_filters_deterministically(self):
        rm = MemoryTable("t", fraction=0.3)
        for tid in range(1, 201):
            rm.apply_upsert(row(tid, x=tid))
        kept_once = len(rm)
        # Same tids, same decision.
        rm2 = MemoryTable("t", fraction=0.3)
        for tid in range(1, 201):
            rm2.apply_upsert(row(tid, x=tid))
        assert len(rm2) == kept_once
        assert 0.15 < kept_once / 200 < 0.45  # roughly the fraction

    def test_invalid_fraction(self):
        with pytest.raises(SyncError):
            MemoryTable("t", fraction=0.0)
        with pytest.raises(SyncError):
            MemoryTable("t", fraction=1.5)

    def test_predicate_filter(self):
        rm = MemoryTable("t", predicate=lambda r: r["x"] > 10)
        rm.apply_upsert(row(1, x=5))
        rm.apply_upsert(row(2, x=15))
        assert rm.tids() == [2]

    def test_row_leaving_predicate_is_dropped(self):
        rm = MemoryTable("t", predicate=lambda r: r["x"] > 10)
        rm.apply_upsert(row(1, x=15))
        assert len(rm) == 1
        rm.apply_upsert(row(1, x=5))  # update moves it out of the mirror
        assert len(rm) == 0


class TestEchoSuppression:
    def test_own_write_echo_skipped(self):
        rm = MemoryTable("t")
        rm.apply_upsert(row(1, x=1, y="a"))
        rm.stage_write(1, "x", 42)
        # The DB echoes the row back with our own value.
        rm.apply_upsert(row(1, x=42, y="a"))
        assert rm.skipped_self_updates == 1
        assert rm.applied_updates == 0
        assert rm.get(1)["x"] == 42

    def test_concurrent_remote_change_wins(self):
        rm = MemoryTable("t")
        rm.apply_upsert(row(1, x=1, y="a"))
        rm.stage_write(1, "x", 42)
        # Echo carries a different value: remote overwrote ours.
        rm.apply_upsert(row(1, x=7, y="a"))
        assert rm.get(1)["x"] == 7
        assert rm.applied_updates == 1

    def test_other_column_changed_alongside(self):
        rm = MemoryTable("t")
        rm.apply_upsert(row(1, x=1, y="a"))
        rm.stage_write(1, "x", 42)
        rm.apply_upsert(row(1, x=42, y="b"))  # y changed remotely too
        assert rm.applied_updates == 1
        assert rm.get(1)["y"] == "b"

    def test_stage_write_unknown_tid(self):
        rm = MemoryTable("t")
        with pytest.raises(SyncError):
            rm.stage_write(99, "x", 1)
