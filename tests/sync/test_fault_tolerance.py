"""Fault tolerance acceptance: heartbeats, reconnect + catch-up, polling
fallback.  Every scenario compares a faulted run against what an
uninterrupted run would have produced -- the mirrors must converge to
identical contents."""

import threading
import time


from repro.core import datamodel
from repro.db import Column, Database
from repro.db.types import FLOAT, INTEGER
from repro.retry import RetryPolicy
from repro.sync import (
    FaultPlan,
    FaultyTransport,
    NotificationCenter,
    SyncClient,
    SyncServer,
)
from repro.sync import client as client_mod

HB = 0.05  # heartbeat interval used throughout


def fast_reconnect(max_attempts=10):
    return RetryPolicy(
        max_attempts=max_attempts,
        base_delay=0.01,
        multiplier=1.5,
        max_delay=0.1,
        jitter=0.5,
        retryable=(OSError, Exception),
    )


def make_db():
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", FLOAT)],
        primary_key="id",
    )
    return db


def faulted_stack(plans, **client_kwargs):
    """Socket stack whose Nth callback connection runs plans[N]; later
    connections (i.e. after a reconnect) run clean."""
    db = make_db()
    center = NotificationCenter(db)
    queue = list(plans)
    transports = []

    def factory(stream):
        plan = queue.pop(0) if queue else None
        transport = FaultyTransport(stream, plan)
        transports.append(transport)
        return transport

    server = SyncServer(
        db, center, use_sockets=True, heartbeat_interval=HB, transport_factory=factory
    )
    client_kwargs.setdefault("reconnect", fast_reconnect())
    client_kwargs.setdefault("heartbeat_timeout", HB * 5)
    client = SyncClient(server, **client_kwargs)
    return db, server, client, transports


def contents(client):
    return sorted((r["id"], r["x"]) for r in client.table("pts").all_rows())


def uninterrupted_contents(n_rows):
    """What a run with a perfect network produces for the same inserts."""
    db = make_db()
    server = SyncServer(db, NotificationCenter(db), use_sockets=False)
    client = SyncClient(server)
    client.mirror("pts")
    for i in range(n_rows):
        db.insert("pts", {"id": i, "x": float(i)})
    client.refresh("pts")
    result = contents(client)
    client.close()
    server.close()
    return result


class TestReconnectAndCatchUp:
    def test_mid_session_kill_reconnect_replay_converge(self):
        """The acceptance scenario: FaultyTransport severs the server-side
        stream mid-session; the client must notice within the heartbeat
        window, reconnect under backoff, replay every missed notification
        from last_seq_no, and converge to the uninterrupted contents."""
        # Message 0 is the handshake REPLY; the connection dies on the
        # 4th send (NOTIFY or PING, whichever comes 4th).
        db, server, client, transports = faulted_stack(
            [FaultPlan(disconnect_at=3)]
        )
        events = []
        statuses = []
        client.on_notify(lambda table, op, seq: events.append((table, op, seq)))
        client.on_status(lambda status, reason: statuses.append((status, time.monotonic())))
        try:
            client.mirror("pts")
            lost_at = time.monotonic()
            for i in range(6):
                db.insert("pts", {"id": i, "x": float(i)})
            # Detection + reconnection: the client must come back as
            # CONNECTED (the second callback connection runs clean).
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and client.reconnects == 0:
                time.sleep(0.005)
            assert client.reconnects >= 1, "client never reconnected"
            assert client.wait_status(client_mod.CONNECTED, timeout=5.0)
            assert client.connection_lost_reason is not None
            # Detection happened within a few heartbeat windows, not on
            # some unrelated slow path.
            lost_events = [t for s, t in statuses if s == client_mod.RECONNECTING]
            assert lost_events, "loss was never surfaced via status hooks"
            assert lost_events[0] - lost_at < HB * 5 * 4 + 2.0
            # Replay: notifications fired while the link was down arrive
            # via the catch-up path, strictly ordered by seq_no.
            assert client.replayed_notifications >= 1
            seqs = [seq for _t, _op, seq in events]
            assert seqs == sorted(seqs) or client.notify_received > len(set(seqs))
            # Convergence: identical to a run that never faulted.
            client.refresh("pts")
            assert contents(client) == uninterrupted_contents(6)
            # The restored push path works for new changes too.
            db.insert("pts", {"id": 100, "x": 100.0})
            assert client.wait_dirty("pts", timeout=5.0)
            client.refresh("pts")
            assert (100, 100.0) in contents(client)
            assert transports[0].disconnected >= 1
        finally:
            client.close()
            server.close()

    def test_silent_link_detected_by_heartbeat_timeout(self):
        """A link that stays open but delivers nothing (every message
        dropped) must be declared dead by liveness monitoring alone."""
        db, server, client, transports = faulted_stack(
            [FaultPlan(drop=frozenset(range(1, 100000)))]
        )
        try:
            client.mirror("pts")
            lost_at = time.monotonic()
            for i in range(4):
                db.insert("pts", {"id": i, "x": float(i)})
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and client.reconnects == 0:
                time.sleep(0.005)
            assert client.reconnects >= 1, "silent link never detected"
            detected_after = time.monotonic() - lost_at
            # Generous CI bound; nominal detection is one timeout (~0.3 s).
            assert detected_after < 8.0
            client.refresh("pts")
            assert contents(client) == uninterrupted_contents(4)
        finally:
            client.close()
            server.close()

    def test_reconnect_preserves_purge_invariant(self):
        """last_seq_no keeps protecting unconsumed notifications through
        the outage; after catch-up the purge horizon advances again."""
        db, server, client, _transports = faulted_stack([FaultPlan(disconnect_at=2)])
        try:
            client.mirror("pts")
            for i in range(5):
                db.insert("pts", {"id": i, "x": float(i)})
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and client.reconnects == 0:
                time.sleep(0.005)
            assert client.reconnects >= 1
            # Before the client consumed, nothing may purge past it.
            assert db.query(f"SELECT * FROM {datamodel.T_NOTIFICATION}") != []
            client.refresh("pts")
            assert server.purge_notifications() >= 1
            assert db.query(f"SELECT * FROM {datamodel.T_NOTIFICATION}") == []
        finally:
            client.close()
            server.close()


class TestPollingFallback:
    def test_degrades_to_polling_when_reconnect_impossible(self):
        """Second acceptance scenario: reconnection cannot succeed (the
        client's listener is gone), so after the retry budget the client
        flags the condition and keeps refreshing via the in-process
        polling path -- views degrade to stale-but-consistent, never
        frozen."""
        db, server, client, _transports = faulted_stack(
            [], reconnect=fast_reconnect(max_attempts=2)
        )
        statuses = []
        client.on_status(lambda status, reason: statuses.append(status))
        try:
            client.mirror("pts")
            # Make reconnection impossible, then sever the live stream.
            client._listener.close()
            server._endpoints[(client.host, client.port)].stream.close()
            assert client.wait_status(client_mod.DEGRADED, timeout=10.0)
            assert client.connection_lost
            assert client.status == client_mod.DEGRADED
            assert client_mod.RECONNECTING in statuses
            # All mirrors were flagged dirty on loss: consumers re-pull
            # instead of trusting a silent link.
            assert "pts" in client.dirty_tables()
            # The polling path keeps the full notify -> dirty -> refresh
            # cycle alive.
            client.refresh("pts")
            for i in range(3):
                db.insert("pts", {"id": i, "x": float(i)})
            assert client.wait_dirty("pts", timeout=5.0)
            client.refresh("pts")
            assert contents(client) == uninterrupted_contents(3)
        finally:
            client.close()
            server.close()

    def test_degraded_client_closes_cleanly(self):
        db, server, client, _transports = faulted_stack(
            [], reconnect=fast_reconnect(max_attempts=1)
        )
        client.mirror("pts")
        client._listener.close()
        server._endpoints[(client.host, client.port)].stream.close()
        assert client.wait_status(client_mod.DEGRADED, timeout=10.0)
        client.close()
        assert client.status == client_mod.CLOSED
        # The degraded-mode center listener is gone: new changes must not
        # touch the closed client.
        before = client.notify_received
        db.insert("pts", {"id": 9, "x": 9.0})
        assert client.notify_received == before
        server.close()


class TestHeartbeats:
    def test_pings_and_pongs_flow_on_a_healthy_link(self):
        db, server, client, _transports = faulted_stack([])
        try:
            client.mirror("pts")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and server.pongs_received < 2:
                time.sleep(0.01)
            assert server.pings_sent >= 2
            assert client.pongs_sent >= 2
            assert server.pongs_received >= 2
            assert client.status == client_mod.CONNECTED
            assert client.reconnects == 0
            assert server.connected_count() == 1
        finally:
            client.close()
            server.close()

    def test_heartbeats_disabled_means_no_liveness_threads(self):
        db = make_db()
        server = SyncServer(
            db, NotificationCenter(db), use_sockets=True, heartbeat_interval=None
        )
        client = SyncClient(server)
        try:
            client.mirror("pts")
            assert client.heartbeat_timeout is None
            assert client._monitor is None
            assert server._heartbeat_thread is None
            db.insert("pts", {"id": 1, "x": 1.0})
            assert client.wait_dirty("pts", timeout=5.0)
        finally:
            client.close()
            server.close()


class TestServerBookkeepingUnderFaults:
    def test_unregister_is_idempotent_under_concurrency(self):
        db = make_db()
        server = SyncServer(db, NotificationCenter(db), use_sockets=False)
        cu_id = server.register_client("pts", "127.0.0.1", 1)
        results = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            results.append(server.unregister_client(cu_id))

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results.count(True) == 1
        assert results.count(False) == 7
        assert db.query(f"SELECT * FROM {datamodel.T_CONNECTED_USER}") == []
        server.close()

    def test_notify_count_increments_only_after_successful_send(self):
        db = make_db()
        server = SyncServer(
            db, NotificationCenter(db), use_sockets=True, heartbeat_interval=None
        )
        client = SyncClient(server, auto_reconnect=False)
        try:
            client.mirror("pts")
            db.insert("pts", {"id": 0, "x": 0.0})
            (link,) = server._links.values()
            assert link.notify_count == 1
            assert link.missed_count == 0
            # Sever the transport behind the server's back: the next
            # notify fails to send and must count as missed, not notified.
            link.endpoint.stream.close()
            db.insert("pts", {"id": 1, "x": 1.0})
            db.insert("pts", {"id": 2, "x": 2.0})
            assert link.notify_count == 1
            assert link.missed_count >= 1
            assert server.detached_count() == 1
        finally:
            client.close()
            server.close()

    def test_evict_detached_drops_stale_registrations(self):
        db = make_db()
        server = SyncServer(
            db, NotificationCenter(db), use_sockets=True, heartbeat_interval=None
        )
        client = SyncClient(server, auto_reconnect=False)
        try:
            client.mirror("pts")
            link = next(iter(server._links.values()))
            link.endpoint.stream.close()
            db.insert("pts", {"id": 0, "x": 0.0})  # detaches on failed send
            assert server.detached_count() == 1
            assert server.evict_detached(max_age=3600.0) == 0  # too young
            assert server.evict_detached(max_age=0.0) == 1
            assert server.client_count() == 0
            assert db.query(f"SELECT * FROM {datamodel.T_CONNECTED_USER}") == []
        finally:
            client.close()
            server.close()
