"""Reconnect across a server restart: the notification log is durable.

The purge-horizon invariant ("never purge above any connected client's
last_seq_no") only helps a reconnecting client if the seq-no and
changed-rows tables actually SURVIVE the server dying.  With a durable
database they are WAL-covered like any other table, so a client that
remembers its position can replay exactly what it missed.
"""

import pytest

from repro.db import open_durable
from repro.sync import NotificationCenter, SyncClient, SyncServer


@pytest.fixture
def durable_stack(tmp_path):
    directory = tmp_path / "data"
    db, manager = open_durable(directory)
    db.execute("CREATE TABLE pts (id INTEGER PRIMARY KEY, x FLOAT)")
    db.execute("INSERT INTO pts (id, x) VALUES (1, 0.0), (2, 1.0)")
    center = NotificationCenter(db)
    server = SyncServer(db, center, use_sockets=False)
    client = SyncClient(server)
    return directory, db, server, client


def restart(directory):
    """The server process dies (fsync=always: every commit is on disk)
    and a new one recovers from the durable directory.  Reopening with
    ``open_durable`` (not bare ``recover``) keeps post-restart writes
    logged too, so a SECOND restart sees them."""
    db, _manager = open_durable(directory)
    center = NotificationCenter(db)
    server = SyncServer(db, center, use_sockets=False)
    return db, center, server


def reattach(client, db, server):
    """Point a surviving client at the restarted server (in-process
    transport: the "socket" is plain attribute wiring)."""
    client.database = db
    client.server = server
    client.center = server.center


class TestRestartReplay:
    def test_missed_changes_replay_after_restart(self, durable_stack):
        directory, db, _server, client = durable_stack
        mirror = client.mirror("pts")
        position = mirror.last_seq_no
        assert len(mirror) == 2

        # Changes the client never pulls before the server dies.
        db.execute("INSERT INTO pts (id, x) VALUES (3, 2.0)")
        db.execute("UPDATE pts SET x = 9.0 WHERE id = 1")
        db.execute("DELETE FROM pts WHERE id = 2")

        db2, center2, server2 = restart(directory)
        # The restarted server re-armed the watch trigger from the durable
        # ConnectedUser rows -- new writes keep flowing into the log.
        assert center2.watched_tables() == ["pts"]
        missed = center2.notifications_since("pts", position)
        assert [op for _seq, op in missed] == ["insert", "update", "delete"]

        reattach(client, db2, server2)
        stats = client.refresh("pts")
        assert stats == {"upserts": 2, "deletes": 1}
        assert {r["id"]: r["x"] for r in mirror.all_rows()} == {1: 9.0, 3: 2.0}
        assert mirror.last_seq_no == max(seq for seq, _op in missed)

    def test_changes_since_survives_restart_verbatim(self, durable_stack):
        directory, db, _server, client = durable_stack
        mirror = client.mirror("pts")
        position = mirror.last_seq_no
        db.execute("INSERT INTO pts (id, x) VALUES (4, 4.0)")
        before = client.center.changes_since("pts", position)

        _db2, center2, _server2 = restart(directory)
        assert center2.changes_since("pts", position) == before

    def test_connected_user_registration_survives_restart(self, durable_stack):
        from repro.core import datamodel

        directory, db, _server, client = durable_stack
        client.mirror("pts")
        users_before = [
            dict(r) for r in db.table(datamodel.T_CONNECTED_USER).rows()
        ]
        assert users_before

        db2, _center2, server2 = restart(directory)
        users_after = [
            dict(r) for r in db2.table(datamodel.T_CONNECTED_USER).rows()
        ]
        assert users_after == users_before
        # The surviving registration keeps the purge horizon honest: the
        # reattached client can still advance its seq through the server.
        reattach(client, db2, server2)
        db2.execute("INSERT INTO pts (id, x) VALUES (7, 7.0)")
        client.refresh("pts")
        horizon = db2.table(datamodel.T_CONNECTED_USER).rows()
        assert [r["last_seq_no"] for r in horizon] == [
            client.table("pts").last_seq_no
        ]

    def test_new_client_full_replay_from_durable_log(self, durable_stack):
        directory, db, _server, client = durable_stack
        client.mirror("pts")
        db.execute("INSERT INTO pts (id, x) VALUES (5, 5.0)")
        db.execute("DELETE FROM pts WHERE id = 1")

        db2, _center2, server2 = restart(directory)
        fresh = SyncClient(server2)
        mirror = fresh.mirror("pts")  # initial fill from the recovered R_D
        assert {r["id"] for r in mirror.all_rows()} == {
            r["id"] for r in db2.query("SELECT id FROM pts")
        }

    def test_double_restart_keeps_replaying(self, durable_stack):
        directory, db, _server, client = durable_stack
        mirror = client.mirror("pts")
        db.execute("INSERT INTO pts (id, x) VALUES (3, 3.0)")

        db2, _center2, server2 = restart(directory)
        reattach(client, db2, server2)
        client.refresh("pts")
        db2.execute("INSERT INTO pts (id, x) VALUES (4, 4.0)")

        db3, _center3, server3 = restart(directory)
        reattach(client, db3, server3)
        client.refresh("pts")
        assert {r["id"] for r in mirror.all_rows()} == {1, 2, 3, 4}
