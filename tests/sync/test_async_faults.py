"""Fault injection through the async event loop.

The same :class:`FaultPlan` schedules that drive the threaded engine's
blocking sends are applied byte-level to the async engine's per-client
queues (``FaultyTransport.perturb``): truncated frames flush their
partial bytes before the kill, delays ride the queue without blocking
the notifying thread, and every failure converges back to byte-identical
mirrors via the ordinary reconnect/replay machinery."""

import time

from repro.db import Column, Database
from repro.db.types import FLOAT, INTEGER
from repro.retry import RetryPolicy
from repro.sync import (
    FaultPlan,
    FaultyTransport,
    NotificationCenter,
    SyncClient,
    SyncServer,
)
from repro.sync.server import MODE_ASYNC


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def fast_reconnect(max_attempts=10):
    return RetryPolicy(
        max_attempts=max_attempts,
        base_delay=0.01,
        multiplier=1.5,
        max_delay=0.1,
        jitter=0.5,
        retryable=(OSError, Exception),
    )


def make_db():
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", FLOAT)],
        primary_key="id",
    )
    return db


def faulted_stack(plans, heartbeat=0.05, **server_kwargs):
    """Async-mode socket stack whose Nth callback connection runs
    plans[N]; later connections (after a reconnect) run clean."""
    db = make_db()
    center = NotificationCenter(db)
    queue = list(plans)
    transports = []

    def factory(stream):
        plan = queue.pop(0) if queue else None
        transport = FaultyTransport(stream, plan)
        transports.append(transport)
        return transport

    server = SyncServer(
        db,
        center,
        use_sockets=True,
        heartbeat_interval=heartbeat,
        transport_factory=factory,
        mode=MODE_ASYNC,
        **server_kwargs,
    )
    client = SyncClient(
        server, reconnect=fast_reconnect(), heartbeat_timeout=0.25
    )
    return db, server, client, transports


def contents(client):
    return sorted((r["id"], r["x"]) for r in client.table("pts").all_rows())


def source_contents(db):
    return sorted((r["id"], r["x"]) for r in db.table("pts").scan())


class TestAsyncFaultInjection:
    def test_truncated_frame_flushes_partial_bytes_then_converges(self):
        """Index 0 is the handshake REPLY (sent on the blocking path);
        index 1 -- the first NOTIFY -- is cut mid-frame by the event
        loop, which must still flush the partial bytes before killing
        the connection."""
        db, server, client, transports = faulted_stack(
            [FaultPlan(truncate_at=1)]
        )
        try:
            client.mirror("pts")
            link = next(iter(server._links.values()))
            db.insert("pts", {"id": 0, "x": 0.0})
            assert wait_until(lambda: transports[0].truncated == 1)
            # The cut delivery is a miss, never a success.
            assert wait_until(lambda: link.missed_count >= 1)
            assert link.notify_count == 0
            assert wait_until(lambda: client.reconnects >= 1)
            for i in range(1, 5):
                db.insert("pts", {"id": i, "x": float(i)})
            assert wait_until(
                lambda: client.refresh("pts") is not None
                and contents(client) == source_contents(db)
            )
        finally:
            client.close()
            server.close()

    def test_disconnect_mid_stream_evicts_and_replays(self):
        db, server, client, transports = faulted_stack(
            [FaultPlan(disconnect_at=2)]
        )
        try:
            client.mirror("pts")
            for i in range(8):
                db.insert("pts", {"id": i, "x": float(i)})
            assert transports[0].disconnected >= 1
            assert wait_until(lambda: client.reconnects >= 1)
            assert wait_until(
                lambda: client.refresh("pts") is not None
                and contents(client) == source_contents(db)
            )
            assert server.detaches >= 1
            assert server.reattaches >= 1
        finally:
            client.close()
            server.close()

    def test_delayed_frame_defers_credit_without_blocking_writers(self):
        """A fault-injected delay parks the frame in the send queue; the
        insert returns immediately and the delivery credit lands only
        when the loop flushes it after the deadline."""
        db, server, client, transports = faulted_stack(
            [FaultPlan(delay={1: 0.2})], heartbeat=None
        )
        try:
            client.mirror("pts")
            link = next(iter(server._links.values()))
            started = time.monotonic()
            db.insert("pts", {"id": 0, "x": 0.0})
            insert_latency = time.monotonic() - started
            # The notifying thread never slept the 200ms.
            assert insert_latency < 0.15
            assert link.notify_count == 0
            assert transports[0].delayed == 1
            assert wait_until(lambda: link.notify_count == 1)
            assert time.monotonic() - started >= 0.2
            assert wait_until(lambda: client.notify_received >= 1)
            client.refresh("pts")
            assert contents(client) == [(0, 0.0)]
        finally:
            client.close()
            server.close()

    def test_dropped_notify_recovered_by_later_refresh(self):
        """A dropped NOTIFY counts as sent (the wire ate it, not us); the
        client recovers the change when the next NOTIFY triggers a
        cumulative changes_since refresh."""
        db, server, client, transports = faulted_stack(
            [FaultPlan(drop={1})], heartbeat=None
        )
        try:
            client.mirror("pts")
            link = next(iter(server._links.values()))
            db.insert("pts", {"id": 0, "x": 0.0})
            assert transports[0].dropped == 1
            assert link.notify_count == 1  # engine-level success
            db.insert("pts", {"id": 1, "x": 1.0})
            assert wait_until(lambda: client.notify_received >= 1)
            client.refresh("pts")
            assert contents(client) == [(0, 0.0), (1, 1.0)]
        finally:
            client.close()
            server.close()

    def test_duplicate_and_reorder_ride_the_queue(self):
        """Duplicated and held/reordered frames pass through the queue
        byte-for-byte; the client's seq-cursor refresh absorbs both."""
        db, server, client, transports = faulted_stack(
            [FaultPlan(duplicate={1}, hold={2: 3})], heartbeat=None
        )
        try:
            client.mirror("pts")
            for i in range(4):
                db.insert("pts", {"id": i, "x": float(i)})
            assert transports[0].duplicated == 1
            assert wait_until(lambda: transports[0].reordered == 1)
            assert wait_until(
                lambda: client.refresh("pts") is not None
                and contents(client) == source_contents(db)
            )
        finally:
            client.close()
            server.close()

    def test_slow_reader_eviction_leaves_mirror_byte_identical(self):
        """The eviction path under a fault plan: a slow reader trips the
        queue bound, the client reconnects (second connection runs
        clean), and the mirror converges to the source bytes."""
        db, server, client, transports = faulted_stack(
            [FaultPlan()], heartbeat=None, max_queue_frames=8
        )
        try:
            client.mirror("pts")
            endpoint = server._endpoints[(client.host, client.port)]
            conn = endpoint.conn

            class Stub:
                def __init__(self, real):
                    self._real = real

                def send(self, data):
                    raise BlockingIOError("stubbed full buffer")

                def __getattr__(self, name):
                    return getattr(self._real, name)

            conn.sock = Stub(conn.sock)
            for i in range(20):
                db.insert("pts", {"id": i, "x": float(i)})
            assert server.evictions == 1
            assert wait_until(lambda: client.reconnects >= 1)
            assert wait_until(
                lambda: client.refresh("pts") is not None
                and contents(client) == source_contents(db)
            )
            assert contents(client) == [(i, float(i)) for i in range(20)]
        finally:
            client.close()
            server.close()

    def test_rate_based_faults_converge_under_load(self):
        """Seeded probabilistic drops/duplicates through the event loop:
        deterministic schedule, eventual convergence."""
        db, server, client, transports = faulted_stack(
            [FaultPlan(drop_rate=0.2, duplicate_rate=0.2)], heartbeat=None
        )
        try:
            client.mirror("pts")
            for i in range(30):
                db.insert("pts", {"id": i, "x": float(i)})
            assert transports[0].dropped >= 1
            assert transports[0].duplicated >= 1
            # One clean closing NOTIFY guarantees a fresh refresh trigger.
            db.insert("pts", {"id": 1000, "x": 0.5})
            assert wait_until(
                lambda: client.refresh("pts") is not None
                and contents(client) == source_contents(db)
            )
        finally:
            client.close()
            server.close()
