"""Wire protocol framing and handshake."""

import socket
import threading

import pytest

from repro.errors import ProtocolError
from repro.sync import protocol


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = protocol.notify("t", 7, "insert")
        assert protocol.decode(protocol.encode(message).strip()) == message

    def test_decode_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"\xff\xfe")
        with pytest.raises(ProtocolError):
            protocol.decode(b"[1, 2]")
        with pytest.raises(ProtocolError):
            protocol.decode(b'{"no_type": 1}')

    def test_oversized_message_rejected(self):
        with pytest.raises(ProtocolError, match="too large"):
            protocol.encode({"type": "X", "data": "a" * protocol.MAX_MESSAGE_BYTES})

    def test_message_constructors(self):
        assert protocol.hello()["type"] == protocol.HELLO
        assert protocol.reply()["magic"] == protocol.MAGIC
        notify = protocol.notify("tbl", 3, "delete")
        assert (notify["table"], notify["seq_no"], notify["op"]) == ("tbl", 3, "delete")
        assert protocol.disconnect()["type"] == protocol.DISCONNECT


def socket_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    port = server.getsockname()[1]
    client = socket.create_connection(("127.0.0.1", port))
    accepted, _ = server.accept()
    server.close()
    return client, accepted


class TestMessageStream:
    def test_send_receive(self):
        a, b = socket_pair()
        stream_a = protocol.MessageStream(a)
        stream_b = protocol.MessageStream(b)
        stream_a.send(protocol.notify("t", 1, "insert"))
        stream_a.send(protocol.notify("t", 2, "insert"))
        first = stream_b.receive(timeout=2)
        second = stream_b.receive(timeout=2)
        assert first["seq_no"] == 1
        assert second["seq_no"] == 2
        stream_a.close()
        stream_b.close()

    def test_receive_after_close_raises(self):
        a, b = socket_pair()
        stream_a = protocol.MessageStream(a)
        stream_b = protocol.MessageStream(b)
        stream_a.close()
        with pytest.raises(ProtocolError, match="closed"):
            stream_b.receive(timeout=2)
        stream_b.close()

    def test_timeout(self):
        a, b = socket_pair()
        stream_b = protocol.MessageStream(b)
        with pytest.raises(ProtocolError, match="timed out"):
            stream_b.receive(timeout=0.05)
        a.close()
        stream_b.close()


class TestHandshake:
    def test_successful_handshake(self):
        a, b = socket_pair()
        stream_client = protocol.MessageStream(a)  # visualization host
        stream_server = protocol.MessageStream(b)  # DBMS side
        errors = []

        def server_side():
            try:
                protocol.server_handshake(stream_server, timeout=2)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=server_side)
        thread.start()
        protocol.client_handshake(stream_client, timeout=2)
        thread.join()
        assert not errors
        stream_client.close()
        stream_server.close()

    def test_bad_magic_rejected(self):
        a, b = socket_pair()
        stream_a = protocol.MessageStream(a)
        stream_b = protocol.MessageStream(b)
        stream_a.send({"type": protocol.HELLO, "magic": "wrong"})
        with pytest.raises(ProtocolError, match="bad handshake"):
            protocol.server_handshake(stream_b, timeout=2)
        stream_a.close()
        stream_b.close()

    def test_wrong_message_type_rejected(self):
        a, b = socket_pair()
        stream_a = protocol.MessageStream(a)
        stream_b = protocol.MessageStream(b)
        stream_a.send(protocol.notify("t", 1, "insert"))
        with pytest.raises(ProtocolError, match="bad handshake"):
            protocol.server_handshake(stream_b, timeout=2)
        stream_a.close()
        stream_b.close()
