"""Color parsing, interpolation, and scales."""

import pytest

from repro.errors import VisError
from repro.vis import (
    CATEGORICAL_10,
    DivergingScale,
    SequentialScale,
    categorical,
    darken,
    lerp,
    lighten,
)
from repro.vis.color import parse_hex, to_hex


class TestParsing:
    def test_six_digit(self):
        assert parse_hex("#ff0080") == (255, 0, 128)

    def test_three_digit(self):
        assert parse_hex("#f08") == (255, 0, 136)

    def test_round_trip(self):
        assert to_hex(parse_hex("#123456")) == "#123456"

    def test_clamping(self):
        assert to_hex((300, -5, 128.6)) == "#ff0081"

    def test_errors(self):
        for bad in ("123456", "#12", "#12345g"):
            with pytest.raises(VisError):
                parse_hex(bad)


class TestInterpolation:
    def test_endpoints(self):
        assert lerp("#000000", "#ffffff", 0.0) == "#000000"
        assert lerp("#000000", "#ffffff", 1.0) == "#ffffff"

    def test_midpoint(self):
        assert lerp("#000000", "#ffffff", 0.5) == "#808080"

    def test_t_clamped(self):
        assert lerp("#000000", "#ffffff", 2.0) == "#ffffff"
        assert lerp("#000000", "#ffffff", -1.0) == "#000000"

    def test_darken_lighten(self):
        assert darken("#808080", 1.0) == "#000000"
        assert lighten("#808080", 1.0) == "#ffffff"
        assert darken("#808080", 0.0) == "#808080"


class TestScales:
    def test_sequential_shades(self):
        scale = SequentialScale((0, 100), low="#ffffff", high="#000000")
        assert scale(0) == "#ffffff"
        assert scale(100) == "#000000"
        assert scale(50) == "#808080"

    def test_sequential_degenerate_domain(self):
        scale = SequentialScale((5, 5), low="#ffffff", high="#000000")
        assert scale(5) == "#808080"

    def test_diverging(self):
        scale = DivergingScale((-1, 0, 1), low="#ff0000", mid="#ffffff", high="#0000ff")
        assert scale(-1) == "#ff0000"
        assert scale(0) == "#ffffff"
        assert scale(1) == "#0000ff"

    def test_diverging_unordered_domain(self):
        with pytest.raises(VisError):
            DivergingScale((1, 0, -1))

    def test_diverging_degenerate_halves(self):
        scale = DivergingScale((0, 0, 1))
        assert scale(0) == scale.mid or scale(0) == "#f7f7f7"


class TestCategorical:
    def test_cycles(self):
        assert categorical(0) == CATEGORICAL_10[0]
        assert categorical(10) == CATEGORICAL_10[0]
        assert categorical(3) == CATEGORICAL_10[3]

    def test_custom_palette(self):
        assert categorical(1, ["#111111", "#222222"]) == "#222222"
