"""LinLog and Fruchterman-Reingold layouts: convergence, incrementality."""

import math

import pytest

from repro.vis import FruchtermanReingold, Graph, LinLogLayout


def two_cliques(k=6, bridge=True):
    """Two k-cliques joined by one bridge edge -- the canonical cluster
    separation test for LinLog."""
    g = Graph()
    for i in range(k):
        for j in range(i + 1, k):
            g.add_edge(i, j)
            g.add_edge(100 + i, 100 + j)
    if bridge:
        g.add_edge(0, 100)
    return g


def centroid(positions, nodes):
    xs = [positions[n][0] for n in nodes]
    ys = [positions[n][1] for n in nodes]
    return (sum(xs) / len(xs), sum(ys) / len(ys))


def dist(a, b):
    return math.hypot(a[0] - b[0], a[1] - b[1])


class TestLinLogInitial:
    def test_converges(self):
        layout = LinLogLayout(two_cliques(), seed=1)
        result = layout.run(max_iterations=500)
        assert result.converged
        assert result.iterations < 500
        assert len(result.positions) == 12

    def test_energy_decreases(self):
        layout = LinLogLayout(two_cliques(), seed=1)
        result = layout.run(max_iterations=300)
        trace = result.energy_trace
        assert trace[-1] < trace[0]

    def test_separates_clusters(self):
        g = two_cliques()
        layout = LinLogLayout(g, seed=2)
        result = layout.run(max_iterations=500)
        a = centroid(result.positions, range(6))
        b = centroid(result.positions, range(100, 106))
        inter = dist(a, b)
        # Intra-cluster spread is much smaller than the separation.
        intra = max(
            dist(result.positions[i], a) for i in range(6)
        )
        assert inter > 1.5 * intra

    def test_deterministic_given_seed(self):
        r1 = LinLogLayout(two_cliques(), seed=7).run(max_iterations=50)
        r2 = LinLogLayout(two_cliques(), seed=7).run(max_iterations=50)
        assert r1.positions == r2.positions

    def test_empty_graph(self):
        result = LinLogLayout(Graph()).run()
        assert result.positions == {}
        assert result.converged

    def test_single_node(self):
        g = Graph()
        g.add_node("solo")
        result = LinLogLayout(g).run(max_iterations=10)
        assert "solo" in result.positions

    def test_iteration_callback_streams_positions(self):
        snapshots = []
        layout = LinLogLayout(two_cliques(), seed=3)
        layout.run(
            max_iterations=20,
            on_iteration=lambda it, pos, energy: snapshots.append((it, len(pos))),
        )
        assert len(snapshots) == layout.total_iterations
        assert all(count == 12 for _it, count in snapshots)
        assert [it for it, _ in snapshots] == list(range(1, len(snapshots) + 1))


class TestLinLogIncremental:
    def test_incremental_much_faster_than_initial(self):
        g = two_cliques(k=8)
        layout = LinLogLayout(g, seed=4)
        initial = layout.run(max_iterations=1000)
        assert initial.converged
        # Add a handful of new nodes attached to existing ones.
        for new, anchor in ((200, 0), (201, 1), (202, 100)):
            g.add_edge(new, anchor)
        incremental = layout.update(
            added_nodes=[200, 201, 202], max_iterations=1000
        )
        assert incremental.converged
        assert incremental.iterations < initial.iterations / 2

    def test_new_nodes_placed_near_neighbors(self):
        g = two_cliques()
        layout = LinLogLayout(g, seed=5)
        layout.run(max_iterations=300)
        anchor_pos = layout.positions[0]
        g.add_edge(300, 0)
        layout.place_near_neighbors([300])
        assert dist(layout.positions[300], anchor_pos) < 0.2

    def test_disconnected_new_node_gets_random_position(self):
        g = two_cliques()
        layout = LinLogLayout(g, seed=6)
        layout.run(max_iterations=100)
        g.add_node(999)
        layout.place_near_neighbors([999])
        assert 999 in layout.positions

    def test_removed_nodes_dropped(self):
        g = two_cliques()
        layout = LinLogLayout(g, seed=6)
        layout.run(max_iterations=100)
        g.remove_node(0)
        result = layout.update(removed_nodes=[0], max_iterations=100)
        assert 0 not in result.positions
        assert len(result.positions) == 11

    def test_old_layout_shape_mostly_stable(self):
        # Absolute positions may undergo a rigid motion (the energy is
        # rotation/translation invariant), so stability is judged on the
        # *shape*: pairwise distances between old nodes barely change.
        import itertools

        g = two_cliques(k=8)
        layout = LinLogLayout(g, seed=8)
        initial = layout.run(max_iterations=1000)
        before = dict(initial.positions)
        g.add_edge(500, 0)
        result = layout.update(added_nodes=[500], max_iterations=200)
        changes = []
        for a, b in itertools.combinations(before, 2):
            old = dist(before[a], before[b])
            new = dist(result.positions[a], result.positions[b])
            changes.append(abs(new - old) / max(old, 1e-9))
        changes.sort()
        assert changes[len(changes) // 2] < 0.15  # median relative change

    def test_energy_method_matches_run(self):
        layout = LinLogLayout(two_cliques(), seed=9)
        result = layout.run(max_iterations=100)
        assert layout.energy() == pytest.approx(result.energy, rel=0.1)


class TestFruchtermanReingold:
    def test_runs_and_places_all_nodes(self):
        fr = FruchtermanReingold(two_cliques(), seed=1)
        result = fr.run(max_iterations=80)
        assert len(result.positions) == 12
        assert result.iterations <= 80

    def test_connected_nodes_closer_than_average(self):
        g = two_cliques()
        fr = FruchtermanReingold(g, seed=2)
        result = fr.run(max_iterations=150)
        positions = result.positions
        edge_dists = [
            dist(positions[u], positions[v]) for u, v, _w in g.edges()
            if (u, v) != (0, 100) and (v, u) != (0, 100)
        ]
        nodes = list(positions)
        import itertools

        all_dists = [
            dist(positions[a], positions[b])
            for a, b in itertools.combinations(nodes, 2)
        ]
        assert sum(edge_dists) / len(edge_dists) < sum(all_dists) / len(all_dists)

    def test_empty_graph(self):
        result = FruchtermanReingold(Graph()).run()
        assert result.positions == {}

    def test_deterministic(self):
        r1 = FruchtermanReingold(two_cliques(), seed=3).run(max_iterations=30)
        r2 = FruchtermanReingold(two_cliques(), seed=3).run(max_iterations=30)
        assert r1.positions == r2.positions
