"""VisualAttributes store, components, displays, scatter, multi-view."""

import pytest

from repro.core import datamodel
from repro.db import Database
from repro.errors import VisError
from repro.vis import (
    Display,
    ScatterPlot,
    ViewManager,
    VisualAttributesStore,
    VisualItem,
    VisualizationManager,
)


@pytest.fixture
def db():
    return Database()


@pytest.fixture
def store(db):
    return VisualAttributesStore(db)


class TestVisualAttributesStore:
    def test_write_inserts_then_updates(self, db, store):
        items = [VisualItem(obj_id="a", x=1.0, y=2.0, color="#111111")]
        store.write(1, items)
        rows = db.query(f"SELECT * FROM {datamodel.T_VISUAL_ATTRIBUTES}")
        assert len(rows) == 1
        assert rows[0]["x"] == 1.0
        store.write(1, [VisualItem(obj_id="a", x=9.0, y=2.0)])
        rows = db.query(f"SELECT * FROM {datamodel.T_VISUAL_ATTRIBUTES}")
        assert len(rows) == 1  # updated, not duplicated
        assert rows[0]["x"] == 9.0

    def test_batch_insert_is_one_statement(self, db, store):
        fired = []
        db.on(
            datamodel.T_VISUAL_ATTRIBUTES,
            "insert",
            lambda ch: fired.append(len(ch.inserted)),
        )
        store.write(1, [VisualItem(obj_id=i, x=0.0, y=0.0) for i in range(10)])
        assert fired == [10]

    def test_components_isolated(self, db, store):
        store.write(1, [VisualItem(obj_id="a", x=1.0)])
        store.write(2, [VisualItem(obj_id="a", x=2.0)])
        assert store.get(1, "a").x == 1.0
        assert store.get(2, "a").x == 2.0
        assert store.get(3, "a") is None

    def test_write_positions_fast_path(self, db, store):
        store.write(1, [VisualItem(obj_id="a", x=0.0, y=0.0, color="#abcdef")])
        store.write_positions(1, {"a": (5.0, 6.0), "b": (7.0, 8.0)})
        a = store.get(1, "a")
        assert (a.x, a.y) == (5.0, 6.0)
        assert a.color == "#abcdef"  # untouched by the fast path
        assert store.get(1, "b") is not None

    def test_selection_flip(self, db, store):
        store.write(1, [VisualItem(obj_id=i) for i in range(3)])
        assert store.select(1, [0, 2]) == 2
        selected = [i.obj_id for i in store.read(1) if i.selected]
        assert sorted(selected) == [0, 2]
        store.select(1, [0], selected=False)
        selected = [i.obj_id for i in store.read(1) if i.selected]
        assert selected == [2]

    def test_remove_and_clear(self, db, store):
        store.write(1, [VisualItem(obj_id=i) for i in range(4)])
        assert store.remove(1, [0, 1]) == 2
        assert len(store.read(1)) == 2
        assert store.clear(1) == 2
        assert store.read(1) == []

    def test_empty_write(self, store):
        assert store.write(1, []) == 0


class TestVisualizationManager:
    def test_create_and_lookup(self, db):
        manager = VisualizationManager(db)
        vis = manager.create_visualization("history")
        comp = manager.create_component(vis, "scatter", label="by year")
        components = manager.components_of(vis)
        assert components[0]["id"] == comp
        assert components[0]["type"] == "scatter"
        assert manager.visualization_named("history") == vis
        assert manager.visualization_named("ghost") is None

    def test_component_needs_visualization(self, db):
        manager = VisualizationManager(db)
        with pytest.raises(VisError):
            manager.create_component(999, "scatter")

    def test_selected_objects_query(self, db):
        manager = VisualizationManager(db)
        vis = manager.create_visualization("v")
        comp = manager.create_component(vis, "scatter")
        manager.write_items(comp, [VisualItem(obj_id="a"), VisualItem(obj_id="b")])
        manager.attributes.select(comp, ["b"])
        assert manager.selected_objects(comp) == ["b"]


class TestDisplay:
    def test_apply_rows_counts(self):
        display = Display()
        rows = [
            {"obj_id": 1, "x": 0.0, "y": 0.0, "width": None, "height": None,
             "color": None, "label": None, "selected": False},
        ]
        display.apply_rows(rows)
        assert display.inserted == 1
        display.apply_rows(rows)
        assert display.updated == 1
        assert len(display) == 1

    def test_remove(self):
        display = Display()
        display.apply_items([VisualItem(obj_id=1), VisualItem(obj_id=2)])
        assert display.remove_objects([1, 99]) == 1
        assert display.removed == 1

    def test_refresh_counter(self):
        display = Display()
        assert display.refresh() == 1
        assert display.refresh() == 2

    def test_bounds(self):
        display = Display()
        display.apply_items(
            [VisualItem(obj_id=1, x=-5.0, y=2.0), VisualItem(obj_id=2, x=5.0, y=8.0)]
        )
        assert display.bounds() == (-5.0, 2.0, 5.0, 8.0)
        assert Display().bounds() == (0.0, 0.0, 1.0, 1.0)

    def test_render_svg(self):
        display = Display(width=100, height=100)
        display.apply_items(
            [
                VisualItem(obj_id=1, x=0.0, y=0.0, color="#ff0000", label="<a&b>"),
                VisualItem(obj_id=2, x=1.0, y=1.0, width=10.0, height=5.0),
            ]
        )
        svg = display.render_svg()
        assert svg.startswith("<svg")
        assert "circle" in svg
        assert "rect" in svg
        assert "&lt;a&amp;b&gt;" in svg  # escaped


class TestScatterPlot:
    ROWS = [
        {"id": 1, "year": 2005, "pubs": 3, "team": "a"},
        {"id": 2, "year": 2010, "pubs": 9, "team": "b"},
        {"id": 3, "year": 2007, "pubs": None, "team": "a"},
    ]

    def test_positions_follow_scales(self):
        plot = ScatterPlot(x="year", y="pubs", key="id", width=100, height=100)
        items = {i.obj_id: i for i in plot.compute(self.ROWS)}
        assert items[1].x == 0.0  # min year at left
        assert items[2].x == 100.0
        # Higher pubs -> smaller y (screen coordinates).
        assert items[2].y < items[1].y
        assert 3 not in items  # null y dropped

    def test_categorical_colors(self):
        plot = ScatterPlot(x="year", y="pubs", key="id", color_by="team")
        items = plot.compute(self.ROWS)
        colors = {i.obj_id: i.color for i in items}
        assert colors[1] != colors[2]

    def test_sequential_colors(self):
        plot = ScatterPlot(
            x="year", y="pubs", key="id", color_by="pubs", color_scale="sequential"
        )
        items = plot.compute(self.ROWS[:2])
        assert all(i.color.startswith("#") for i in items)

    def test_size_scale(self):
        plot = ScatterPlot(x="year", y="pubs", key="id", size="pubs")
        items = {i.obj_id: i for i in plot.compute(self.ROWS[:2])}
        assert items[2].width > items[1].width

    def test_empty_rows(self):
        plot = ScatterPlot(x="year", y="pubs", key="id")
        assert plot.compute([]) == []

    def test_bad_color_scale(self):
        with pytest.raises(VisError):
            ScatterPlot(x="a", y="b", key="id", color_scale="rainbow")


class TestViewManager:
    def test_compute_once_fan_out(self, db):
        manager = ViewManager(db)
        vis = manager.visualizations.create_visualization("shared")
        comp = manager.visualizations.create_component(vis, "scatter")
        manager.publish(comp, [VisualItem(obj_id=i, x=float(i), y=0.0) for i in range(10)])
        wall = manager.add_view("wall", comp)
        phone = manager.add_view("phone", comp, fraction=0.4)
        assert len(wall.display) == 10
        assert len(phone.display) < 10

    def test_update_propagates_to_all_views(self, db):
        manager = ViewManager(db)
        vis = manager.visualizations.create_visualization("shared")
        comp = manager.visualizations.create_component(vis, "scatter")
        manager.publish(comp, [VisualItem(obj_id=1, x=0.0, y=0.0)])
        view_a = manager.add_view("a", comp)
        view_b = manager.add_view("b", comp)
        manager.publish_positions(comp, {1: (9.0, 9.0), 2: (1.0, 1.0)})
        applied = manager.refresh_all()
        assert applied == {"a": 2, "b": 2}
        assert view_a.display.items[1].x == 9.0
        assert view_b.display.items[2].x == 1.0

    def test_views_filtered_by_component(self, db):
        manager = ViewManager(db)
        vis = manager.visualizations.create_visualization("shared")
        comp1 = manager.visualizations.create_component(vis, "scatter")
        comp2 = manager.visualizations.create_component(vis, "map")
        manager.publish(comp1, [VisualItem(obj_id=1)])
        manager.publish(comp2, [VisualItem(obj_id=2)])
        view = manager.add_view("only1", comp1)
        assert list(view.display.items) == [1]

    def test_close(self, db):
        manager = ViewManager(db)
        vis = manager.visualizations.create_visualization("shared")
        comp = manager.visualizations.create_component(vis, "scatter")
        manager.add_view("v", comp)
        manager.close()
        assert manager.views == []


class TestDisplayTransactions:
    def test_transaction_commits_one_frame(self):
        display = Display()
        with display.transaction():
            display.apply_items([VisualItem(obj_id=i) for i in range(10)])
            for _ in range(10):
                display.refresh()  # each batch item asks for a redraw
        assert display.refreshes == 1
        assert display.transactions == 1

    def test_transaction_without_refresh_request_skips_frame(self):
        display = Display()
        with display.transaction():
            display.apply_items([VisualItem(obj_id=1)])
        assert display.refreshes == 0
        assert display.transactions == 1

    def test_nested_transactions_commit_once(self):
        display = Display()
        with display.transaction():
            with display.transaction():
                display.refresh()
            display.refresh()
        assert display.refreshes == 1
        assert display.transactions == 1

    def test_refresh_outside_transaction_unchanged(self):
        display = Display()
        assert display.refresh() == 1
        assert display.refresh() == 2

    def test_apply_snapshot_replaces_in_one_frame(self):
        display = Display()
        display.apply_items([VisualItem(obj_id="stale")])
        rows = [
            {"obj_id": i, "x": float(i), "y": 0.0, "width": None, "height": None,
             "color": None, "label": None, "selected": False}
            for i in range(5)
        ]
        assert display.apply_snapshot(rows) == 5
        assert display.refreshes == 1
        assert "stale" not in display.items
        assert len(display) == 5
