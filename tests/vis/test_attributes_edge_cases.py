"""VisualAttributesStore.select/remove edge cases: unknown and duplicate
obj_ids, plus the selected_ids helper brushing builds on."""

from repro.db import Database
from repro.vis.attributes import VisualAttributesStore, VisualItem


def make_store(n=4, component_id=1):
    store = VisualAttributesStore(Database("vis"))
    store.write(component_id, [VisualItem(obj_id=i, x=float(i)) for i in range(n)])
    return store


class TestSelectEdgeCases:
    def test_unknown_ids_do_not_match(self):
        store = make_store()
        assert store.select(1, [99, 100]) == 0
        assert store.selected_ids(1) == []

    def test_mixed_known_and_unknown(self):
        store = make_store()
        assert store.select(1, [0, 99, 2]) == 2
        assert store.selected_ids(1) == [0, 2]

    def test_duplicate_ids_count_once(self):
        store = make_store()
        assert store.select(1, [3, 3, 3]) == 1
        assert store.selected_ids(1) == [3]

    def test_wrong_component_does_not_match(self):
        store = make_store()
        assert store.select(2, [0, 1]) == 0
        assert store.selected_ids(1) == []

    def test_deselect(self):
        store = make_store()
        store.select(1, [0, 1, 2])
        assert store.select(1, [1, 1, 99], selected=False) == 1
        assert store.selected_ids(1) == [0, 2]


class TestRemoveEdgeCases:
    def test_unknown_ids_remove_nothing(self):
        store = make_store()
        assert store.remove(1, [42]) == 0
        assert len(store.read(1)) == 4

    def test_duplicate_ids_remove_once(self):
        store = make_store()
        assert store.remove(1, [2, 2]) == 1
        assert [i.obj_id for i in store.read(1)] == [0, 1, 3]
        # Removing again is a no-op, and the cache stays consistent.
        assert store.remove(1, [2]) == 0
        assert store.get(1, 2) is None

    def test_remove_then_rewrite_same_id(self):
        store = make_store()
        store.remove(1, [1])
        store.write(1, [VisualItem(obj_id=1, x=42.0)])
        assert store.get(1, 1).x == 42.0
