"""Scales: linear, band, ordinal, sqrt."""

import pytest

from repro.errors import VisError
from repro.vis import BandScale, LinearScale, OrdinalScale, SqrtScale


class TestLinearScale:
    def test_maps_endpoints(self):
        scale = LinearScale((0, 10), (0, 100))
        assert scale(0) == 0
        assert scale(10) == 100
        assert scale(5) == 50

    def test_extrapolates_without_clamp(self):
        scale = LinearScale((0, 10), (0, 100))
        assert scale(20) == 200

    def test_clamp(self):
        scale = LinearScale((0, 10), (0, 100), clamp=True)
        assert scale(20) == 100
        assert scale(-5) == 0

    def test_degenerate_domain(self):
        scale = LinearScale((5, 5), (0, 100))
        assert scale(5) == 50

    def test_inverted_range(self):
        scale = LinearScale((0, 10), (100, 0))
        assert scale(0) == 100
        assert scale(10) == 0

    def test_invert(self):
        scale = LinearScale((0, 10), (0, 100))
        assert scale.invert(50) == 5
        degenerate = LinearScale((0, 10), (7, 7))
        assert degenerate.invert(7) == 5

    def test_fit(self):
        scale = LinearScale.fit([3, None, 9, 6], (0, 1))
        assert scale.domain == (3, 9)
        empty = LinearScale.fit([], (0, 1))
        assert empty.domain == (0.0, 1.0)


class TestBandScale:
    def test_bands_cover_range(self):
        scale = BandScale(["a", "b", "c"], (0, 300), padding=0.0)
        assert scale("a") == 0
        assert scale("b") == 100
        assert scale.bandwidth == 100

    def test_padding_shrinks_bands(self):
        scale = BandScale(["a", "b"], (0, 100), padding=0.5)
        assert scale.bandwidth == 25
        assert scale.center("a") == pytest.approx(25.0)

    def test_unknown_category(self):
        scale = BandScale(["a"], (0, 1))
        with pytest.raises(VisError):
            scale("zzz")

    def test_validation(self):
        with pytest.raises(VisError):
            BandScale([], (0, 1))
        with pytest.raises(VisError):
            BandScale(["a", "a"], (0, 1))
        with pytest.raises(VisError):
            BandScale(["a"], (0, 1), padding=1.5)


class TestOrdinalScale:
    def test_assignment_cycles(self):
        scale = OrdinalScale(["red", "green"])
        assert scale("x") == "red"
        assert scale("y") == "green"
        assert scale("z") == "red"  # cycles
        assert scale("x") == "red"  # stable

    def test_known_categories(self):
        scale = OrdinalScale(["a"])
        scale("one")
        scale("two")
        assert scale.known_categories() == ["one", "two"]

    def test_empty_range_rejected(self):
        with pytest.raises(VisError):
            OrdinalScale([])


class TestSqrtScale:
    def test_area_scaling(self):
        scale = SqrtScale((0, 100), (0, 10))
        assert scale(0) == 0
        assert scale(100) == 10
        assert scale(25) == 5  # sqrt(25)/sqrt(100) * 10

    def test_negative_rejected(self):
        with pytest.raises(VisError):
            SqrtScale((-1, 100), (0, 10))
        scale = SqrtScale((0, 100), (0, 10))
        with pytest.raises(VisError):
            scale(-4)
