"""Graph structure used by the layout algorithms."""

import pytest

from repro.errors import LayoutError
from repro.vis import Graph


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        assert 1 in g and 2 in g
        assert len(g) == 2
        assert g.edge_count == 1

    def test_weights(self):
        g = Graph()
        g.add_edge(1, 2, weight=3.5)
        assert g.neighbors(1) == {2: 3.5}
        assert g.weighted_degree(1) == 3.5

    def test_reinsert_edge_updates_weight(self):
        g = Graph()
        g.add_edge(1, 2, weight=1.0)
        g.add_edge(1, 2, weight=2.0)
        assert g.edge_count == 1
        assert g.neighbors(2)[1] == 2.0

    def test_self_loop_rejected(self):
        with pytest.raises(LayoutError):
            Graph().add_edge(1, 1)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(LayoutError):
            Graph().add_edge(1, 2, weight=0)

    def test_from_edges(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        assert len(g) == 3
        assert g.edge_count == 2


class TestRemoval:
    def test_remove_edge(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert g.edge_count == 1
        assert g.degree(1) == 0
        g.remove_edge(1, 2)  # idempotent

    def test_remove_node_cleans_adjacency(self):
        g = Graph.from_edges([(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert 2 not in g
        assert g.edge_count == 1
        assert g.neighbors(1) == {3: 1.0}
        g.remove_node(99)  # unknown: no error


class TestQueries:
    def test_edges_iterated_once(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        edges = list(g.edges())
        assert len(edges) == 2
        pairs = {frozenset((u, v)) for u, v, _w in edges}
        assert pairs == {frozenset((1, 2)), frozenset((2, 3))}

    def test_degree(self):
        g = Graph.from_edges([(1, 2), (1, 3)])
        assert g.degree(1) == 2
        assert g.degree(99) == 0

    def test_neighbors_unknown_node(self):
        with pytest.raises(LayoutError):
            Graph().neighbors(1)

    def test_copy_independent(self):
        g = Graph.from_edges([(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.edge_count == 1
        assert clone.edge_count == 2

    def test_connected_components(self):
        g = Graph.from_edges([(1, 2), (2, 3), (10, 11)])
        g.add_node(99)
        components = sorted(g.connected_components(), key=len, reverse=True)
        assert {frozenset(c) for c in components} == {
            frozenset({1, 2, 3}),
            frozenset({10, 11}),
            frozenset({99}),
        }
