"""Hierarchical treemap: nesting, containment, padding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.vis import squarify_nested

TREE = {
    "west": {"CA": 39.0, "WA": 8.0, "OR": 4.0},
    "south": {"TX": 30.0, "FL": 22.0},
    "northeast": {"NY": 19.0},
}


class TestStructure:
    def test_every_node_gets_a_cell(self):
        cells = squarify_nested(TREE, 0, 0, 100, 60)
        paths = {c.path for c in cells}
        assert ("west",) in paths
        assert ("west", "CA") in paths
        assert ("northeast", "NY") in paths
        assert len(cells) == 3 + 6  # 3 groups + 6 leaves

    def test_depths_and_leaf_flags(self):
        cells = squarify_nested(TREE, 0, 0, 100, 60)
        by_path = {c.path: c for c in cells}
        assert by_path[("west",)].depth == 0
        assert not by_path[("west",)].is_leaf
        assert by_path[("west", "CA")].depth == 1
        assert by_path[("west", "CA")].is_leaf

    def test_parents_before_children(self):
        cells = squarify_nested(TREE, 0, 0, 100, 60)
        seen = set()
        for cell in cells:
            if len(cell.path) > 1:
                assert cell.path[:-1] in seen
            seen.add(cell.path)

    def test_group_value_is_subtree_total(self):
        cells = squarify_nested(TREE, 0, 0, 100, 60)
        west = next(c for c in cells if c.path == ("west",))
        assert west.value == pytest.approx(51.0)

    def test_key_property(self):
        cells = squarify_nested(TREE, 0, 0, 100, 60)
        leaf = next(c for c in cells if c.path == ("west", "CA"))
        assert leaf.key == "CA"


class TestGeometry:
    def test_children_inside_parent(self):
        cells = squarify_nested(TREE, 0, 0, 100, 60)
        by_path = {c.path: c for c in cells}
        for cell in cells:
            if len(cell.path) <= 1:
                continue
            parent = by_path[cell.path[:-1]]
            eps = 1e-6
            assert cell.x >= parent.x - eps
            assert cell.y >= parent.y - eps
            assert cell.x + cell.width <= parent.x + parent.width + eps
            assert cell.y + cell.height <= parent.y + parent.height + eps

    def test_padding_insets_children(self):
        cells = squarify_nested(TREE, 0, 0, 100, 60, padding=2.0)
        by_path = {c.path: c for c in cells}
        west = by_path[("west",)]
        ca = by_path[("west", "CA")]
        assert ca.x >= west.x + 2.0 - 1e-9
        assert ca.y >= west.y + 2.0 - 1e-9

    def test_leaf_areas_proportional_within_group(self):
        cells = squarify_nested(TREE, 0, 0, 100, 60)
        by_path = {c.path: c for c in cells}
        ca = by_path[("west", "CA")]
        wa = by_path[("west", "WA")]
        assert ca.area / wa.area == pytest.approx(39.0 / 8.0, rel=1e-6)

    def test_negative_padding_rejected(self):
        with pytest.raises(LayoutError):
            squarify_nested(TREE, 0, 0, 10, 10, padding=-1)

    def test_negative_leaf_rejected(self):
        with pytest.raises(LayoutError):
            squarify_nested({"a": {"b": -1}}, 0, 0, 10, 10)

    def test_tiny_parent_skips_children(self):
        # Parent smaller than 2*padding: children are dropped, no crash.
        tree = {"big": {"x": 100.0}, "tiny": {"y": 0.0001}}
        cells = squarify_nested(tree, 0, 0, 10, 10, padding=3.0)
        paths = {c.path for c in cells}
        assert ("tiny",) in paths
        assert ("tiny", "y") not in paths


leaf_trees = st.dictionaries(
    st.text(alphabet="abc", min_size=1, max_size=2),
    st.dictionaries(
        st.text(alphabet="xyz", min_size=1, max_size=2),
        st.floats(min_value=0.1, max_value=50),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=4,
)


@given(leaf_trees)
@settings(max_examples=50, deadline=None)
def test_group_cells_tile_whole_rectangle(tree):
    cells = squarify_nested(tree, 0, 0, 20, 12)
    groups = [c for c in cells if c.depth == 0]
    assert sum(c.area for c in groups) == pytest.approx(240.0, rel=1e-6)


@given(leaf_trees)
@settings(max_examples=50, deadline=None)
def test_leaves_tile_their_groups_without_padding(tree):
    cells = squarify_nested(tree, 0, 0, 20, 12)
    for group in (c for c in cells if not c.is_leaf):
        leaf_area = sum(
            c.area for c in cells if len(c.path) == 2 and c.path[0] == group.key
        )
        assert leaf_area == pytest.approx(group.area, rel=1e-6)
