"""Squarified treemap: area preservation, tiling, aspect quality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.vis import squarify, treemap_rows


class TestBasics:
    def test_single_item_fills_rect(self):
        (cell,) = squarify([("a", 5.0)], 0, 0, 10, 4)
        assert (cell.x, cell.y, cell.width, cell.height) == (0, 0, 10, 4)

    def test_areas_proportional_to_values(self):
        cells = squarify([("a", 3.0), ("b", 1.0)], 0, 0, 8, 4)
        by_key = {c.key: c for c in cells}
        assert by_key["a"].area == pytest.approx(24.0)
        assert by_key["b"].area == pytest.approx(8.0)

    def test_total_area_preserved(self):
        items = [(k, float(v)) for k, v in zip("abcdefg", (6, 6, 4, 3, 2, 2, 1))]
        cells = squarify(items, 0, 0, 6, 4)
        assert sum(c.area for c in cells) == pytest.approx(24.0)

    def test_classic_example_aspect_quality(self):
        # Bruls et al.'s worked example: aspect ratios stay small.
        items = [(k, float(v)) for k, v in zip("abcdefg", (6, 6, 4, 3, 2, 2, 1))]
        cells = squarify(items, 0, 0, 6, 4)
        assert max(c.aspect for c in cells) < 4.0

    def test_zero_values_get_empty_cells(self):
        cells = squarify([("a", 1.0), ("z", 0.0)], 0, 0, 4, 4)
        zero = next(c for c in cells if c.key == "z")
        assert zero.area == 0.0

    def test_all_zero(self):
        cells = squarify([("a", 0.0), ("b", 0.0)], 0, 0, 4, 4)
        assert all(c.area == 0 for c in cells)

    def test_negative_value_rejected(self):
        with pytest.raises(LayoutError):
            squarify([("a", -1.0)], 0, 0, 4, 4)

    def test_negative_extent_rejected(self):
        with pytest.raises(LayoutError):
            squarify([("a", 1.0)], 0, 0, -4, 4)

    def test_offset_origin(self):
        (cell,) = squarify([("a", 1.0)], 10, 20, 4, 4)
        assert (cell.x, cell.y) == (10, 20)


def rects_overlap(a, b):
    eps = 1e-9
    return not (
        a.x + a.width <= b.x + eps
        or b.x + b.width <= a.x + eps
        or a.y + a.height <= b.y + eps
        or b.y + b.height <= a.y + eps
    )


class TestTiling:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=15)
    )
    @settings(max_examples=50, deadline=None)
    def test_no_overlaps_and_inside_bounds(self, values):
        items = [(i, v) for i, v in enumerate(values)]
        cells = squarify(items, 0, 0, 10, 7)
        positive = [c for c in cells if c.area > 0]
        for cell in positive:
            assert cell.x >= -1e-9 and cell.y >= -1e-9
            assert cell.x + cell.width <= 10 + 1e-6
            assert cell.y + cell.height <= 7 + 1e-6
        for i, a in enumerate(positive):
            for b in positive[i + 1 :]:
                assert not rects_overlap(a, b), (a, b)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=15)
    )
    @settings(max_examples=50, deadline=None)
    def test_area_sums_to_rectangle(self, values):
        items = [(i, v) for i, v in enumerate(values)]
        cells = squarify(items, 0, 0, 10, 7)
        assert sum(c.area for c in cells) == pytest.approx(70.0, rel=1e-6)


class TestRowHelper:
    def test_treemap_rows(self):
        rows = [
            {"state": "CA", "pop": 39},
            {"state": "WY", "pop": 1},
            {"state": "NONE", "pop": None},
        ]
        cells = treemap_rows(rows, key="state", value="pop", width=10, height=4)
        by_key = {c.key: c for c in cells}
        assert by_key["CA"].area > by_key["WY"].area
        assert by_key["NONE"].area == 0.0
