"""End-to-end scenarios exercising the whole platform together."""


from repro import EdiFlow
from repro.apps import copub, elections, wikipedia
from repro.core import datamodel
from repro.sync import SyncClient
from repro.vis import LinLogLayout, VisualItem
from repro.workflow import (
    CallProcedure,
    ProcessDefinition,
    Procedure,
    RelationDecl,
    UpdatePropagation,
    seq,
)


class TestElectionNightEndToEnd:
    """The US-elections walkthrough of Section III-a, on the full stack:
    process + propagation + notification + multi-view displays."""

    def test_full_night(self):
        platform = EdiFlow()
        elections.install_schema(platform.database)
        platform.procedures.register(elections.AggregateVotes())
        treemap = elections.TreemapVotes()
        platform.procedures.register(treemap)
        platform.deploy(elections.build_process())

        # Two displays share the visual attributes (Figure 6).
        vis = platform.views.visualizations.create_visualization("night")
        comp = platform.views.visualizations.create_component(vis, "treemap")
        wall = platform.views.add_view("wall", comp)
        phone = platform.views.add_view("phone", comp, fraction=0.3)

        feed = elections.ReturnsFeed(seed=2008, total_minutes=12)
        batches = list(feed.batches())
        platform.database.insert_many(elections.T_VOTES, batches[0].rows)
        execution = platform.run("us-elections")

        for batch in batches[1:5]:
            platform.database.insert_many(elections.T_VOTES, batch.rows)
            platform.views.publish(comp, treemap.last_items)
            platform.views.refresh_all()

        assert len(wall.display) == len(elections.STATES)
        assert len(phone.display) < len(wall.display)
        # Aggregates consistent with raw votes.
        raw = platform.query(
            f"SELECT SUM(votes) AS s FROM {elections.T_VOTES}"
        )[0]["s"]
        agg = platform.query(
            f"SELECT SUM(dem) AS d, SUM(rep) AS r FROM {elections.T_AGG}"
        )[0]
        assert agg["d"] + agg["r"] == raw
        platform.close_execution(execution)
        platform.shutdown()


class TestWikipediaEndToEnd:
    """Section III-b: revision stream -> incremental metrics, with the
    analysis wrapped as an EdiFlow procedure reacting to new revisions."""

    def test_streaming_metrics_process(self):
        platform = EdiFlow()
        wikipedia.install_schema(platform.database)
        analyzer = wikipedia.WikipediaAnalyzer(platform.database)

        class AnalyzeRevisions(Procedure):
            name = "analyze_revisions"

            def run(self, env, inputs, read_write):
                for row in inputs[0]:
                    analyzer.process(
                        wikipedia.Revision(
                            revision_id=row["id"],
                            article_id=row["article_id"],
                            user_id=row["user_id"],
                            version=row["version"],
                            text=row["text"],
                        ),
                        store_revision=False,
                    )
                analyzer.flush_user_metrics()
                return []

            def on_delta_running(self, env, delta):
                for row in delta.inserted:
                    analyzer.process(
                        wikipedia.Revision(
                            revision_id=row["id"],
                            article_id=row["article_id"],
                            user_id=row["user_id"],
                            version=row["version"],
                            text=row["text"],
                        ),
                        store_revision=False,
                    )
                analyzer.flush_user_metrics()
                return None

        platform.procedures.register(AnalyzeRevisions())
        definition = ProcessDefinition(
            "wiki-metrics",
            seq(
                CallProcedure(
                    "analyze",
                    "analyze_revisions",
                    inputs=[wikipedia.T_REVISION],
                    detached=True,
                )
            ),
            relations=[RelationDecl(wikipedia.T_REVISION)],
            procedures=["analyze_revisions"],
            propagations=[
                UpdatePropagation(wikipedia.T_REVISION, "analyze", "ra")
            ],
        )
        platform.deploy(definition)

        stream = wikipedia.RevisionStream(n_articles=4, n_users=3, seed=13)
        warmup = stream.take(10)
        for rev in warmup:
            platform.database.insert(
                wikipedia.T_REVISION,
                {
                    "id": rev.revision_id,
                    "article_id": rev.article_id,
                    "user_id": rev.user_id,
                    "version": rev.version,
                    "text": rev.text,
                },
            )
        execution = platform.run("wiki-metrics")
        processed_at_start = analyzer.revisions_processed
        assert processed_at_start == 10

        # Live edits arrive; the running activity reacts per statement.
        for rev in stream.take(5):
            platform.database.insert(
                wikipedia.T_REVISION,
                {
                    "id": rev.revision_id,
                    "article_id": rev.article_id,
                    "user_id": rev.user_id,
                    "version": rev.version,
                    "text": rev.text,
                },
            )
        assert analyzer.revisions_processed == 15
        metrics = analyzer.article_metrics()
        assert sum(m["versions"] for m in metrics) == 15
        platform.close_execution(execution)
        platform.shutdown()


class TestCopublicationsEndToEnd:
    """Section VII deployment: layout machine + display machine over
    sockets, with incremental relayout on new publications."""

    def test_layout_pipeline_with_delta(self):
        platform = EdiFlow(use_sockets=False)
        generator = copub.CopublicationGenerator(n_authors=80, n_teams=8, seed=17)
        publications = copub.load_into_database(
            platform.database, generator, n_publications=60
        )
        graph = copub.build_graph(publications)
        layout = LinLogLayout(graph, seed=3)
        initial = layout.run(max_iterations=400)
        assert initial.converged

        vis = platform.views.visualizations.create_visualization("copub")
        comp = platform.views.visualizations.create_component(vis, "node-link")
        platform.views.publish_positions(comp, initial.positions)
        screen = platform.views.add_view("screen", comp)
        assert len(screen.display) == len(initial.positions)

        # New publications arrive: incremental relayout + display refresh.
        fresh = generator.take(5)
        before_nodes = set(graph.nodes())
        copub.build_graph(fresh, graph=graph)
        added = [n for n in graph.nodes() if n not in before_nodes]
        incremental = layout.update(added_nodes=added, max_iterations=400)
        assert incremental.iterations <= initial.iterations
        platform.views.publish_positions(comp, incremental.positions)
        platform.views.refresh_all()
        assert len(screen.display) == len(incremental.positions)
        platform.shutdown()


class TestSocketDeploymentEndToEnd:
    """Real loopback sockets between the DBMS and two 'machines'."""

    def test_two_machine_pipeline(self):
        platform = EdiFlow(use_sockets=True)
        platform.execute(
            "CREATE TABLE authors (id INTEGER PRIMARY KEY, name TEXT)"
        )
        machine1 = SyncClient(platform.server)
        machine2 = SyncClient(platform.server)
        try:
            nodes = machine1.mirror("authors")
            attrs = machine2.mirror(datamodel.T_VISUAL_ATTRIBUTES)
            platform.execute(
                "INSERT INTO authors (id, name) VALUES (1, 'a'), (2, 'b')"
            )
            assert machine1.wait_dirty("authors")
            machine1.refresh("authors")
            assert len(nodes) == 2
            # Machine 1 computes attributes; machine 2 sees them.
            platform.views.attributes.write(
                1, [VisualItem(obj_id=r["id"], x=1.0, y=2.0) for r in nodes]
            )
            assert machine2.wait_dirty(datamodel.T_VISUAL_ATTRIBUTES)
            machine2.refresh(datamodel.T_VISUAL_ATTRIBUTES)
            assert len(attrs) == 2
        finally:
            machine1.close()
            machine2.close()
            platform.shutdown()
