"""Soak test: sustained mixed load across every subsystem at once.

One platform runs a reactive process, a materialized view, a notification
mirror, and a multi-view visualization simultaneously while a random (but
seeded) workload of inserts/updates/deletes streams in.  After every
round, cross-subsystem invariants must hold exactly.
"""

import random

import pytest

from repro import EdiFlow
from repro.core import datamodel
from repro.db import AggSpec, col
from repro.ivm import AggregateView
from repro.sync import SyncClient
from repro.vis import VisualItem
from repro.workflow import (
    CallProcedure,
    ProcessDefinition,
    Procedure,
    RelationDecl,
    UpdatePropagation,
    seq,
)

ROUNDS = 30
OPS_PER_ROUND = 15


class RunningTotal(Procedure):
    """Maintains a Python-side total via delta handlers (checked against
    SQL and the IVM view every round)."""

    name = "running_total"

    def __init__(self):
        self.total = 0

    def run(self, env, inputs, read_write):
        self.total = sum(row["amount"] for row in inputs[0])
        return []

    def on_delta_running(self, env, delta):
        self.total += sum(r["amount"] for r in delta.inserted)
        self.total -= sum(r["amount"] for r in delta.deleted)
        return None


@pytest.fixture
def stack():
    platform = EdiFlow(use_sockets=False)
    platform.execute(
        "CREATE TABLE events (id INTEGER PRIMARY KEY, kind TEXT, amount INTEGER)"
    )
    proc = RunningTotal()
    platform.procedures.register(proc)
    platform.deploy(
        ProcessDefinition(
            "tracker",
            seq(CallProcedure("track", "running_total", inputs=["events"],
                              detached=True)),
            relations=[RelationDecl("events")],
            procedures=["running_total"],
            propagations=[UpdatePropagation("events", "track", "ra")],
        )
    )
    view = platform.materialized.register(
        AggregateView(
            "by_kind",
            "events",
            group_by=["kind"],
            aggregates=[
                AggSpec("SUM", col("amount"), "total"),
                AggSpec("COUNT", None, "n"),
            ],
        )
    )
    client = SyncClient(platform.server)
    mirror = client.mirror("events")
    vis = platform.views.visualizations.create_visualization("soak")
    comp = platform.views.visualizations.create_component(vis, "bars")
    screen = platform.views.add_view("screen", comp)
    execution = platform.run("tracker")
    yield platform, proc, view, client, mirror, comp, screen, execution
    platform.close_execution(execution)
    client.close()
    platform.shutdown()


def test_soak(stack):
    platform, proc, view, client, mirror, comp, screen, execution = stack
    rng = random.Random(99)
    next_id = 1
    live_ids: list[int] = []
    for round_no in range(ROUNDS):
        # -- mixed workload ------------------------------------------------
        batch = []
        for _ in range(OPS_PER_ROUND):
            action = rng.random()
            if action < 0.6 or not live_ids:
                batch.append(
                    {
                        "id": next_id,
                        "kind": rng.choice("abc"),
                        "amount": rng.randint(1, 100),
                    }
                )
                live_ids.append(next_id)
                next_id += 1
            elif action < 0.8:
                victim = rng.choice(live_ids)
                platform.database.update(
                    "events", {"amount": rng.randint(1, 100)}, col("id") == victim
                )
            else:
                victim = live_ids.pop(rng.randrange(len(live_ids)))
                platform.database.delete("events", col("id") == victim)
        if batch:
            platform.database.insert_many("events", batch)

        # -- cross-subsystem invariants -------------------------------------
        sql_total = platform.query(
            "SELECT SUM(amount) AS s, COUNT(*) AS n FROM events"
        )[0]
        sql_sum = sql_total["s"] or 0
        # 1. Delta-handler total == SQL total.
        assert proc.total == sql_sum, f"round {round_no}: handler drifted"
        # 2. IVM view == SQL group-by.
        grouped = {
            r["kind"]: (r["total"], r["n"])
            for r in platform.query(
                "SELECT kind, SUM(amount) AS total, COUNT(*) AS n "
                "FROM events GROUP BY kind"
            )
        }
        view_state = {r["kind"]: (r["total"], r["n"]) for r in view.rows()}
        assert view_state == grouped, f"round {round_no}: IVM drifted"
        # 3. Mirror == base table after refresh.
        client.refresh("events")
        assert len(mirror) == sql_total["n"]
        mirror_sum = sum(r["amount"] for r in mirror.all_rows())
        assert mirror_sum == sql_sum, f"round {round_no}: mirror drifted"
        # 4. Visualization fan-out consistent with the view.
        items = [
            VisualItem(obj_id=kind, x=float(i), y=float(total), label=kind)
            for i, (kind, (total, _n)) in enumerate(sorted(view_state.items()))
        ]
        platform.views.publish(comp, items)
        platform.views.refresh_all()
        shown = {i.obj_id: i.y for i in screen.display.items.values()}
        assert shown == {k: float(t) for k, (t, _n) in view_state.items()}
        # 5. Periodic purge never breaks anything.
        if round_no % 7 == 6:
            platform.server.purge_notifications()

    # Final: instance bookkeeping still sane.
    statuses = platform.query(
        f"SELECT status FROM {datamodel.T_PROCESS_INSTANCE}"
    )
    assert statuses[0]["status"] == datamodel.RUNNING
    history_ok = platform.query(
        f"SELECT COUNT(*) AS n FROM {datamodel.T_ACTIVITY_INSTANCE}"
    )[0]["n"]
    assert history_ok == 1
