"""Row/vector equivalence oracle, property-based.

The vectorized engine must be *byte-identical* to the row engine: same
rows, same dict key order, same float rounding, same NULL semantics,
same trigger firings.  These tests drive both engines over randomized
schemas, data, and queries and assert equality three ways:

1. direct result comparison (``row`` mode vs ``vector`` mode);
2. ``oracle`` engine mode, where the Vectorized plan itself re-runs the
   row plan and raises on any multiset difference;
3. EXPLAIN ANALYZE row counters vs actual result cardinality.

A mutation workload additionally asserts trigger ChangeSets are
identical whichever engine executes the reads in between.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database
from repro.db.types import ANY, INTEGER, TEXT

# Small pools make collisions, ties, NULL groups and empty groups common.
ints = st.one_of(st.integers(min_value=-4, max_value=4), st.none())
floats = st.one_of(
    st.floats(min_value=-8, max_value=8, allow_nan=False), st.none()
)
tags = st.sampled_from(["a", "b", "c", None])

rows_strategy = st.lists(
    st.fixed_dictionaries(
        {"k": st.integers(0, 9), "v": ints, "f": floats, "tag": tags}
    ),
    max_size=40,
)

other_rows = st.lists(
    st.fixed_dictionaries({"k": st.integers(0, 9), "w": ints}),
    max_size=15,
)

QUERIES = [
    "SELECT * FROM t",
    "SELECT k, v FROM t WHERE v > 0",
    "SELECT k, v, f FROM t WHERE v IS NULL OR f > 1.5",
    "SELECT * FROM t WHERE k IN (1, 3, 5) AND tag = 'a'",
    "SELECT * FROM t WHERE NOT (v < 2)",
    "SELECT DISTINCT tag FROM t",
    "SELECT DISTINCT k, tag FROM t WHERE v >= -1",
    "SELECT tag, COUNT(*) AS n FROM t GROUP BY tag",
    "SELECT tag, COUNT(*) AS n, SUM(v) AS s, AVG(f) AS a FROM t GROUP BY tag",
    "SELECT tag, MIN(v) AS mn, MAX(f) AS mx FROM t GROUP BY tag",
    "SELECT tag, COUNT(DISTINCT v) AS d FROM t GROUP BY tag",
    "SELECT COUNT(*) AS n, SUM(f) AS s FROM t",
    "SELECT tag, COUNT(*) AS n FROM t GROUP BY tag HAVING COUNT(*) > 2",
    "SELECT k, v FROM t ORDER BY v, k LIMIT 7",
    "SELECT * FROM t ORDER BY tag DESC, k",
    "SELECT k + v AS kv FROM t WHERE v IS NOT NULL ORDER BY kv",
    "SELECT t.k, t.v, o.w FROM t JOIN o ON t.k = o.k WHERE o.w > 0",
    "SELECT t.k, o.w FROM t LEFT JOIN o ON t.k = o.k ORDER BY t.k LIMIT 20",
    "SELECT o.k, COUNT(*) AS n, SUM(t.v) AS s FROM t JOIN o ON t.k = o.k "
    "GROUP BY o.k",
]


def fresh_db(rows, orows=()):
    db = Database()
    db.create_table(
        "t",
        [
            Column("k", INTEGER),
            Column("v", INTEGER),
            Column("f", ANY),
            Column("tag", TEXT),
        ],
    )
    db.create_table("o", [Column("k", INTEGER), Column("w", INTEGER)])
    if rows:
        db.insert_many("t", rows)
    if orows:
        db.insert_many("o", list(orows))
    return db


def canon(rows):
    """Order-insensitive, order-of-keys-sensitive canonical form."""
    return sorted(repr(sorted(r.items(), key=lambda kv: kv[0])) for r in rows)


@given(rows_strategy, other_rows, st.integers(0, len(QUERIES) - 1))
@settings(max_examples=120, deadline=None)
def test_row_vector_equivalence(rows, orows, qi):
    sql = QUERIES[qi]
    db = fresh_db(rows, orows)
    db.set_engine("row")
    expected = db.query(sql)
    db.set_engine("vector")
    got = db.query(sql)
    # Unsorted queries may emit rows in either order; sorted queries must
    # match positionally.
    if "ORDER BY" in sql:
        assert got == expected
    else:
        assert canon(got) == canon(expected)


@given(rows_strategy, other_rows, st.integers(0, len(QUERIES) - 1))
@settings(max_examples=60, deadline=None)
def test_oracle_mode_verifies_in_band(rows, orows, qi):
    # The oracle engine runs the row plan inside the Vectorized node and
    # raises DatabaseError on any multiset mismatch -- a clean pass IS
    # the assertion.
    db = fresh_db(rows, orows)
    db.set_engine("oracle")
    db.query(QUERIES[qi])


@given(rows_strategy, st.sampled_from(
    [
        "SELECT k FROM t WHERE v > 0",
        "SELECT tag, COUNT(*) AS n FROM t GROUP BY tag",
        "SELECT DISTINCT k FROM t",
        "SELECT * FROM t ORDER BY k LIMIT 5",
    ]
))
@settings(max_examples=40, deadline=None)
def test_explain_analyze_counts_match_cardinality(rows, sql):
    db = fresh_db(rows)
    db.set_engine("vector")
    result = db.query(sql)
    analyzed = db.query(f"EXPLAIN ANALYZE {sql}")
    root = analyzed[0]["plan"]
    assert f"(rows={len(result)})" in root


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 9), ints),
        st.tuples(st.just("update"), st.integers(0, 9), ints),
        st.tuples(st.just("delete"), st.integers(0, 9), st.none()),
    ),
    max_size=25,
)


def run_workload(engine, ops):
    db = fresh_db([])
    db.set_engine(engine)
    fired = []

    def hook(change):
        fired.append(
            (
                change.table,
                canon(change.inserted),
                canon(change.deleted),
                canon([b for b, _ in change.updated])
                + canon([a for _, a in change.updated]),
            )
        )

    db.on("t", ("insert", "update", "delete"), hook)
    next_id = [0]
    for kind, k, v in ops:
        if kind == "insert":
            db.execute(
                "INSERT INTO t (k, v, f, tag) VALUES (?, ?, ?, ?)",
                [k, v, float(k), "a" if k % 2 else "b"],
            )
        elif kind == "update":
            db.execute("UPDATE t SET v = ? WHERE k = ?", [v, k])
        else:
            db.execute("DELETE FROM t WHERE k = ?", [k])
        # Interleave reads so the engine under test actually executes.
        db.query("SELECT tag, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY tag")
    final = canon(db.query("SELECT * FROM t"))
    return fired, final


@given(ops_strategy)
@settings(max_examples=30, deadline=None)
def test_trigger_changesets_identical_across_engines(ops):
    row_fired, row_final = run_workload("row", ops)
    vec_fired, vec_final = run_workload("vector", ops)
    assert row_fired == vec_fired
    assert row_final == vec_final
