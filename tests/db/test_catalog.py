"""System catalog views."""

import pytest

from repro.db import Column, Database, ForeignKey
from repro.db.catalog import (
    catalog_columns,
    catalog_foreign_keys,
    catalog_tables,
    catalog_triggers,
)
from repro.db.types import INTEGER, TEXT


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "person",
        [Column("id", INTEGER, nullable=False), Column("name", TEXT, default="?")],
        primary_key="id",
    )
    database.create_table(
        "pet",
        [
            Column("id", INTEGER, nullable=False),
            Column("owner", INTEGER),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("owner", "person", "id")],
    )
    database.insert("person", {"id": 1, "name": "ann"})
    return database


def test_catalog_tables(db):
    rows = {r["table_name"]: r for r in catalog_tables(db)}
    assert rows["person"]["row_count"] == 1
    assert rows["person"]["primary_key"] == "id"
    assert rows["pet"]["column_count"] == 2


def test_catalog_columns(db):
    rows = [r for r in catalog_columns(db) if r["table_name"] == "person"]
    assert [(r["column_name"], r["type"]) for r in rows] == [
        ("id", "INTEGER"),
        ("name", "TEXT"),
    ]
    assert rows[0]["nullable"] is False
    assert rows[1]["default"] == "?"


def test_catalog_foreign_keys(db):
    rows = catalog_foreign_keys(db)
    assert rows == [
        {
            "table_name": "pet",
            "column_name": "owner",
            "ref_table": "person",
            "ref_column": "id",
        }
    ]


def test_catalog_triggers(db):
    db.on("person", ("insert", "delete"), lambda ch: None, name="audit")
    rows = catalog_triggers(db)
    assert rows[0]["trigger_name"] == "audit"
    assert rows[0]["events"] == "insert,delete"
    assert rows[0]["enabled"] is True
