"""Transactions: atomicity, rollback, deferred triggers."""

import pytest

from repro.db import Database, col


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    database.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
    return database


class TestCommit:
    def test_commit_keeps_changes(self, db):
        with db.transaction():
            db.insert("t", {"id": 3, "v": 30})
            db.update("t", {"v": 11}, col("id") == 1)
        assert db.query("SELECT v FROM t WHERE id = 1")[0]["v"] == 11
        assert len(db.query("SELECT * FROM t")) == 3

    def test_triggers_deferred_to_commit(self, db):
        fired = []
        db.on("t", "insert", lambda ch: fired.append(len(ch.inserted)))
        with db.transaction():
            db.insert("t", {"id": 3, "v": 0})
            assert fired == []  # not yet
        assert fired == [1]


class TestRollback:
    def test_insert_rolled_back(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("t", {"id": 3, "v": 30})
                raise RuntimeError("boom")
        assert len(db.query("SELECT * FROM t")) == 2

    def test_update_rolled_back(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.update("t", {"v": 999}, col("id") == 1)
                raise RuntimeError("boom")
        assert db.query("SELECT v FROM t WHERE id = 1")[0]["v"] == 10

    def test_delete_rolled_back_preserves_tid(self, db):
        from repro.db import TID

        original = db.table("t").by_key(2)[TID]
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.delete("t", col("id") == 2)
                raise RuntimeError("boom")
        assert db.table("t").by_key(2)[TID] == original

    def test_rollback_restores_indexes(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.update("t", {"id": 100}, col("id") == 1)
                raise RuntimeError("boom")
        assert db.table("t").by_key(1) is not None
        assert db.table("t").by_key(100) is None
        # PK 100 usable afterwards.
        db.insert("t", {"id": 100, "v": 0})

    def test_no_triggers_after_rollback(self, db):
        fired = []
        db.on("t", ("insert", "update", "delete"), lambda ch: fired.append(1))
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("t", {"id": 3, "v": 0})
                db.delete("t", col("id") == 1)
                raise RuntimeError("boom")
        assert fired == []

    def test_mixed_operations_rolled_back_in_order(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("t", {"id": 3, "v": 30})
                db.update("t", {"v": 31}, col("id") == 3)
                db.delete("t", col("id") == 3)
                raise RuntimeError("boom")
        assert db.table("t").by_key(3) is None
        assert len(db.query("SELECT * FROM t")) == 2


class TestNesting:
    def test_inner_block_joins_outer(self, db):
        with db.transaction():
            db.insert("t", {"id": 3, "v": 0})
            with db.transaction():
                db.insert("t", {"id": 4, "v": 0})
        assert len(db.query("SELECT * FROM t")) == 4

    def test_inner_failure_rolls_back_everything(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("t", {"id": 3, "v": 0})
                with db.transaction():
                    db.insert("t", {"id": 4, "v": 0})
                    raise RuntimeError("boom")
        assert len(db.query("SELECT * FROM t")) == 2

    def test_in_transaction_flag(self, db):
        assert not db.in_transaction()
        with db.transaction():
            assert db.in_transaction()
        assert not db.in_transaction()

    def test_sql_statements_inside_transaction(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO t (id, v) VALUES (9, 9)")
                db.execute("UPDATE t SET v = 0")
                db.execute("DELETE FROM t WHERE id = 1")
                raise RuntimeError("boom")
        rows = {r["id"]: r["v"] for r in db.query("SELECT * FROM t")}
        assert rows == {1: 10, 2: 20}
