"""Property-based join semantics: engine vs Python reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database
from repro.db.types import INTEGER

left_rows = st.lists(
    st.fixed_dictionaries({"k": st.one_of(st.integers(0, 4), st.none()),
                           "a": st.integers(0, 9)}),
    max_size=15,
)
right_rows = st.lists(
    st.fixed_dictionaries({"k": st.one_of(st.integers(0, 4), st.none()),
                           "b": st.integers(0, 9)}),
    max_size=15,
)


def build(lrows, rrows):
    db = Database()
    db.create_table("l", [Column("k", INTEGER), Column("a", INTEGER)])
    db.create_table("r", [Column("k", INTEGER), Column("b", INTEGER)])
    if lrows:
        db.insert_many("l", lrows)
    if rrows:
        db.insert_many("r", rrows)
    return db


@given(left_rows, right_rows)
@settings(max_examples=80, deadline=None)
def test_inner_join_matches_reference(lrows, rrows):
    db = build(lrows, rrows)
    got = sorted(
        (row["a"], row["b"])
        for row in db.query(
            "SELECT l.a, r.b FROM l JOIN r ON l.k = r.k"
        )
    )
    expected = sorted(
        (lr["a"], rr["b"])
        for lr in lrows
        for rr in rrows
        if lr["k"] is not None and lr["k"] == rr["k"]
    )
    assert got == expected


@given(left_rows, right_rows)
@settings(max_examples=80, deadline=None)
def test_left_join_preserves_all_left_rows(lrows, rrows):
    db = build(lrows, rrows)
    rows = db.query("SELECT l.a, r.b FROM l LEFT JOIN r ON l.k = r.k")
    # Every left row appears at least once.
    matched_counts = {}
    for lr in lrows:
        matches = sum(
            1
            for rr in rrows
            if lr["k"] is not None and lr["k"] == rr["k"]
        )
        matched_counts[id(lr)] = max(matches, 1)
    assert len(rows) == sum(matched_counts.values())
    # Unmatched rows carry NULL b.
    unmatched = [r for r in rows if r["b"] is None]
    expected_unmatched = sum(
        1
        for lr in lrows
        if lr["k"] is None
        or not any(lr["k"] == rr["k"] for rr in rrows)
    )
    assert len(unmatched) == expected_unmatched


@given(left_rows, right_rows)
@settings(max_examples=50, deadline=None)
def test_join_count_equals_product_group_sizes(lrows, rrows):
    db = build(lrows, rrows)
    n = db.query("SELECT COUNT(*) AS n FROM l JOIN r ON l.k = r.k")[0]["n"]
    from collections import Counter

    left_counts = Counter(r["k"] for r in lrows if r["k"] is not None)
    right_counts = Counter(r["k"] for r in rrows if r["k"] is not None)
    expected = sum(left_counts[k] * right_counts.get(k, 0) for k in left_counts)
    assert n == expected


@given(left_rows)
@settings(max_examples=40, deadline=None)
def test_product_with_itself_is_square(lrows):
    db = build(lrows, [])
    db.execute("CREATE TABLE l2 (k INTEGER, a INTEGER)")
    if lrows:
        db.insert_many("l2", lrows)
    # Cartesian product via always-true join is not expressible in the
    # SQL subset; check via algebra directly.
    from repro.db.algebra import Product, Scan

    rows = Product(Scan("l"), Scan("l2", alias="x")).to_list(db)
    assert len(rows) == len(lrows) ** 2
