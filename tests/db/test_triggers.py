"""Statement-level triggers."""

import pytest

from repro.db import Database, col
from repro.errors import DatabaseError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    return database


class TestFiring:
    def test_insert_trigger_fires_once_per_statement(self, db):
        calls = []
        db.on("t", "insert", lambda ch: calls.append(len(ch.inserted)))
        db.insert_many("t", [{"id": i, "v": i} for i in range(5)])
        assert calls == [5]  # one statement, one firing

    def test_single_insert(self, db):
        calls = []
        db.on("t", "insert", lambda ch: calls.append(ch.inserted[0]["id"]))
        db.insert("t", {"id": 1, "v": 0})
        assert calls == [1]

    def test_update_trigger_sees_before_after(self, db):
        db.insert("t", {"id": 1, "v": 10})
        seen = []
        db.on("t", "update", lambda ch: seen.extend(ch.updated))
        db.update("t", {"v": 20}, col("id") == 1)
        (before, after), = seen
        assert before["v"] == 10
        assert after["v"] == 20

    def test_delete_trigger_sees_images(self, db):
        db.insert("t", {"id": 1, "v": 10})
        seen = []
        db.on("t", "delete", lambda ch: seen.extend(ch.deleted))
        db.delete("t", col("id") == 1)
        assert seen[0]["v"] == 10

    def test_event_filtering(self, db):
        calls = []
        db.on("t", "delete", lambda ch: calls.append("delete"))
        db.insert("t", {"id": 1, "v": 0})
        assert calls == []
        db.delete("t", col("id") == 1)
        assert calls == ["delete"]

    def test_multi_event_subscription(self, db):
        calls = []
        db.on("t", ("insert", "delete"), lambda ch: calls.append(ch.operations))
        db.insert("t", {"id": 1, "v": 0})
        db.delete("t")
        assert calls == [["insert"], ["delete"]]

    def test_empty_statement_does_not_fire(self, db):
        calls = []
        db.on("t", ("insert", "update", "delete"), lambda ch: calls.append(1))
        db.delete("t", col("id") == 999)
        db.insert_many("t", [])
        assert calls == []

    def test_trigger_on_other_table_silent(self, db):
        db.execute("CREATE TABLE other (a INTEGER)")
        calls = []
        db.on("other", "insert", lambda ch: calls.append(1))
        db.insert("t", {"id": 1, "v": 0})
        assert calls == []


class TestManagement:
    def test_named_trigger_and_drop(self, db):
        calls = []
        name = db.on("t", "insert", lambda ch: calls.append(1), name="mytrig")
        assert name == "mytrig"
        db.drop_trigger("mytrig")
        db.insert("t", {"id": 1, "v": 0})
        assert calls == []

    def test_duplicate_name_rejected(self, db):
        db.on("t", "insert", lambda ch: None, name="x")
        with pytest.raises(DatabaseError):
            db.on("t", "insert", lambda ch: None, name="x")

    def test_drop_unknown(self, db):
        with pytest.raises(DatabaseError):
            db.drop_trigger("nope")

    def test_unknown_event_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.on("t", "truncate", lambda ch: None)

    def test_trigger_on_unknown_table(self, db):
        with pytest.raises(DatabaseError):
            db.on("missing", "insert", lambda ch: None)

    def test_drop_table_removes_triggers(self, db):
        db.on("t", "insert", lambda ch: None, name="goner")
        db.drop_table("t")
        assert "goner" not in db.trigger_names()


class TestCascades:
    def test_trigger_writing_another_table(self, db):
        db.execute("CREATE TABLE audit (tid INTEGER)")
        db.on(
            "t",
            "insert",
            lambda ch: db.insert_many(
                "audit", [{"tid": r["id"]} for r in ch.inserted]
            ),
        )
        db.insert_many("t", [{"id": 1, "v": 0}, {"id": 2, "v": 0}])
        assert len(db.query("SELECT * FROM audit")) == 2

    def test_infinite_cascade_detected(self, db):
        def recurse(change):
            db.insert("t", {"id": change.inserted[0]["id"] + 1000, "v": 0})

        db.on("t", "insert", recurse)
        with pytest.raises(DatabaseError, match="cascade"):
            db.insert("t", {"id": 1, "v": 0})
