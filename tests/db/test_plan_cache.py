"""Statement/plan caching: hit accounting, safety rules, invalidation."""

import pytest

from repro.db import Column, Database, LRUCache
from repro.db.plancache import plan_cachable
from repro.db.sql.parser import parse
from repro.db.types import INTEGER, TEXT


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "t",
        [Column("id", INTEGER, nullable=False), Column("name", TEXT)],
        primary_key="id",
    )
    for i in range(20):
        database.insert("t", {"id": i, "name": f"n{i}"})
    return database


class TestLRUCache:
    def test_get_put_and_counters(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["size"] == 1 and info["capacity"] == 2

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now the eviction victim
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert len(cache) == 2

    def test_put_refreshes_and_overwrites(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_clear(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None


class TestCachability:
    def test_plain_select_cachable(self):
        assert plan_cachable(parse("SELECT * FROM t WHERE id = 1"))

    def test_params_not_cachable(self):
        # Parameters are bound at plan time (baked into the tree as
        # literals), so a parameterized plan must never be reused.
        assert not plan_cachable(parse("SELECT * FROM t WHERE id = ?"))

    def test_in_subquery_not_cachable(self):
        # IN (SELECT ...) is materialized to a value-set snapshot at plan
        # time; reusing it would freeze the subquery result.
        assert not plan_cachable(
            parse("SELECT * FROM t WHERE id IN (SELECT id FROM t)")
        )

    def test_in_literal_list_cachable(self):
        assert plan_cachable(parse("SELECT * FROM t WHERE id IN (1, 2, 3)"))

    def test_param_in_select_items_not_cachable(self):
        assert not plan_cachable(parse("SELECT id + ? FROM t"))

    def test_param_in_compound_not_cachable(self):
        assert not plan_cachable(
            parse("SELECT id FROM t UNION SELECT id FROM t WHERE id = ?")
        )


class TestDatabaseCaches:
    def test_statement_cache_hits_on_repeat(self, db):
        before = db.cache_info()["statements"]["hits"]
        db.query("SELECT * FROM t WHERE id = 1")
        db.query("SELECT * FROM t WHERE id = 1")
        after = db.cache_info()["statements"]["hits"]
        assert after > before

    def test_plan_cache_hits_on_repeat(self, db):
        sql = "SELECT name FROM t WHERE id = 3"
        db.query(sql)
        before = db.cache_info()["plans"]["hits"]
        db.query(sql)
        assert db.cache_info()["plans"]["hits"] == before + 1

    def test_cached_plan_sees_new_rows(self, db):
        sql = "SELECT * FROM t WHERE id >= 18"
        assert len(db.query(sql)) == 2
        db.insert("t", {"id": 25, "name": "late"})
        # The cached plan re-executes against live indexes/tables.
        assert len(db.query(sql)) == 3

    def test_parameterized_statement_not_plan_cached(self, db):
        size_before = db.cache_info()["plans"]["size"]
        assert db.query("SELECT * FROM t WHERE id = ?", [4])[0]["id"] == 4
        assert db.cache_info()["plans"]["size"] == size_before
        # ...but the parse IS cached, and rebinding works per call.
        assert db.query("SELECT * FROM t WHERE id = ?", [9])[0]["id"] == 9

    def test_create_table_evicts_plans(self, db):
        db.query("SELECT * FROM t")
        assert db.cache_info()["plans"]["size"] > 0
        db.execute("CREATE TABLE other (x INTEGER)")
        assert db.cache_info()["plans"]["size"] == 0

    def test_drop_table_evicts_plans(self, db):
        db.execute("CREATE TABLE doomed (x INTEGER)")
        db.query("SELECT * FROM t")
        assert db.cache_info()["plans"]["size"] > 0
        db.execute("DROP TABLE doomed")
        assert db.cache_info()["plans"]["size"] == 0

    def test_drop_and_recreate_same_name_is_safe(self, db):
        db.execute("CREATE TABLE v (a INTEGER)")
        db.execute("INSERT INTO v (a) VALUES (1)")
        assert db.query("SELECT a FROM v") == [{"a": 1}]
        db.execute("DROP TABLE v")
        db.execute("CREATE TABLE v (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO v (a, b) VALUES (2, 3)")
        # A stale cached plan would project the old single-column shape.
        assert db.query("SELECT a, b FROM v") == [{"a": 2, "b": 3}]

    def test_repeated_query_results_stable(self, db):
        sql = "SELECT * FROM t WHERE id BETWEEN 5 AND 9 ORDER BY id"
        first = db.query(sql)
        for _ in range(5):
            assert db.query(sql) == first

    def test_cache_info_shape(self, db):
        info = db.cache_info()
        assert set(info) == {"statements", "plans"}
        for section in info.values():
            assert {"hits", "misses", "size", "capacity"} <= set(section)
