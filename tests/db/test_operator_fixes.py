"""Regression tests for operator correctness fixes.

Covers three defects fixed together with the planner work:

1. HashJoin LEFT-join null padding when the right child is a derived
   plan (subquery/projection) rather than a base table -- padding must
   come from the right plan's actual output columns, not the catalog.
2. ``_AggState`` silently treating non-numeric SUM/AVG input as zero --
   it now yields NULL for the whole group instead of a partial total.
3. ``HashIndex.add`` leaving an empty bucket behind when a unique
   violation aborted the insert.

And three more fixed with the columnar-engine work:

4. ``Distinct`` / ``COUNT(DISTINCT x)`` raising a bare ``TypeError``
   on unhashable cell values (lists, dicts) -- they now fall back to
   linear-scan dedup.
5. ``Sort`` crashing on mixed-type keys -- ordering is now total and
   deterministic via type-tagged keys.
6. ``_scan_columns`` / ``HashJoin._schema_columns`` swallowing *all*
   exceptions; they now only catch ``UnknownTableError``.
"""

import pytest

from repro.db import Column, Database
from repro.db.algebra import (
    Aggregate,
    AggSpec,
    Distinct,
    HashJoin,
    Project,
    Scan,
    Select,
    Sort,
    _scan_columns,
    sort_key_total,
)
from repro.db.expression import col
from repro.db.index import HashIndex
from repro.db.types import ANY, INTEGER, TEXT
from repro.errors import ConstraintViolation


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "emp",
        [
            Column("id", INTEGER, nullable=False),
            Column("dept", TEXT),
            Column("bonus", ANY),
        ],
        primary_key="id",
    )
    rows = [
        (1, "eng", 100),
        (2, "eng", 50),
        (3, "ops", None),
        (4, "ops", None),
        (5, "sales", "spot-award"),  # non-numeric bonus
        (6, "sales", 10),
    ]
    for id_, dept, bonus in rows:
        database.insert("emp", {"id": id_, "dept": dept, "bonus": bonus})
    return database


class TestLeftJoinDerivedPadding:
    """LEFT JOIN whose right child is a derived plan (projection,
    filtered subquery, aggregate) rather than a bare table scan.  When
    the right input produces NO rows, padding columns must come from the
    right plan's output shape -- the catalog knows nothing about derived
    column names like computed projections or aggregate outputs.

    (The SQL dialect has no derived tables in FROM, so these joins are
    built through the algebra API, which workflow operators use.)
    """

    def _depts(self, db, rows):
        db.execute("CREATE TABLE depts (dept TEXT, site TEXT)")
        for dept, site in rows:
            db.insert("depts", {"dept": dept, "site": site})

    def test_empty_projected_subquery_pads_derived_columns(self, db):
        self._depts(db, [("eng", "lyon")])
        # Right side: SELECT dept AS d, site AS location FROM depts
        # WHERE site = 'paris'  -> matches nothing, renamed columns.
        sub = Project(
            Select(Scan("depts"), col("site") == "paris"),
            [("d", col("dept")), ("location", col("site"))],
        )
        join = HashJoin(Scan("emp"), sub, left_on="dept", right_on="d", how="left")
        rows = join.to_list(db)
        assert len(rows) == 6
        for row in rows:
            # Derived names padded with NULL -- not dropped, not the
            # catalog's ("dept", "site").
            assert row["d"] is None and row["location"] is None
            assert "site" not in row

    def test_partially_empty_match_pads_derived_columns(self, db):
        self._depts(db, [("eng", "paris")])
        sub = Project(
            Scan("depts"), [("d", col("dept")), ("location", col("site"))]
        )
        join = HashJoin(Scan("emp"), sub, left_on="dept", right_on="d", how="left")
        rows = sorted(join.to_list(db), key=lambda r: r["id"])
        assert len(rows) == 6
        assert rows[0]["location"] == "paris"  # id 1 is eng: matched
        for row in rows[2:]:  # ops/sales: unmatched, padded
            assert row["d"] is None and row["location"] is None

    def test_empty_aggregate_subquery_pads_output_columns(self, db):
        # Right side: SELECT dept, COUNT(*) AS n FROM emp WHERE id > 100
        # GROUP BY dept -> empty; "n" exists only in the aggregate output.
        sub = Aggregate(
            Select(Scan("emp"), col("id") > 100),
            group_by=["dept"],
            aggregates=[AggSpec("COUNT", None, "n")],
        )
        join = HashJoin(
            Scan("emp"), sub, left_on="dept", right_on="dept", how="left"
        )
        rows = join.to_list(db)
        assert len(rows) == 6
        assert all(row["n"] is None for row in rows)

    def test_empty_base_table_still_pads_from_catalog(self, db):
        # The pre-existing catalog fallback keeps working for bare scans.
        self._depts(db, [])
        join = HashJoin(
            Scan("emp"), Scan("depts"), left_on="dept", right_on="dept", how="left"
        )
        rows = join.to_list(db)
        assert len(rows) == 6
        assert all(row["site"] is None for row in rows)

    def test_inner_join_unaffected(self, db):
        sub = Project(
            Select(Scan("emp"), col("id") == 1), [("d", col("dept"))]
        )
        join = HashJoin(Scan("emp"), sub, left_on="dept", right_on="d")
        rows = join.to_list(db)
        assert sorted(r["id"] for r in rows) == [1, 2]


class TestAggregateNonNumeric:
    def test_sum_with_non_numeric_value_is_null(self, db):
        rows = db.query(
            "SELECT dept, SUM(bonus) AS total FROM emp GROUP BY dept "
            "ORDER BY dept"
        )
        by_dept = {r["dept"]: r["total"] for r in rows}
        assert by_dept["eng"] == 150
        # 'sales' mixes 'spot-award' with 10: a partial total of 10 would
        # be silently wrong, so the group yields NULL.
        assert by_dept["sales"] is None

    def test_avg_with_non_numeric_value_is_null(self, db):
        rows = db.query(
            "SELECT dept, AVG(bonus) AS mean FROM emp GROUP BY dept"
        )
        by_dept = {r["dept"]: r["mean"] for r in rows}
        assert by_dept["eng"] == 75
        assert by_dept["sales"] is None

    def test_sum_all_null_group_is_null(self, db):
        rows = db.query(
            "SELECT dept, SUM(bonus) AS total FROM emp GROUP BY dept"
        )
        by_dept = {r["dept"]: r["total"] for r in rows}
        assert by_dept["ops"] is None

    def test_min_max_with_incomparable_values_is_null(self, db):
        rows = db.query(
            "SELECT MIN(bonus) AS lo, MAX(bonus) AS hi FROM emp "
            "WHERE dept = 'sales'"
        )
        # int vs str has no ordering: NULL, not a crash.
        assert rows[0]["lo"] is None and rows[0]["hi"] is None

    def test_min_max_on_comparable_group(self, db):
        rows = db.query(
            "SELECT MIN(bonus) AS lo, MAX(bonus) AS hi FROM emp "
            "WHERE dept = 'eng'"
        )
        assert rows[0]["lo"] == 50 and rows[0]["hi"] == 100

    def test_count_min_max_unaffected_by_poisoning(self, db):
        rows = db.query(
            "SELECT COUNT(bonus) AS c FROM emp WHERE dept = 'sales'"
        )
        assert rows[0]["c"] == 2  # COUNT still counts non-NULL values

    def test_nulls_skipped_within_numeric_group(self, db):
        db.insert("emp", {"id": 7, "dept": "eng", "bonus": None})
        rows = db.query(
            "SELECT SUM(bonus) AS total, AVG(bonus) AS mean FROM emp "
            "WHERE dept = 'eng'"
        )
        assert rows[0]["total"] == 150
        assert rows[0]["mean"] == 75  # NULL excluded from the denominator


class TestHashIndexViolationCleanup:
    def test_violation_leaves_no_empty_bucket(self):
        index = HashIndex("t", ("k",), unique=True)
        index.add(1, {"k": "a"})
        with pytest.raises(ConstraintViolation):
            index.add(2, {"k": "a"})
        # The failed add must not have disturbed the existing bucket.
        assert index.lookup("a") == {1}
        assert index.bucket_size(("a",)) == 1

    def test_violation_then_different_key_succeeds(self):
        index = HashIndex("t", ("k",), unique=True)
        index.add(1, {"k": "a"})
        with pytest.raises(ConstraintViolation):
            index.add(2, {"k": "a"})
        index.add(2, {"k": "b"})
        assert index.lookup("b") == {2}

    def test_remove_then_readd_same_key(self):
        index = HashIndex("t", ("k",), unique=True)
        index.add(1, {"k": "a"})
        index.remove(1, {"k": "a"})
        # After full removal the bucket is gone; re-adding must succeed.
        index.add(2, {"k": "a"})
        assert index.lookup("a") == {2}

    def test_unique_insert_retry_via_database(self, db):
        # End-to-end: a rejected duplicate PK must not corrupt the index.
        with pytest.raises(ConstraintViolation):
            db.insert("emp", {"id": 1, "dept": "x", "bonus": 0})
        db.insert("emp", {"id": 99, "dept": "x", "bonus": 0})
        assert db.query("SELECT dept FROM emp WHERE id = 1")[0]["dept"] == "eng"
        assert len(db.query("SELECT * FROM emp WHERE id = 99")) == 1


@pytest.fixture
def udb():
    """Table whose ANY column holds unhashable and mixed-type values."""
    database = Database()
    database.create_table(
        "t",
        [Column("id", INTEGER, nullable=False), Column("v", ANY)],
        primary_key="id",
    )
    values = [[1, 2], [1, 2], {"a": 1}, {"a": 1}, "x", "x", 3, None]
    for i, v in enumerate(values):
        database.insert("t", {"id": i, "v": v})
    return database


class TestUnhashableDistinct:
    """Distinct and COUNT(DISTINCT x) over unhashable cell values used to
    raise a bare TypeError from the dedup set; they now fall back to a
    linear-scan membership check."""

    def test_distinct_over_unhashable_values(self, udb):
        rows = Distinct(Project(Scan("t"), [("v", col("v"))])).to_list(udb)
        assert len(rows) == 5  # [1,2], {'a':1}, 'x', 3, None

    def test_sql_select_distinct(self, udb):
        rows = udb.query("SELECT DISTINCT v FROM t")
        assert len(rows) == 5

    def test_count_distinct_unhashable(self, udb):
        rows = udb.query("SELECT COUNT(DISTINCT v) AS d FROM t")
        assert rows[0]["d"] == 4  # NULL excluded from COUNT

    def test_hashable_rows_still_dedup_fast(self, udb):
        # Sanity: plain hashable values keep working through the set path.
        rows = udb.query("SELECT DISTINCT id FROM t")
        assert len(rows) == 8


class TestMixedTypeSort:
    """ORDER BY over a column holding ints, strings, lists and NULLs used
    to crash with TypeError; sort_key_total makes the ordering total."""

    def test_order_by_mixed_types_is_deterministic(self, udb):
        rows1 = udb.query("SELECT id, v FROM t ORDER BY v")
        rows2 = udb.query("SELECT id, v FROM t ORDER BY v")
        assert rows1 == rows2
        # NULLs sort first, numbers before strings before containers.
        assert rows1[0]["v"] is None
        assert rows1[1]["v"] == 3

    def test_sort_key_total_ranks(self):
        keys = [
            sort_key_total(None),
            sort_key_total(3),
            sort_key_total("x"),
            sort_key_total(b"x"),
            sort_key_total([1, 2]),
            sort_key_total({"a": 1}),
        ]
        assert keys == sorted(keys)

    def test_sort_key_total_numeric_interleave(self):
        values = [2, 1.5, True, 3]
        ordered = sorted(values, key=sort_key_total)
        assert ordered == [True, 1.5, 2, 3]

    def test_algebra_sort_node(self, udb):
        rows = Sort(Scan("t"), [("v", True)]).to_list(udb)
        assert len(rows) == 8
        assert rows[0]["v"] is None

    def test_stable_ties_preserve_input_order(self, udb):
        rows = udb.query("SELECT id FROM t ORDER BY v")
        # The two list cells (ids 0, 1) tie; stability keeps id order.
        list_ids = [r["id"] for r in rows if r["id"] in (0, 1)]
        assert list_ids == [0, 1]


class TestNarrowedScanColumnExcepts:
    def test_scan_columns_unknown_table_is_none(self, udb):
        assert _scan_columns(udb, "missing", None) is None

    def test_scan_columns_known_table(self, udb):
        cols = _scan_columns(udb, "t", None)
        assert cols is not None and "v" in cols

    def test_scan_columns_propagates_unexpected_errors(self):
        class Exploding:
            def table(self, name):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            _scan_columns(Exploding(), "t", None)
