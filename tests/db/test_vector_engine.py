"""Tests for the vectorized execution engine and its router integration.

Covers engine modes (auto/row/vector/oracle), the auto-mode size and
access-path gates, EXPLAIN labels and per-operator row counters,
graceful fallback to the row engine at execution time, and the
translation gate (which plans vectorize at all).
"""

import pytest

from repro.db import Database, Vectorized, vectorize_plan
from repro.db.algebra import (
    Aggregate,
    AggSpec,
    Distinct,
    HashJoin,
    Limit,
    Project,
    RowSource,
    Scan,
    Select,
    Sort,
    plan_access_kind,
)
from repro.db.expression import Lambda, col
from repro.errors import DatabaseError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept TEXT, salary INTEGER)"
    )
    for i in range(200):
        database.execute(
            "INSERT INTO emp (id, dept, salary) VALUES (?, ?, ?)",
            [i, f"d{i % 5}", 1000 + i],
        )
    return database


AGG_SQL = (
    "SELECT dept, COUNT(*) AS n, SUM(salary) AS s FROM emp GROUP BY dept"
)


class TestEngineModes:
    def test_default_is_auto(self, db):
        assert db.engine_mode == "auto"

    def test_set_engine_validates(self, db):
        with pytest.raises(DatabaseError):
            db.set_engine("turbo")
        for mode in ("row", "vector", "oracle", "auto"):
            db.set_engine(mode)
            assert db.engine_mode == mode

    def test_row_and_vector_agree(self, db):
        db.set_engine("row")
        expected = db.query(AGG_SQL)
        db.set_engine("vector")
        assert db.query(AGG_SQL) == expected

    def test_oracle_mode_runs_both(self, db):
        db.set_engine("oracle")
        rows = db.query(AGG_SQL)
        assert len(rows) == 5

    def test_set_engine_clears_plan_cache(self, db):
        db.set_engine("vector")
        assert "Vectorized" in db.explain(AGG_SQL)
        db.set_engine("row")
        assert "Vectorized" not in db.explain(AGG_SQL)


class TestAutoGate:
    def test_small_table_stays_row(self, db):
        db.set_engine("auto")
        assert "Vectorized" not in db.explain(AGG_SQL)

    def test_crossing_threshold_vectorizes(self, db):
        db.vector_min_rows = 100
        db.set_engine("auto")  # clears the plan cache
        assert "Vectorized" in db.explain(AGG_SQL)

    def test_point_lookup_never_vectorizes(self, db):
        db.vector_min_rows = 1
        db.set_engine("auto")
        text = db.explain("SELECT * FROM emp WHERE id = 5")
        assert "IndexScan" in text
        assert "Vectorized" not in text

    def test_auto_results_match_row(self, db):
        db.set_engine("row")
        expected = db.query("SELECT id, salary FROM emp WHERE salary > 1100")
        db.vector_min_rows = 100
        db.set_engine("auto")
        assert db.query("SELECT id, salary FROM emp WHERE salary > 1100") == expected


class TestExplainIntegration:
    def test_explain_labels(self, db):
        db.set_engine("vector")
        text = db.explain(AGG_SQL)
        assert "Vectorized" in text
        assert "VAggregate" in text
        assert "VScan emp" in text

    def test_explain_analyze_row_counters(self, db):
        db.set_engine("vector")
        rows = db.query(
            "EXPLAIN ANALYZE SELECT id FROM emp WHERE salary > 1100"
        )
        text = "\n".join(r["plan"] for r in rows)
        assert "VScan emp (rows=200)" in text
        assert "VFilter" in text and "(rows=99)" in text

    def test_plan_access_kind(self, db):
        plan = vectorize_plan(Scan("emp"), db)
        assert plan is not None
        assert plan_access_kind(plan) == "vectorized"

    def test_union_keeps_row_combinator_vectorized_branches(self, db):
        db.set_engine("vector")
        # UNION itself has no vectorized translation, but each branch
        # plans independently and may vectorize under the row combinator.
        sql = "SELECT dept FROM emp UNION ALL SELECT dept FROM emp"
        rows = db.query(sql)
        assert len(rows) == 400
        text = db.explain(sql)
        assert text.startswith("Union ALL")


class TestTranslationGate:
    def test_scan_select_project_vectorizes(self, db):
        plan = Project(
            Select(Scan("emp"), col("salary") > 1100), [("id", col("id"))]
        )
        assert isinstance(vectorize_plan(plan, db), Vectorized)

    def test_rowsource_does_not(self, db):
        plan = Select(RowSource("r", [{"x": 1}]), col("x") > 0)
        assert vectorize_plan(plan, db) is None

    def test_lambda_predicate_does_not(self, db):
        plan = Select(Scan("emp"), Lambda(lambda row: True, "always"))
        assert vectorize_plan(plan, db) is None

    def test_join_sort_limit_distinct_vectorize(self, db):
        plan = Limit(
            Sort(
                Distinct(
                    HashJoin(
                        Scan("emp", alias="a"),
                        Scan("emp", alias="b"),
                        left_on="dept",
                        right_on="dept",
                    )
                ),
                [("id", False)],
            ),
            10,
        )
        vec = vectorize_plan(plan, db)
        assert isinstance(vec, Vectorized)
        assert vec.to_list(db) == plan.to_list(db)

    def test_aggregate_distinct_vectorizes(self, db):
        plan = Aggregate(
            Scan("emp"),
            group_by=["dept"],
            aggregates=[AggSpec("COUNT", col("salary"), "n", distinct=True)],
        )
        vec = vectorize_plan(plan, db)
        assert isinstance(vec, Vectorized)
        assert sorted(map(repr, vec.to_list(db))) == sorted(
            map(repr, plan.to_list(db))
        )


class _DelegatingTable:
    """Not a Table: forces the vectorized scan to fall back at runtime."""

    def __init__(self, table):
        self._table = table

    def __getattr__(self, name):
        return getattr(self._table, name)


class _WrappedSource:
    def __init__(self, database):
        self._database = database

    def table(self, name):
        return _DelegatingTable(self._database.table(name))


class TestRuntimeFallback:
    def test_non_table_source_falls_back(self, db):
        plan = Select(Scan("emp"), col("salary") > 1100)
        vec = vectorize_plan(plan, db)
        assert vec is not None
        source = _WrappedSource(db)
        rows = vec.to_list(source)
        assert rows == plan.to_list(source)
        assert len(rows) == 99

    def test_fallback_leaves_no_phantom_counters(self, db):
        from repro.db.algebra import instrument_plan

        plan = Select(Scan("emp"), col("salary") > 1100)
        vec = vectorize_plan(plan, db)
        counted, counters = instrument_plan(vec)
        counted.to_list(_WrappedSource(db))
        # The vectorized ops never ran to completion: their counters must
        # not survive into EXPLAIN ANALYZE output.
        from repro.db.vector import _collect_ids

        assert not set(counters) & set(_collect_ids(vec.root))


class TestMutationVisibility:
    def test_vector_engine_sees_fresh_writes(self, db):
        db.set_engine("vector")
        before = db.query("SELECT COUNT(*) AS n FROM emp")[0]["n"]
        db.execute(
            "INSERT INTO emp (id, dept, salary) VALUES (?, ?, ?)",
            [999, "d9", 1],
        )
        assert db.query("SELECT COUNT(*) AS n FROM emp")[0]["n"] == before + 1
        db.execute("DELETE FROM emp WHERE id = 999")
        assert db.query("SELECT COUNT(*) AS n FROM emp")[0]["n"] == before

    def test_update_visible_through_store(self, db):
        db.set_engine("vector")
        db.query(AGG_SQL)  # builds the store
        db.execute("UPDATE emp SET salary = 0 WHERE id = 0")
        rows = db.query("SELECT salary FROM emp WHERE id = 0")
        assert rows == [{"salary": 0}]
