"""Table schemas: definition, validation, serialization."""

import pytest

from repro.db import Column, ForeignKey, TableSchema
from repro.db.types import INTEGER, TEXT
from repro.errors import ConstraintViolation, SchemaError, TypeMismatchError


def make_schema(**kwargs):
    return TableSchema(
        "people",
        [
            Column("id", INTEGER, nullable=False),
            Column("name", TEXT, nullable=False),
            Column("nickname", TEXT),
            Column("age", INTEGER, default=0),
        ],
        primary_key="id",
        **kwargs,
    )


class TestDefinition:
    def test_column_names(self):
        assert make_schema().column_names == ("id", "name", "nickname", "age")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INTEGER), Column("a", TEXT)])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_bad_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema("bad name!", [Column("a", INTEGER)])

    def test_hidden_prefix_column_rejected(self):
        with pytest.raises(SchemaError):
            Column("__tid__", INTEGER)

    def test_unknown_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INTEGER)], primary_key="b")

    def test_unknown_unique_column(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INTEGER)], unique=["b"])

    def test_unknown_fk_column(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", INTEGER)],
                foreign_keys=[ForeignKey("missing", "other", "id")],
            )

    def test_bad_default_fails_eagerly(self):
        with pytest.raises(TypeMismatchError):
            Column("a", INTEGER, default="not a number")


class TestRowValidation:
    def test_complete_row(self):
        row = make_schema().validate_row({"id": 1, "name": "Ann"})
        assert row == {"id": 1, "name": "Ann", "nickname": None, "age": 0}

    def test_default_applied(self):
        row = make_schema().validate_row({"id": 1, "name": "Ann"})
        assert row["age"] == 0

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row({"id": 1, "name": "A", "oops": 2})

    def test_not_null_enforced(self):
        with pytest.raises(ConstraintViolation):
            make_schema().validate_row({"id": 1})

    def test_type_coercion(self):
        row = make_schema().validate_row({"id": "7", "name": "Bo"})
        assert row["id"] == 7

    def test_type_error_names_column(self):
        with pytest.raises(TypeMismatchError, match="people.id"):
            make_schema().validate_row({"id": "xyz", "name": "Bo"})


class TestUpdateValidation:
    def test_partial_update(self):
        out = make_schema().validate_update({"age": 30})
        assert out == {"age": 30}

    def test_update_unknown_column(self):
        with pytest.raises(SchemaError):
            make_schema().validate_update({"oops": 1})

    def test_update_null_into_not_null(self):
        with pytest.raises(ConstraintViolation):
            make_schema().validate_update({"name": None})


class TestSerialization:
    def test_round_trip(self):
        schema = TableSchema(
            "t",
            [Column("a", INTEGER, nullable=False), Column("b", TEXT, default="x")],
            primary_key="a",
            unique=[("b",)],
            foreign_keys=[ForeignKey("a", "other", "id")],
        )
        restored = TableSchema.from_dict(schema.to_dict())
        assert restored.name == "t"
        assert restored.column_names == ("a", "b")
        assert restored.primary_key == "a"
        assert restored.unique == (("b",),)
        assert restored.foreign_keys[0].ref_table == "other"
        assert restored.column("b").default == "x"
        assert not restored.column("a").nullable
