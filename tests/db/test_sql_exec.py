"""End-to-end SQL execution (parser + planner + executor)."""

import pytest

from repro.db import Database
from repro.errors import (
    ConstraintViolation,
    DatabaseError,
    SQLSyntaxError,
    UnknownTableError,
)


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "dept TEXT, salary INTEGER)"
    )
    database.execute(
        "INSERT INTO emp (id, name, dept, salary) VALUES "
        "(1, 'ann', 'eng', 100), (2, 'bob', 'eng', 80), "
        "(3, 'cat', 'ops', 70), (4, 'dan', 'ops', NULL), (5, 'eve', 'hr', 90)"
    )
    database.execute("CREATE TABLE dept (dept TEXT, city TEXT)")
    database.execute(
        "INSERT INTO dept (dept, city) VALUES ('eng', 'paris'), ('ops', 'lyon')"
    )
    return database


class TestSelect:
    def test_star(self, db):
        rows = db.query("SELECT * FROM emp")
        assert len(rows) == 5
        assert set(rows[0]) == {"id", "name", "dept", "salary"}

    def test_where_params(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary > ?", [75])
        assert sorted(r["name"] for r in rows) == ["ann", "bob", "eve"]

    def test_missing_param_errors(self, db):
        with pytest.raises(DatabaseError, match="parameter"):
            db.query("SELECT * FROM emp WHERE id = ?")

    def test_expression_projection(self, db):
        rows = db.query("SELECT name, salary / 10 AS dec FROM emp WHERE id = 1")
        assert rows[0]["dec"] == 10

    def test_order_by_projected_alias(self, db):
        rows = db.query("SELECT name, salary AS s FROM emp WHERE salary IS NOT NULL ORDER BY s DESC")
        assert rows[0]["name"] == "ann"

    def test_order_by_unprojected_column(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary")
        assert rows[0]["name"] == "cat"

    def test_group_by_having(self, db):
        rows = db.query(
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp "
            "GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept"
        )
        assert [(r["dept"], r["n"], r["total"]) for r in rows] == [
            ("eng", 2, 180),
            ("ops", 2, 70),
        ]

    def test_aggregate_without_group(self, db):
        row = db.query("SELECT COUNT(*) AS n, AVG(salary) AS mean FROM emp")[0]
        assert row["n"] == 5
        assert row["mean"] == pytest.approx(85.0)

    def test_join(self, db):
        rows = db.query(
            "SELECT emp.name, dept.city FROM emp JOIN dept ON emp.dept = dept.dept "
            "ORDER BY name"
        )
        assert [(r["name"], r["city"]) for r in rows] == [
            ("ann", "paris"),
            ("bob", "paris"),
            ("cat", "lyon"),
            ("dan", "lyon"),
        ]

    def test_left_join(self, db):
        rows = db.query(
            "SELECT e.name, d.city FROM emp e LEFT JOIN dept d ON e.dept = d.dept "
            "WHERE d.city IS NULL"
        )
        assert [r["name"] for r in rows] == ["eve"]

    def test_in_subquery(self, db):
        rows = db.query(
            "SELECT name FROM emp WHERE dept IN (SELECT dept FROM dept WHERE city = 'paris')"
        )
        assert sorted(r["name"] for r in rows) == ["ann", "bob"]

    def test_not_in_subquery(self, db):
        rows = db.query(
            "SELECT name FROM emp WHERE dept NOT IN (SELECT dept FROM dept)"
        )
        assert [r["name"] for r in rows] == ["eve"]

    def test_between_and_like(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary BETWEEN 80 AND 95")
        assert sorted(r["name"] for r in rows) == ["bob", "eve"]
        rows = db.query("SELECT name FROM emp WHERE name LIKE 'a%'")
        assert [r["name"] for r in rows] == ["ann"]
        rows = db.query("SELECT name FROM emp WHERE name LIKE '_a_'")
        assert sorted(r["name"] for r in rows) == ["cat", "dan"]

    def test_union_and_except(self, db):
        rows = db.query(
            "SELECT dept FROM emp UNION SELECT dept FROM dept ORDER BY dept"
        )
        assert [r["dept"] for r in rows] == ["eng", "hr", "ops"]
        rows = db.query("SELECT dept FROM emp EXCEPT SELECT dept FROM dept")
        assert [r["dept"] for r in rows] == ["hr"]

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT dept FROM emp")
        assert len(rows) == 3

    def test_limit_offset(self, db):
        rows = db.query("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2")
        assert [r["id"] for r in rows] == [3, 4]

    def test_scalar_functions(self, db):
        row = db.query("SELECT UPPER(name) AS u, LENGTH(name) AS l FROM emp WHERE id = 1")[0]
        assert row == {"u": "ANN", "l": 3}

    def test_select_without_from(self, db):
        assert db.query("SELECT 2 + 3 AS v") == [{"v": 5}]

    def test_table_alias_qualified(self, db):
        rows = db.query(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dept WHERE d.city = 'lyon'"
        )
        assert sorted(r["name"] for r in rows) == ["cat", "dan"]

    def test_count_distinct(self, db):
        row = db.query(
            "SELECT COUNT(DISTINCT dept) AS d, COUNT(dept) AS c FROM emp"
        )[0]
        assert row == {"d": 3, "c": 5}

    def test_sum_distinct(self, db):
        db.execute("INSERT INTO emp (id, name, dept, salary) VALUES (6, 'fred', 'eng', 100)")
        row = db.query("SELECT SUM(DISTINCT salary) AS s FROM emp WHERE dept = 'eng'")[0]
        assert row["s"] == 180  # 100 counted once, plus 80

    def test_count_distinct_grouped(self, db):
        rows = db.query(
            "SELECT dept, COUNT(DISTINCT salary) AS n FROM emp "
            "WHERE salary IS NOT NULL GROUP BY dept ORDER BY dept"
        )
        assert [(r["dept"], r["n"]) for r in rows] == [("eng", 2), ("hr", 1), ("ops", 1)]

    def test_order_by_qualified_grouped_column_with_alias(self, db):
        rows = db.query(
            "SELECT e.dept AS d, SUM(e.salary) AS total FROM emp e "
            "GROUP BY e.dept ORDER BY e.dept"
        )
        assert [r["d"] for r in rows] == ["eng", "hr", "ops"]

    def test_group_by_expression_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.query("SELECT salary + 1 FROM emp GROUP BY salary + 1")

    def test_bare_column_with_aggregate_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.query("SELECT name, COUNT(*) FROM emp")


class TestMutations:
    def test_insert_result_rowcount(self, db):
        result = db.execute("INSERT INTO emp (id, name) VALUES (10, 'zed'), (11, 'yan')")
        assert result.rowcount == 2

    def test_insert_column_mismatch(self, db):
        with pytest.raises(DatabaseError):
            db.execute("INSERT INTO emp (id, name) VALUES (1)")

    def test_insert_pk_violation_is_atomic(self, db):
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO emp (id, name) VALUES (20, 'ok'), (1, 'dup')")
        assert db.query("SELECT COUNT(*) AS n FROM emp WHERE id = 20")[0]["n"] == 0

    def test_insert_select(self, db):
        db.execute("CREATE TABLE rich (id INTEGER, name TEXT)")
        db.execute(
            "INSERT INTO rich (id, name) SELECT id, name FROM emp WHERE salary >= 90"
        )
        assert sorted(r["name"] for r in db.query("SELECT * FROM rich")) == [
            "ann",
            "eve",
        ]

    def test_update_self_referential(self, db):
        count = db.execute("UPDATE emp SET salary = salary + 5 WHERE dept = 'eng'").rowcount
        assert count == 2
        assert db.query("SELECT salary FROM emp WHERE id = 1")[0]["salary"] == 105

    def test_update_null_where_matches_nothing(self, db):
        count = db.execute("UPDATE emp SET salary = 1 WHERE salary > 1000").rowcount
        assert count == 0

    def test_delete(self, db):
        count = db.execute("DELETE FROM emp WHERE salary IS NULL").rowcount
        assert count == 1
        assert len(db.query("SELECT * FROM emp")) == 4

    def test_delete_all(self, db):
        db.execute("DELETE FROM emp")
        assert db.query("SELECT COUNT(*) AS n FROM emp")[0]["n"] == 0


class TestDDL:
    def test_create_and_drop(self, db):
        db.execute("CREATE TABLE temp1 (a INTEGER)")
        assert db.has_table("temp1")
        db.execute("DROP TABLE temp1")
        assert not db.has_table("temp1")

    def test_create_duplicate(self, db):
        with pytest.raises(Exception):
            db.execute("CREATE TABLE emp (a INTEGER)")
        db.execute("CREATE TABLE IF NOT EXISTS emp (a INTEGER)")  # no error

    def test_drop_missing(self, db):
        with pytest.raises(UnknownTableError):
            db.execute("DROP TABLE nope")
        db.execute("DROP TABLE IF EXISTS nope")  # no error

    def test_unique_constraint_from_ddl(self, db):
        db.execute("CREATE TABLE u (a INTEGER UNIQUE)")
        db.execute("INSERT INTO u (a) VALUES (1)")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO u (a) VALUES (1)")

    def test_not_null_from_ddl(self, db):
        db.execute("CREATE TABLE nn (a INTEGER NOT NULL)")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO nn (a) VALUES (NULL)")

    def test_result_helpers(self, db):
        result = db.execute("SELECT COUNT(*) AS n FROM emp")
        assert result.scalar() == 5
        assert result.column("n") == [5]
        assert len(result) == 1
