"""EXPLAIN output: plan trees render every operator."""

import pytest

from repro.db import Database
from repro.errors import DatabaseError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept TEXT, salary INTEGER)"
    )
    database.execute("CREATE TABLE d (dept TEXT, city TEXT)")
    return database


class TestExplain:
    def test_point_lookup_shows_index_scan(self, db):
        text = db.explain("SELECT * FROM emp WHERE id = 5")
        assert "IndexScan emp.id = 5" in text

    def test_full_pipeline(self, db):
        text = db.explain(
            "SELECT dept, COUNT(*) AS n FROM emp WHERE salary > 10 "
            "GROUP BY dept HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 3"
        )
        for operator in ("Limit", "Sort", "Project", "Aggregate", "Select", "Scan"):
            assert operator in text
        assert "COUNT(...) AS n" in text

    def test_join_plan(self, db):
        text = db.explain(
            "SELECT e.id, d.city FROM emp e JOIN d ON e.dept = d.dept"
        )
        assert "HashJoin e.dept = d.dept (inner)" in text
        assert "Scan emp AS e" in text

    def test_union_plan(self, db):
        text = db.explain("SELECT dept FROM emp UNION ALL SELECT dept FROM d")
        assert "Union ALL" in text

    def test_distinct_aggregate_marked(self, db):
        text = db.explain("SELECT COUNT(DISTINCT dept) AS n FROM emp")
        assert "COUNT(DISTINCT ...) AS n" in text

    def test_indentation_reflects_tree(self, db):
        text = db.explain("SELECT * FROM emp WHERE salary > 1")
        lines = text.splitlines()
        assert lines[0].startswith("KeepAll")
        assert lines[1].startswith("  Select")
        assert lines[2].startswith("    Scan")

    def test_explain_rejects_mutations(self, db):
        with pytest.raises(DatabaseError):
            db.explain("DELETE FROM emp")


class TestExplainAnalyzeSpans:
    """EXPLAIN ANALYZE records per-operator row counters as span events,
    matching the printed plan verbatim."""

    @pytest.fixture(autouse=True)
    def _obs(self):
        import repro.obs as obs

        obs.disable()
        obs.reset()
        yield obs
        obs.disable()
        obs.reset()

    @pytest.fixture
    def populated(self, db):
        for i in range(10):
            db.execute(
                f"INSERT INTO emp (id, dept, salary) VALUES ({i}, 'd{i % 2}', {i * 10})"
            )
        return db

    @staticmethod
    def assert_events_match_plan(events, text):
        plan_lines = [line.strip() for line in text.splitlines()]
        assert events, "EXPLAIN ANALYZE produced no operator events"
        assert [attrs["index"] for _, _, attrs in events] == list(range(len(events)))
        for _, name, attrs in events:
            assert name == "explain.operator"
            assert f"{attrs['operator']} (rows={attrs['rows']})" in plan_lines
        assert len(events) == len(plan_lines)

    def test_explain_api_annotates_its_own_span(self, populated, _obs):
        _obs.enable()
        text = populated.explain("SELECT * FROM emp WHERE salary > 40", analyze=True)
        (span,) = _obs.tracer().spans_named("db.explain")
        assert span.tags["analyze"] is True
        assert span.tags["operators"] == len(span.events)
        self.assert_events_match_plan(span.events, text)
        scan = next(a for _, _, a in span.events if a["operator"].startswith("Scan"))
        assert scan["rows"] == 10  # the scan saw every row

    def test_sql_explain_analyze_annotates_statement_span(self, populated, _obs):
        _obs.enable()
        result = populated.execute("EXPLAIN ANALYZE SELECT * FROM emp WHERE id = 3")
        text = "\n".join(row["plan"] for row in result.rows)
        spans = [
            s for s in _obs.tracer().finished_spans() if s.events
        ]
        (span,) = spans
        assert span.name == "db.execute"
        self.assert_events_match_plan(span.events, text)

    def test_plain_explain_emits_no_events(self, populated, _obs):
        _obs.enable()
        populated.explain("SELECT * FROM emp", analyze=False)
        assert _obs.tracer().spans_named("db.explain") == []

    def test_disabled_tracing_still_counts_rows(self, populated):
        text = populated.explain("SELECT * FROM emp", analyze=True)
        assert "(rows=10)" in text
