"""EXPLAIN output: plan trees render every operator."""

import pytest

from repro.db import Database
from repro.errors import DatabaseError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept TEXT, salary INTEGER)"
    )
    database.execute("CREATE TABLE d (dept TEXT, city TEXT)")
    return database


class TestExplain:
    def test_point_lookup_shows_index_scan(self, db):
        text = db.explain("SELECT * FROM emp WHERE id = 5")
        assert "IndexScan emp.id = 5" in text

    def test_full_pipeline(self, db):
        text = db.explain(
            "SELECT dept, COUNT(*) AS n FROM emp WHERE salary > 10 "
            "GROUP BY dept HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 3"
        )
        for operator in ("Limit", "Sort", "Project", "Aggregate", "Select", "Scan"):
            assert operator in text
        assert "COUNT(...) AS n" in text

    def test_join_plan(self, db):
        text = db.explain(
            "SELECT e.id, d.city FROM emp e JOIN d ON e.dept = d.dept"
        )
        assert "HashJoin e.dept = d.dept (inner)" in text
        assert "Scan emp AS e" in text

    def test_union_plan(self, db):
        text = db.explain("SELECT dept FROM emp UNION ALL SELECT dept FROM d")
        assert "Union ALL" in text

    def test_distinct_aggregate_marked(self, db):
        text = db.explain("SELECT COUNT(DISTINCT dept) AS n FROM emp")
        assert "COUNT(DISTINCT ...) AS n" in text

    def test_indentation_reflects_tree(self, db):
        text = db.explain("SELECT * FROM emp WHERE salary > 1")
        lines = text.splitlines()
        assert lines[0].startswith("KeepAll")
        assert lines[1].startswith("  Select")
        assert lines[2].startswith("    Scan")

    def test_explain_rejects_mutations(self, db):
        with pytest.raises(DatabaseError):
            db.explain("DELETE FROM emp")
