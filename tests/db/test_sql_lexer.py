"""SQL tokenizer."""

import pytest

from repro.db.sql.lexer import Token, tokenize
from repro.errors import SQLSyntaxError


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]  # drop EOF


class TestTokenKinds:
    def test_keywords_uppercased(self):
        assert kinds("select from") == [("KEYWORD", "SELECT"), ("KEYWORD", "FROM")]

    def test_identifiers_preserve_case(self):
        assert kinds("MyTable") == [("IDENT", "MyTable")]

    def test_numbers(self):
        assert kinds("1 2.5 .5 1e3 2.5E-2") == [
            ("NUMBER", "1"),
            ("NUMBER", "2.5"),
            ("NUMBER", ".5"),
            ("NUMBER", "1e3"),
            ("NUMBER", "2.5E-2"),
        ]

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "STRING"
        assert tokens[0].value == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0] == Token("IDENT", "weird name", 0)

    def test_operators_longest_match(self):
        assert kinds("<= >= != <> =") == [
            ("OP", "<="),
            ("OP", ">="),
            ("OP", "!="),
            ("OP", "<>"),
            ("OP", "="),
        ]

    def test_params_and_punct(self):
        assert kinds("(?, ?)") == [
            ("PUNCT", "("),
            ("PUNCT", "?"),
            ("PUNCT", ","),
            ("PUNCT", "?"),
            ("PUNCT", ")"),
        ]

    def test_line_comment_skipped(self):
        assert kinds("select -- a comment\n 1") == [
            ("KEYWORD", "SELECT"),
            ("NUMBER", "1"),
        ]

    def test_positions_recorded(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_unterminated_quoted_ident(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"oops')

    def test_garbage_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @x")

    def test_eof_token_present(self):
        tokens = tokenize("select")
        assert tokens[-1].kind == "EOF"
