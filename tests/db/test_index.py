"""Hash and sorted index behavior."""

import pytest

from repro.db.index import HashIndex, SortedIndex
from repro.errors import ConstraintViolation


class TestHashIndex:
    def test_add_lookup_remove(self):
        idx = HashIndex("t", ("k",))
        idx.add(1, {"k": "a"})
        idx.add(2, {"k": "a"})
        assert idx.lookup("a") == {1, 2}
        idx.remove(1, {"k": "a"})
        assert idx.lookup("a") == {2}

    def test_lookup_missing_is_empty(self):
        idx = HashIndex("t", ("k",))
        assert idx.lookup("nope") == frozenset()

    def test_unique_rejects_duplicates(self):
        idx = HashIndex("t", ("k",), unique=True)
        idx.add(1, {"k": "a"})
        with pytest.raises(ConstraintViolation):
            idx.add(2, {"k": "a"})

    def test_unique_allows_nulls(self):
        idx = HashIndex("t", ("k",), unique=True)
        idx.add(1, {"k": None})
        idx.add(2, {"k": None})  # NULLs never collide
        assert len(idx) == 2

    def test_composite_keys(self):
        idx = HashIndex("t", ("a", "b"))
        idx.add(1, {"a": 1, "b": 2})
        assert idx.lookup_tuple((1, 2)) == {1}
        assert idx.lookup_tuple((2, 1)) == frozenset()

    def test_composite_unique_null_component(self):
        idx = HashIndex("t", ("a", "b"), unique=True)
        idx.add(1, {"a": 1, "b": None})
        idx.add(2, {"a": 1, "b": None})  # NULL component disables check
        assert len(idx) == 2

    def test_single_column_lookup_on_composite_raises(self):
        idx = HashIndex("t", ("a", "b"))
        with pytest.raises(ValueError):
            idx.lookup(1)

    def test_check_insert_does_not_add(self):
        idx = HashIndex("t", ("k",), unique=True)
        idx.check_insert({"k": "a"})
        assert len(idx) == 0


class TestSortedIndex:
    def make(self):
        idx = SortedIndex("t", "ts")
        for tid, ts in [(1, 10), (2, 30), (3, 20), (4, 20)]:
            idx.add(tid, {"ts": ts})
        return idx

    def test_full_range(self):
        assert sorted(self.make().range()) == [1, 2, 3, 4]

    def test_bounded_range(self):
        idx = self.make()
        assert set(idx.range(15, 25)) == {3, 4}

    def test_exclusive_bounds(self):
        idx = self.make()
        assert set(idx.range(20, 30, include_low=False)) == {2}
        assert set(idx.range(10, 20, include_high=False)) == {1}

    def test_remove(self):
        idx = self.make()
        idx.remove(3, {"ts": 20})
        assert set(idx.range(20, 20)) == {4}

    def test_nulls_not_indexed(self):
        idx = SortedIndex("t", "ts")
        idx.add(1, {"ts": None})
        assert len(idx) == 0
        idx.remove(1, {"ts": None})  # no-op, no error

    def test_min_max(self):
        idx = self.make()
        assert idx.min_key() == 10
        assert idx.max_key() == 30
        empty = SortedIndex("t", "ts")
        assert empty.min_key() is None
        assert empty.max_key() is None
