"""The point-lookup optimization: IndexScan selection and correctness."""

import pytest

from repro.db import Column, Database
from repro.db.algebra import IndexScan, Scan
from repro.db.sql.parser import parse
from repro.db.sql.planner import plan_select
from repro.db.types import INTEGER, TEXT


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "emp",
        [
            Column("id", INTEGER, nullable=False),
            Column("badge", TEXT),
            Column("dept", TEXT),
        ],
        primary_key="id",
        unique=["badge"],
    )
    for i in range(200):
        database.insert(
            "emp", {"id": i, "badge": f"b{i}", "dept": f"d{i % 5}"}
        )
    return database


def scan_nodes(plan):
    """All leaf scan nodes of a plan."""
    out = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, (IndexScan, Scan)):
            out.append(node)
        stack.extend(node.children())
    return out


def plan_for(db, sql):
    stmt = parse(sql)
    return plan_select(stmt, db, ())


class TestProbeSelection:
    def test_pk_equality_uses_index(self, db):
        plan = plan_for(db, "SELECT * FROM emp WHERE id = 7")
        (leaf,) = scan_nodes(plan)
        assert isinstance(leaf, IndexScan)
        assert leaf.column == "id"
        assert leaf.value == 7

    def test_unique_column_uses_index(self, db):
        plan = plan_for(db, "SELECT * FROM emp WHERE badge = 'b3'")
        (leaf,) = scan_nodes(plan)
        assert isinstance(leaf, IndexScan)
        assert leaf.column == "badge"

    def test_literal_on_left_side(self, db):
        plan = plan_for(db, "SELECT * FROM emp WHERE 7 = id")
        (leaf,) = scan_nodes(plan)
        assert isinstance(leaf, IndexScan)

    def test_conjunct_extraction(self, db):
        plan = plan_for(db, "SELECT * FROM emp WHERE dept = 'd1' AND id = 9")
        (leaf,) = scan_nodes(plan)
        assert isinstance(leaf, IndexScan)
        assert leaf.column == "id"

    def test_aliased_table(self, db):
        plan = plan_for(db, "SELECT * FROM emp e WHERE e.id = 3")
        (leaf,) = scan_nodes(plan)
        assert isinstance(leaf, IndexScan)

    def test_unindexed_column_scans(self, db):
        plan = plan_for(db, "SELECT * FROM emp WHERE dept = 'd1'")
        (leaf,) = scan_nodes(plan)
        assert isinstance(leaf, Scan)

    def test_disjunction_not_probed(self, db):
        plan = plan_for(db, "SELECT * FROM emp WHERE id = 1 OR id = 2")
        (leaf,) = scan_nodes(plan)
        assert isinstance(leaf, Scan)

    def test_null_literal_not_probed(self, db):
        plan = plan_for(db, "SELECT * FROM emp WHERE badge = NULL")
        (leaf,) = scan_nodes(plan)
        assert isinstance(leaf, Scan)

    def test_join_side_probed_via_pushdown(self, db):
        # The WHERE conjunct references only the left side, so the planner
        # pushes it below the join and routes the left leaf to the index.
        db.execute("CREATE TABLE d (dept TEXT)")
        plan = plan_for(
            db, "SELECT * FROM emp JOIN d ON emp.dept = d.dept WHERE emp.id = 1"
        )
        leaves = scan_nodes(plan)
        probes = [leaf for leaf in leaves if isinstance(leaf, IndexScan)]
        assert len(probes) == 1
        assert probes[0].table_name == "emp"
        assert probes[0].column == "id"
        # The unindexed right side keeps its full scan.
        assert any(
            isinstance(leaf, Scan) and leaf.table_name == "d" for leaf in leaves
        )

    def test_join_pushdown_results_match(self, db):
        db.execute("CREATE TABLE d (dept TEXT)")
        for i in range(5):
            db.execute("INSERT INTO d (dept) VALUES (?)", [f"d{i}"])
        routed = db.query(
            "SELECT * FROM emp JOIN d ON emp.dept = d.dept WHERE emp.id = 1"
        )
        scanned = db.query(
            "SELECT * FROM emp JOIN d ON emp.dept = d.dept WHERE emp.id + 0 = 1"
        )
        assert routed == scanned
        assert len(routed) == 1


class TestProbeCorrectness:
    def test_results_match_scan(self, db):
        probed = db.query("SELECT * FROM emp WHERE id = 7 AND dept = 'd2'")
        # Same predicate through a plain (unprobeable) shape.
        scanned = db.query("SELECT * FROM emp WHERE id + 0 = 7 AND dept = 'd2'")
        assert probed == scanned

    def test_probe_honors_remaining_predicate(self, db):
        rows = db.query("SELECT * FROM emp WHERE id = 7 AND dept = 'd0'")
        assert rows == []  # id 7 is in dept d2

    def test_miss_returns_empty(self, db):
        assert db.query("SELECT * FROM emp WHERE id = 99999") == []

    def test_fallback_without_index_support(self, db):
        # IndexScan degrades to a filtered scan over plain row sources.
        class BareTable:
            def __init__(self, rows):
                self._rows = rows

            def rows(self):
                return iter(self._rows)

        class BareSource:
            def __init__(self, rows):
                self._table = BareTable(rows)

            def table(self, name):
                return self._table

        probe = IndexScan("t", "k", 2)
        source = BareSource([{"k": 1}, {"k": 2}, {"k": 2}])
        assert list(probe.rows(source)) == [{"k": 2}, {"k": 2}]

    def test_isolation_layer_not_probed(self, db):
        """Queries through the isolation adapter must respect snapshots:
        the probe degrades to the filtered path there."""
        from repro.workflow import WorkflowEngine
        from repro.workflow.isolation import IsolationContext

        engine = WorkflowEngine(db)
        engine.isolation.manage("emp")
        snapshot = db.now()
        ctx = IsolationContext(1, snapshot, snapshot)
        db.insert("emp", {"id": 999, "badge": "new", "dept": "d0"})
        rows = engine.isolation.query("SELECT * FROM emp WHERE id = 999", (), ctx)
        assert rows == []  # invisible under the snapshot

    def test_probe_faster_than_scan(self, db):
        import time

        start = time.perf_counter()
        for _ in range(300):
            db.query("SELECT * FROM emp WHERE id = 7")
        probed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(300):
            db.query("SELECT * FROM emp WHERE id + 0 = 7")
        scanned = time.perf_counter() - start
        assert probed < scanned
