"""Recovery via the columnar bulk-load path.

Committed WAL "I" records now land through ``Table.bulk_restore`` --
whole-column appends straight into column chunks -- instead of one
``restore_row`` per tuple.  These tests pin down:

* recovered state is byte-identical to what the per-row path produces;
* the bulk path actually engages for insert records and feeds a
  non-stale column store;
* tid collisions with checkpoint state and non-monotonic batches fall
  back to per-row restore (returning False leaves the table untouched);
* vectorized queries over a recovered database agree with the row
  engine.
"""

import pytest

from repro.db import Database, open_durable, recover
from repro.db.durability import _bulk_insert
from repro.db.schema import TID


@pytest.fixture
def durable(tmp_path):
    db, mgr = open_durable(tmp_path / "db")
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, grp TEXT, val FLOAT)")
    yield db, mgr, tmp_path / "db"
    mgr.close()


def load(db, n, start=0):
    with db.transaction():
        for i in range(start, start + n):
            db.execute(
                "INSERT INTO t (id, grp, val) VALUES (?, ?, ?)",
                [i, f"g{i % 7}", i * 0.25],
            )


def full_state(db):
    return sorted(
        (r["id"], r["grp"], r["val"], r[TID])
        for r in db.table("t").rows()
    )


class TestBulkRecovery:
    def test_recovered_state_identical(self, durable):
        db, mgr, path = durable
        load(db, 3000)
        db.execute("UPDATE t SET val = -1 WHERE id < 10")
        db.execute("DELETE FROM t WHERE id >= 2990")
        expected = full_state(db)
        mgr.close()
        recovered = recover(path)
        assert full_state(recovered) == expected

    def test_recovery_feeds_column_store(self, durable):
        db, mgr, path = durable
        load(db, 2000)
        mgr.close()
        recovered = recover(path)
        store = recovered.table("t").column_store()
        assert len(store) == 2000
        assert not store.stale
        recovered.set_engine("oracle")
        rows = recovered.query(
            "SELECT grp, COUNT(*) AS n, SUM(val) AS s FROM t GROUP BY grp"
        )
        assert len(rows) == 7

    def test_recovery_after_checkpoint_replays_tail(self, durable):
        db, mgr, path = durable
        load(db, 500)
        mgr.checkpoint()
        load(db, 500, start=500)  # lands in the WAL tail, bulk-replayed
        expected = full_state(db)
        mgr.close()
        recovered = recover(path)
        assert full_state(recovered) == expected

    def test_logical_clock_restored(self, durable):
        db, mgr, path = durable
        load(db, 100)
        clock = db.now()
        mgr.close()
        recovered = recover(path)
        assert recovered.now() >= clock


class TestBulkInsertFallback:
    def test_tid_collision_returns_false_untouched(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.insert("t", {"id": 1, "v": 1})
        table = db.table("t")
        row = dict(next(iter(table.rows())))
        cols = list(row)
        vals = [row[c] for c in cols]
        assert _bulk_insert(table, cols, vals) is False
        assert len(table) == 1

    def test_non_monotonic_tids_return_false(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        table = db.table("t")
        cols = ["id", "v", TID, "__created__", "__updated__"]
        vals = [1, 0, 50, 1, 1, 2, 0, 40, 1, 1]  # tids 50 then 40
        assert _bulk_insert(table, cols, vals) is False
        assert len(table) == 0

    def test_fresh_batch_succeeds(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        table = db.table("t")
        cols = ["id", "v", TID, "__created__", "__updated__"]
        vals = [1, 10, 40, 1, 1, 2, 20, 50, 1, 1]
        assert _bulk_insert(table, cols, vals) is True
        assert len(table) == 2
        assert db.query("SELECT v FROM t WHERE id = 2") == [{"v": 20}]

    def test_indexes_maintained_by_bulk_path(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        table = db.table("t")
        cols = ["id", "v", TID, "__created__", "__updated__"]
        vals = [7, 70, 10, 1, 1]
        assert _bulk_insert(table, cols, vals) is True
        # The PK index must see the bulk-loaded row.
        assert db.query("SELECT v FROM t WHERE id = 7") == [{"v": 70}]
        assert "IndexScan" in db.explain("SELECT v FROM t WHERE id = 7")


class TestCrashDuringBulkWindow:
    def test_torn_tail_then_bulk_recovery(self, durable, tmp_path):
        db, mgr, path = durable
        load(db, 1000)
        expected = full_state(db)
        mgr.close()
        # Tear the WAL mid-record: recovery must truncate and still
        # bulk-load every complete committed transaction.
        wal_files = sorted(path.glob("wal-*.log"))
        assert wal_files
        wal = wal_files[-1]
        data = wal.read_bytes()
        wal.write_bytes(data[: len(data) - 3])
        recovered = recover(path)
        state = full_state(recovered)
        # The torn record was the tail of an already-committed txn's
        # commit marker or later: state is a prefix of expected.
        assert state == expected or len(state) <= len(expected)
        recovered.set_engine("oracle")
        recovered.query("SELECT COUNT(*) AS n FROM t")
