"""Column type validation and coercion."""

import pytest

from repro.db.types import (
    ANY,
    BOOLEAN,
    FLOAT,
    INTEGER,
    TEXT,
    TIMESTAMP,
    infer_type,
    type_from_name,
)
from repro.errors import TypeMismatchError


class TestInteger:
    def test_accepts_int(self):
        assert INTEGER.validate(42) == 42

    def test_accepts_integral_float(self):
        assert INTEGER.validate(3.0) == 3

    def test_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(3.5)

    def test_accepts_numeric_string(self):
        assert INTEGER.validate("17") == 17

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(True)

    def test_rejects_garbage_string(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate("abc")

    def test_null_passes(self):
        assert INTEGER.validate(None) is None


class TestFloat:
    def test_accepts_float(self):
        assert FLOAT.validate(2.5) == 2.5

    def test_coerces_int(self):
        value = FLOAT.validate(2)
        assert value == 2.0
        assert isinstance(value, float)

    def test_accepts_numeric_string(self):
        assert FLOAT.validate("2.5") == 2.5

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            FLOAT.validate(False)


class TestText:
    def test_accepts_string(self):
        assert TEXT.validate("hello") == "hello"

    def test_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            TEXT.validate(42)


class TestBoolean:
    def test_accepts_bool(self):
        assert BOOLEAN.validate(True) is True

    def test_coerces_zero_one(self):
        assert BOOLEAN.validate(1) is True
        assert BOOLEAN.validate(0) is False

    def test_rejects_other_ints(self):
        with pytest.raises(TypeMismatchError):
            BOOLEAN.validate(2)


class TestTimestamp:
    def test_accepts_non_negative_int(self):
        assert TIMESTAMP.validate(0) == 0
        assert TIMESTAMP.validate(100) == 100

    def test_rejects_negative(self):
        with pytest.raises(TypeMismatchError):
            TIMESTAMP.validate(-1)

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            TIMESTAMP.validate(True)


class TestAny:
    def test_accepts_anything(self):
        marker = object()
        assert ANY.validate(marker) is marker
        assert ANY.validate([1, 2]) == [1, 2]


class TestResolution:
    def test_from_name_aliases(self):
        assert type_from_name("int") is INTEGER
        assert type_from_name("VARCHAR") is TEXT
        assert type_from_name("double") is FLOAT
        assert type_from_name("bool") is BOOLEAN

    def test_from_name_unknown(self):
        with pytest.raises(TypeMismatchError):
            type_from_name("BLOB")

    def test_infer(self):
        assert infer_type(True) is BOOLEAN
        assert infer_type(1) is INTEGER
        assert infer_type(1.5) is FLOAT
        assert infer_type("x") is TEXT
        assert infer_type(object()) is ANY

    def test_equality_by_class(self):
        assert INTEGER == type_from_name("bigint")
        assert INTEGER != FLOAT
