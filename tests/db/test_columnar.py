"""Tests for the chunked column store behind Table.

Covers incremental maintenance (insert/update/delete mirroring),
tombstone compression, compaction, stale-flag rebuilds on out-of-order
restores, advisory type tags, and the bulk-append paths used by WAL
recovery.
"""

import pytest

from repro.db import CHUNK_ROWS, Column, Database
from repro.db.columnar import (
    COMPACT_MIN_DEAD,
    K_BOOL,
    K_FLOAT,
    K_INT,
    K_NULL,
    K_NUMERIC,
    K_STR,
    value_tag,
)
from repro.db.schema import TID
from repro.db.types import ANY, INTEGER


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "t",
        [Column("id", INTEGER, nullable=False), Column("v", ANY)],
        primary_key="id",
    )
    return database


def fill(db, n, start=0):
    for i in range(start, start + n):
        db.insert("t", {"id": i, "v": i * 2})


def store_rows(store):
    """Transpose the store back to visible (id, v) pairs in scan order."""
    out = []
    for columns, n in store.batches():
        out.extend(zip(columns["id"], columns["v"]))
    return out


def table_rows(db):
    return [(r["id"], r["v"]) for r in db.table("t").rows()]


class TestValueTag:
    def test_tags(self):
        assert value_tag(None) == K_NULL
        assert value_tag(True) == K_BOOL  # bool before int
        assert value_tag(3) == K_INT
        assert value_tag(3.5) == K_FLOAT
        assert value_tag("x") == K_STR

    def test_numeric_mask_excludes_null_and_str(self):
        assert K_INT & K_NUMERIC
        assert K_BOOL & K_NUMERIC
        assert not (K_NULL & K_NUMERIC)
        assert not (K_STR & K_NUMERIC)


class TestLazyBuildAndScan:
    def test_store_is_lazy(self, db):
        fill(db, 10)
        table = db.table("t")
        assert not table.has_column_store()
        store = table.column_store()
        assert table.has_column_store()
        assert len(store) == 10
        assert store_rows(store) == table_rows(db)

    def test_scan_matches_rows_in_tid_order(self, db):
        fill(db, 500)
        store = db.table("t").column_store()
        assert store_rows(store) == table_rows(db)

    def test_chunking(self, db):
        fill(db, CHUNK_ROWS + 10)
        store = db.table("t").column_store()
        assert store.chunk_count == 2
        assert len(store) == CHUNK_ROWS + 10
        assert store_rows(store) == table_rows(db)

    def test_hidden_columns_present(self, db):
        fill(db, 3)
        store = db.table("t").column_store()
        for columns, n in store.batches():
            assert TID in columns
            assert columns[TID] == sorted(columns[TID])


class TestIncrementalMaintenance:
    def test_insert_after_build(self, db):
        fill(db, 5)
        store = db.table("t").column_store()
        before = store.rebuilds
        fill(db, 5, start=5)
        assert store_rows(store) == table_rows(db)
        assert store.rebuilds == before  # appended in place, no rebuild

    def test_update_in_place(self, db):
        fill(db, 20)
        store = db.table("t").column_store()
        before = store.rebuilds
        db.execute("UPDATE t SET v = -1 WHERE id = 7")
        assert store_rows(store) == table_rows(db)
        assert (7, -1) in store_rows(store)
        assert store.rebuilds == before

    def test_delete_tombstones(self, db):
        fill(db, 20)
        store = db.table("t").column_store()
        db.execute("DELETE FROM t WHERE id < 5")
        assert store.dead_rows == 5
        assert len(store) == 15
        assert store_rows(store) == table_rows(db)

    def test_delete_whole_chunk(self, db):
        fill(db, 30)
        store = db.table("t").column_store()
        db.execute("DELETE FROM t WHERE id >= 0")
        assert store_rows(store) == []

    def test_rollback_restore_marks_stale_then_rebuilds(self, db):
        fill(db, 10)
        store = db.table("t").column_store()
        before = store.rebuilds
        try:
            with db.transaction():
                db.execute("DELETE FROM t WHERE id = 3")
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        # The rollback re-inserted tid 4 out of order: next scan rebuilds.
        assert store_rows(store) == table_rows(db)
        assert len(store) == 10
        assert store.rebuilds >= before

    def test_truncate_like_delete_and_refill(self, db):
        fill(db, 50)
        store = db.table("t").column_store()
        db.execute("DELETE FROM t WHERE id >= 0")
        fill(db, 50, start=100)
        assert store_rows(store) == table_rows(db)


class TestCompaction:
    def test_small_tables_never_compact(self, db):
        fill(db, 100)
        store = db.table("t").column_store()
        db.execute("DELETE FROM t WHERE id < 50")
        before = store.rebuilds
        list(store.batches())
        assert store.rebuilds == before  # under COMPACT_MIN_DEAD

    def test_large_dead_fraction_compacts(self, db):
        n = COMPACT_MIN_DEAD * 3
        fill(db, n)
        store = db.table("t").column_store()
        db.execute(f"DELETE FROM t WHERE id < {n // 2}")
        assert store.dead_rows == n // 2
        before = store.rebuilds
        rows = store_rows(store)
        assert store.rebuilds == before + 1
        assert store.dead_rows == 0
        assert rows == table_rows(db)


class TestTypeTags:
    def test_tags_widen_with_data(self, db):
        db.insert("t", {"id": 1, "v": 5})
        store = db.table("t").column_store()
        assert store.column_kind("v") == K_INT
        db.insert("t", {"id": 2, "v": "s"})
        assert store.column_kind("v") == K_INT | K_STR
        db.insert("t", {"id": 3, "v": None})
        assert store.column_kind("v") & K_NULL

    def test_tags_never_narrow_on_update(self, db):
        db.insert("t", {"id": 1, "v": None})
        store = db.table("t").column_store()
        db.execute("UPDATE t SET v = 1 WHERE id = 1")
        # Stale-wide: NULL bit stays set even though no NULL remains.
        assert store.column_kind("v") & K_NULL
        assert store.column_kind("v") & K_INT

    def test_rebuild_recomputes_exact_tags(self, db):
        db.insert("t", {"id": 1, "v": None})
        db.insert("t", {"id": 2, "v": 7})
        store = db.table("t").column_store()
        db.execute("DELETE FROM t WHERE id = 1")
        store._rebuild()
        assert store.column_kind("v") == K_INT


class TestBulkAppend:
    def test_bulk_append_columns(self, db):
        fill(db, 3)
        table = db.table("t")
        store = table.column_store()
        rows = [
            {"id": 100 + i, "v": i, TID: 1000 + i, "__created__": 1, "__updated__": 1}
            for i in range(CHUNK_ROWS + 50)
        ]
        columns = {
            name: [row[name] for row in rows] for name in rows[0]
        }
        store.bulk_append_columns(columns, len(rows))
        assert len(store) == 3 + CHUNK_ROWS + 50
        assert not store.stale

    def test_bulk_append_out_of_order_marks_stale(self, db):
        fill(db, 3)
        store = db.table("t").column_store()
        store.bulk_append(
            [{"id": 9, "v": 9, TID: 1, "__created__": 1, "__updated__": 1}]
        )
        assert store.stale

    def test_bulk_restore_via_table(self, db):
        fill(db, 3)
        table = db.table("t")
        store = table.column_store()
        tids = [r[TID] for r in table.rows()]
        rows = [
            {"id": 50 + i, "v": -i, TID: max(tids) + 1 + i,
             "__created__": 9, "__updated__": 9}
            for i in range(10)
        ]
        assert table.bulk_restore(rows)
        assert len(table) == 13
        assert store_rows(store) == table_rows(db)

    def test_bulk_restore_rejects_tid_collision(self, db):
        fill(db, 3)
        table = db.table("t")
        existing = [dict(r) for r in table.rows()]
        assert table.bulk_restore([existing[0]]) is False
        assert len(table) == 3  # untouched

    def test_bulk_restore_rejects_non_monotonic(self, db):
        fill(db, 3)
        table = db.table("t")
        rows = [
            {"id": 90, "v": 0, TID: 200, "__created__": 1, "__updated__": 1},
            {"id": 91, "v": 0, TID: 150, "__created__": 1, "__updated__": 1},
        ]
        assert table.bulk_restore(rows) is False
        assert len(table) == 3


class TestDropStore:
    def test_drop_and_rebuild(self, db):
        fill(db, 10)
        table = db.table("t")
        table.column_store()
        table.drop_column_store()
        assert not table.has_column_store()
        store = table.column_store()
        assert store_rows(store) == table_rows(db)
