"""Relational algebra operators against a small database."""

import pytest

from repro.db import AggSpec, Column, Database, col
from repro.db.algebra import (
    Aggregate,
    Difference,
    Distinct,
    HashJoin,
    KeepAll,
    Limit,
    MapRows,
    Product,
    Project,
    RowSource,
    Scan,
    Select,
    Sort,
    Union,
)
from repro.db.types import INTEGER, TEXT
from repro.errors import DatabaseError


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "emp",
        [
            Column("id", INTEGER, nullable=False),
            Column("name", TEXT),
            Column("dept", TEXT),
            Column("salary", INTEGER),
        ],
        primary_key="id",
    )
    database.create_table(
        "dept",
        [Column("dept", TEXT, nullable=False), Column("city", TEXT)],
    )
    rows = [
        (1, "ann", "eng", 100),
        (2, "bob", "eng", 80),
        (3, "cat", "ops", 70),
        (4, "dan", "ops", None),
        (5, "eve", "hr", 90),
    ]
    for rid, name, dept, salary in rows:
        database.insert("emp", {"id": rid, "name": name, "dept": dept, "salary": salary})
    database.insert("dept", {"dept": "eng", "city": "paris"})
    database.insert("dept", {"dept": "ops", "city": "lyon"})
    return database


def names(rows):
    return sorted(r["name"] for r in rows)


class TestScanSelectProject:
    def test_scan(self, db):
        assert len(Scan("emp").to_list(db)) == 5

    def test_select(self, db):
        plan = Select(Scan("emp"), col("salary") > 75)
        assert names(plan.rows(db)) == ["ann", "bob", "eve"]

    def test_select_null_dropped(self, db):
        plan = Select(Scan("emp"), col("salary") < 1000)
        assert "dan" not in names(plan.rows(db))  # NULL salary filtered

    def test_project_computed(self, db):
        plan = Project(Scan("emp"), [("double", col("salary") * 2)])
        values = sorted(
            (r["double"] for r in plan.rows(db)),
            key=lambda v: (v is None, v if v is not None else 0),
        )
        assert values == [140, 160, 180, 200, None]

    def test_project_empty_items_rejected(self, db):
        with pytest.raises(DatabaseError):
            Project(Scan("emp"), [])

    def test_keepall_strips_hidden(self, db):
        row = KeepAll(Scan("emp")).to_list(db)[0]
        assert all(not k.startswith("__") for k in row)

    def test_fluent_builders(self, db):
        plan = Scan("emp").where(col("dept") == "eng").project("name")
        assert names(plan.rows(db)) == ["ann", "bob"]


class TestJoins:
    def test_product_size(self, db):
        assert len(Product(Scan("emp"), Scan("dept")).to_list(db)) == 10

    def test_hash_join_inner(self, db):
        plan = HashJoin(Scan("emp"), Scan("dept"), "dept", "dept")
        rows = plan.to_list(db)
        assert len(rows) == 4  # hr has no dept row
        assert all("city" in r for r in rows)

    def test_hash_join_left(self, db):
        plan = HashJoin(Scan("emp"), Scan("dept"), "dept", "dept", how="left")
        rows = plan.to_list(db)
        assert len(rows) == 5
        eve = next(r for r in rows if r["name"] == "eve")
        assert eve["city"] is None

    def test_join_null_key_never_matches(self, db):
        db.insert("emp", {"id": 6, "name": "nul", "dept": None, "salary": 1})
        plan = HashJoin(Scan("emp"), Scan("dept"), "dept", "dept")
        assert "nul" not in names(plan.rows(db))

    def test_bad_join_type(self, db):
        with pytest.raises(DatabaseError):
            HashJoin(Scan("emp"), Scan("dept"), "dept", "dept", how="full")


class TestAggregate:
    def test_group_by_sum_count(self, db):
        plan = Aggregate(
            Scan("emp"),
            ["dept"],
            [
                AggSpec("SUM", col("salary"), "total"),
                AggSpec("COUNT", None, "n"),
                AggSpec("COUNT", col("salary"), "n_salaried"),
            ],
        )
        by_dept = {r["dept"]: r for r in plan.rows(db)}
        assert by_dept["eng"]["total"] == 180
        assert by_dept["ops"]["total"] == 70  # NULL ignored by SUM
        assert by_dept["ops"]["n"] == 2  # COUNT(*) counts all rows
        assert by_dept["ops"]["n_salaried"] == 1

    def test_min_max_avg(self, db):
        plan = Aggregate(
            Scan("emp"),
            [],
            [
                AggSpec("MIN", col("salary"), "lo"),
                AggSpec("MAX", col("salary"), "hi"),
                AggSpec("AVG", col("salary"), "mean"),
            ],
        )
        row = plan.to_list(db)[0]
        assert row["lo"] == 70
        assert row["hi"] == 100
        assert row["mean"] == pytest.approx(85.0)

    def test_global_aggregate_on_empty_input(self, db):
        plan = Aggregate(
            Select(Scan("emp"), col("dept") == "nope"),
            [],
            [AggSpec("COUNT", None, "n"), AggSpec("SUM", col("salary"), "s")],
        )
        row = plan.to_list(db)[0]
        assert row["n"] == 0
        assert row["s"] is None

    def test_having(self, db):
        plan = Aggregate(
            Scan("emp"),
            ["dept"],
            [AggSpec("COUNT", None, "n")],
            having=col("n") >= 2,
        )
        assert sorted(r["dept"] for r in plan.rows(db)) == ["eng", "ops"]

    def test_invalid_spec(self):
        with pytest.raises(DatabaseError):
            AggSpec("SUM", None, "x")
        with pytest.raises(DatabaseError):
            AggSpec("MEDIAN", col("a"), "x")


class TestOrderingAndSlicing:
    def test_sort_asc_desc(self, db):
        plan = Sort(Scan("emp"), [("salary", False)])
        rows = plan.to_list(db)
        assert rows[0]["name"] == "ann"
        assert rows[-1]["name"] == "dan"  # NULLs last when descending

    def test_sort_nulls_first_ascending(self, db):
        rows = Sort(Scan("emp"), [("salary", True)]).to_list(db)
        assert rows[0]["name"] == "dan"

    def test_multi_key_sort_stable(self, db):
        rows = Sort(Scan("emp"), [("dept", True), ("salary", False)]).to_list(db)
        assert [r["name"] for r in rows[:2]] == ["ann", "bob"]

    def test_limit_offset(self, db):
        plan = Limit(Sort(Scan("emp"), [("id", True)]), 2, offset=1)
        assert [r["id"] for r in plan.rows(db)] == [2, 3]

    def test_limit_past_end(self, db):
        assert Limit(Scan("emp"), 100, offset=10).to_list(db) == []

    def test_negative_limit_rejected(self, db):
        with pytest.raises(DatabaseError):
            Limit(Scan("emp"), -1)


class TestSetOperations:
    def test_distinct(self, db):
        plan = Distinct(Project(Scan("emp"), [("dept", col("dept"))]))
        assert sorted(r["dept"] for r in plan.rows(db)) == ["eng", "hr", "ops"]

    def test_union_all_vs_set(self, db):
        depts = Project(Scan("emp"), [("dept", col("dept"))])
        assert len(Union(depts, depts, all=True).to_list(db)) == 10
        assert len(Union(depts, depts, all=False).to_list(db)) == 3

    def test_difference(self, db):
        all_depts = Project(Scan("emp"), [("dept", col("dept"))])
        eng = Select(all_depts, col("dept") == "eng")
        rest = Difference(all_depts, eng)
        assert sorted(r["dept"] for r in rest.rows(db)) == ["hr", "ops"]


class TestMisc:
    def test_row_source(self, db):
        plan = Select(RowSource([{"v": 1}, {"v": 5}]), col("v") > 2)
        assert plan.to_list(db) == [{"v": 5}]

    def test_map_rows(self, db):
        plan = MapRows(RowSource([{"v": 1}]), lambda r: {"v": r["v"] + 1})
        assert plan.to_list(db) == [{"v": 2}]

    def test_base_tables(self, db):
        plan = HashJoin(Scan("emp"), Select(Scan("dept"), col("city") == "x"), "dept", "dept")
        assert plan.base_tables() == {"emp", "dept"}
