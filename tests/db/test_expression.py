"""Expression evaluation, including SQL three-valued logic."""

import pytest

from repro.db.expression import (
    And,
    Arithmetic,
    Comparison,
    FunctionCall,
    InList,
    InSet,
    IsNull,
    Lambda,
    Literal,
    Negate,
    Not,
    Or,
    col,
    evaluate_predicate,
    wrap,
)
from repro.errors import UnknownColumnError

ROW = {"a": 5, "b": None, "s": "Hello", "t.q": 9}


class TestBasics:
    def test_literal(self):
        assert Literal(7).eval({}) == 7

    def test_column(self):
        assert col("a").eval(ROW) == 5

    def test_qualified_column_fallback(self):
        # 't.q' resolves directly; 'x.a' falls back to plain 'a'.
        assert col("t.q").eval(ROW) == 9
        assert col("x.a").eval(ROW) == 5

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            col("zz").eval(ROW)

    def test_wrap_idempotent(self):
        expr = col("a")
        assert wrap(expr) is expr
        assert wrap(3).eval({}) == 3

    def test_columns_tracking(self):
        expr = (col("a") + col("b")) > col("c")
        assert expr.columns() == {"a", "b", "c"}


class TestComparisons:
    def test_operators(self):
        assert (col("a") == 5).eval(ROW) is True
        assert (col("a") != 5).eval(ROW) is False
        assert (col("a") < 6).eval(ROW) is True
        assert (col("a") >= 5).eval(ROW) is True

    def test_null_propagates(self):
        assert (col("b") == 5).eval(ROW) is None
        assert (col("b") != 5).eval(ROW) is None

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Comparison("~~", Literal(1), Literal(2))


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        t, f, n = Literal(True), Literal(False), Literal(None)
        # NULL handling follows SQL: F AND NULL = F, T AND NULL = NULL.
        assert And(f, n).eval({}) is False
        assert And(n, f).eval({}) is False
        assert And(t, n).eval({}) is None
        assert And(t, t).eval({}) is True

    def test_or_truth_table(self):
        t, f, n = Literal(True), Literal(False), Literal(None)
        assert Or(t, n).eval({}) is True
        assert Or(n, t).eval({}) is True
        assert Or(f, n).eval({}) is None
        assert Or(f, f).eval({}) is False

    def test_not(self):
        assert Not(Literal(True)).eval({}) is False
        assert Not(Literal(None)).eval({}) is None

    def test_predicate_keeps_only_true(self):
        assert evaluate_predicate(Literal(None), {}) is False
        assert evaluate_predicate(Literal(True), {}) is True
        assert evaluate_predicate(None, {}) is True  # no predicate


class TestArithmetic:
    def test_ops(self):
        assert (col("a") + 1).eval(ROW) == 6
        assert (col("a") - 1).eval(ROW) == 4
        assert (col("a") * 2).eval(ROW) == 10
        assert (col("a") / 2).eval(ROW) == 2.5
        assert Arithmetic("%", col("a"), Literal(3)).eval(ROW) == 2

    def test_null_propagates(self):
        assert (col("b") + 1).eval(ROW) is None

    def test_division_by_zero_is_null(self):
        assert (col("a") / 0).eval(ROW) is None
        assert Arithmetic("%", col("a"), Literal(0)).eval(ROW) is None

    def test_negate(self):
        assert Negate(col("a")).eval(ROW) == -5
        assert Negate(col("b")).eval(ROW) is None


class TestMembership:
    def test_in_list(self):
        assert InList(col("a"), [1, 5, 9]).eval(ROW) is True
        assert InList(col("a"), [1, 2], negate=True).eval(ROW) is True
        assert InList(col("b"), [1]).eval(ROW) is None

    def test_in_list_unhashable_values(self):
        expr = InList(Literal([1]), [[1], [2]])
        assert expr.eval({}) is True

    def test_in_set(self):
        assert InSet(col("a"), {5}).eval(ROW) is True
        assert InSet(col("a"), {6}, negate=True).eval(ROW) is True
        assert InSet(col("b"), {1}).eval(ROW) is None

    def test_is_null(self):
        assert IsNull(col("b")).eval(ROW) is True
        assert IsNull(col("a")).eval(ROW) is False
        assert IsNull(col("b"), negate=True).eval(ROW) is False

    def test_builders(self):
        assert col("a").is_in([5]).eval(ROW) is True
        assert col("b").is_null().eval(ROW) is True
        assert col("a").is_not_null().eval(ROW) is True


class TestFunctions:
    def test_scalar_functions(self):
        assert FunctionCall("ABS", [Literal(-3)]).eval({}) == 3
        assert FunctionCall("LOWER", [col("s")]).eval(ROW) == "hello"
        assert FunctionCall("UPPER", [col("s")]).eval(ROW) == "HELLO"
        assert FunctionCall("LENGTH", [col("s")]).eval(ROW) == 5
        assert FunctionCall("ROUND", [Literal(2.7)]).eval({}) == 3

    def test_coalesce(self):
        expr = FunctionCall("COALESCE", [col("b"), Literal(9)])
        assert expr.eval(ROW) == 9

    def test_null_in_plain_function(self):
        assert FunctionCall("ABS", [col("b")]).eval(ROW) is None

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            FunctionCall("NOPE", [])

    def test_lambda(self):
        expr = Lambda(lambda row: row["a"] * 10, columns=["a"])
        assert expr.eval(ROW) == 50
        assert expr.columns() == {"a"}
