"""Snapshot save/load round-trips."""

import json

import pytest

from repro.db import CREATED_AT, TID, Column, Database, load_snapshot, save_snapshot
from repro.db.types import INTEGER, TEXT
from repro.errors import DatabaseError


@pytest.fixture
def db():
    database = Database("snaptest")
    database.create_table(
        "t",
        [Column("id", INTEGER, nullable=False), Column("name", TEXT)],
        primary_key="id",
        unique=["name"],
    )
    database.insert("t", {"id": 1, "name": "a"})
    database.insert("t", {"id": 2, "name": "b"})
    return database


class TestRoundTrip:
    def test_rows_survive(self, db, tmp_path):
        path = tmp_path / "snap.jsonl"
        written = save_snapshot(db, path)
        assert written == 2
        restored = load_snapshot(path)
        rows = restored.query("SELECT * FROM t ORDER BY id")
        assert [r["name"] for r in rows] == ["a", "b"]

    def test_hidden_fields_survive(self, db, tmp_path):
        path = tmp_path / "snap.jsonl"
        original = {r["id"]: (r[TID], r[CREATED_AT]) for r in db.table("t").rows()}
        save_snapshot(db, path)
        restored = load_snapshot(path)
        for row in restored.table("t").rows():
            assert original[row["id"]] == (row[TID], row[CREATED_AT])

    def test_clock_survives(self, db, tmp_path):
        path = tmp_path / "snap.jsonl"
        save_snapshot(db, path)
        restored = load_snapshot(path)
        assert restored.now() == db.now()
        # New timestamps strictly after old ones.
        row = restored.insert("t", {"id": 3, "name": "c"})
        assert row[CREATED_AT] > max(
            r[CREATED_AT] for r in db.table("t").rows()
        )

    def test_constraints_survive(self, db, tmp_path):
        from repro.errors import ConstraintViolation

        path = tmp_path / "snap.jsonl"
        save_snapshot(db, path)
        restored = load_snapshot(path)
        with pytest.raises(ConstraintViolation):
            restored.insert("t", {"id": 1, "name": "z"})
        with pytest.raises(ConstraintViolation):
            restored.insert("t", {"id": 9, "name": "a"})

    def test_name_survives(self, db, tmp_path):
        path = tmp_path / "snap.jsonl"
        save_snapshot(db, path)
        assert load_snapshot(path).name == "snaptest"

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_snapshot(Database("nil"), path)
        restored = load_snapshot(path)
        assert restored.table_names() == []


class TestFailureModes:
    def test_unserializable_value(self, tmp_path):
        database = Database()
        database.create_table("t", [Column("v", INTEGER)])
        # Force a non-JSON value through the ANY-typed hidden path.
        from repro.db.types import ANY
        database.create_table("u", [Column("blob", ANY)])
        database.insert("u", {"blob": object()})
        with pytest.raises(DatabaseError, match="JSON"):
            save_snapshot(database, tmp_path / "bad.jsonl")
        assert not (tmp_path / "bad.jsonl").exists()  # no torn file

    def test_corrupt_line(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"kind": "header", "version": 1, "name": "x", "clock": 0}\nnot json\n')
        with pytest.raises(DatabaseError, match="invalid snapshot line"):
            load_snapshot(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "noheader.jsonl"
        path.write_text(json.dumps({"kind": "schema", "schema": {}}) + "\n")
        with pytest.raises(DatabaseError):
            load_snapshot(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DatabaseError, match="empty snapshot"):
            load_snapshot(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "vers.jsonl"
        path.write_text(json.dumps({"kind": "header", "version": 99}) + "\n")
        with pytest.raises(DatabaseError, match="version"):
            load_snapshot(path)

    def test_unknown_record_kind(self, tmp_path):
        path = tmp_path / "weird.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "version": 1, "name": "x", "clock": 0})
            + "\n"
            + json.dumps({"kind": "mystery"})
            + "\n"
        )
        with pytest.raises(DatabaseError, match="unknown snapshot record"):
            load_snapshot(path)
