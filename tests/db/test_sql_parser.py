"""SQL parser: statement structure (no execution)."""

import pytest

from repro.db.sql.ast import (
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    SqlBinary,
    SqlCall,
    SqlColumn,
    SqlIn,
    SqlLiteral,
    SqlParam,
    UpdateStmt,
)
from repro.db.sql.parser import parse, parse_select
from repro.errors import SQLSyntaxError


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, SelectStmt)
        assert stmt.items[0].star
        assert stmt.table.name == "t"

    def test_items_with_aliases(self):
        stmt = parse("SELECT a, b AS bee, a + 1 plus FROM t")
        assert stmt.items[1].alias == "bee"
        assert stmt.items[2].alias == "plus"

    def test_where_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert isinstance(stmt.where, SqlBinary)
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a + b * 2 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_join(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.z")
        assert len(stmt.joins) == 2
        assert stmt.joins[0].kind == "inner"
        assert stmt.joins[1].kind == "left"
        assert stmt.joins[0].left == SqlColumn("x", "a")

    def test_non_equi_join_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM a JOIN b ON a.x < b.y")

    def test_group_having_order_limit(self):
        stmt = parse(
            "SELECT dept, COUNT(*) n FROM emp GROUP BY dept HAVING COUNT(*) > 1 "
            "ORDER BY n DESC, dept LIMIT 5 OFFSET 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == SqlLiteral(5)
        assert stmt.offset == SqlLiteral(2)

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_in_subquery(self):
        stmt = parse("SELECT * FROM t WHERE id NOT IN (SELECT id FROM s)")
        in_expr = stmt.where
        assert isinstance(in_expr, SqlIn)
        assert in_expr.negate
        assert isinstance(in_expr.subquery, SelectStmt)

    def test_in_value_list(self):
        stmt = parse("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert len(stmt.where.values) == 3

    def test_between_like_is_null(self):
        stmt = parse(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE 'x%' AND c IS NOT NULL"
        )
        assert stmt.where is not None

    def test_union_except(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT a FROM s")
        assert stmt.compound[0] == "UNION ALL"
        stmt = parse("SELECT a FROM t EXCEPT SELECT a FROM s")
        assert stmt.compound[0] == "EXCEPT"

    def test_select_without_from(self):
        stmt = parse("SELECT 1 + 1 AS two")
        assert stmt.table is None

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, SqlCall)
        assert call.star

    def test_params_numbered(self):
        stmt = parse("SELECT * FROM t WHERE a = ? AND b = ?")
        left = stmt.where.left.right
        right = stmt.where.right.right
        assert left == SqlParam(0)
        assert right == SqlParam(1)

    def test_table_star(self):
        stmt = parse("SELECT t.* FROM t JOIN s ON t.a = s.a")
        assert stmt.items[0].star
        assert stmt.items[0].star_table == "t"

    def test_aggregate_keyword_as_column(self):
        stmt = parse("SELECT count FROM t WHERE count > 1")
        assert stmt.items[0].expr == SqlColumn("count")


class TestMutations:
    def test_insert_values(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, InsertStmt)
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse("INSERT INTO t SELECT * FROM s")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
        assert isinstance(stmt, UpdateStmt)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a IS NULL")
        assert isinstance(stmt, DeleteStmt)

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None


class TestDDL:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
            "tag TEXT UNIQUE, ref INTEGER REFERENCES other(id))"
        )
        assert isinstance(stmt, CreateTableStmt)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].unique
        assert stmt.columns[3].references == ("other", "id")

    def test_create_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a INTEGER)").if_not_exists

    def test_drop(self):
        stmt = parse("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, DropTableStmt)
        assert stmt.if_exists


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t garbage extra tokens ,")

    def test_unsupported_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse("GRANT ALL TO bob")

    def test_parse_select_rejects_mutations(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("DELETE FROM t")

    def test_missing_expression(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT FROM t")

    def test_semicolon_allowed(self):
        parse("SELECT 1;")
