"""Database facade: clock, schema management, programmatic mutations."""

import threading

import pytest

from repro.db import Column, Database, TableSchema, col
from repro.db.types import INTEGER, TEXT
from repro.errors import SchemaError, UnknownTableError


@pytest.fixture
def db():
    return Database("facade")


class TestClock:
    def test_tick_monotonic(self, db):
        values = [db.tick() for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_now_does_not_advance(self, db):
        db.tick()
        a = db.now()
        b = db.now()
        assert a == b

    def test_mutations_advance_clock(self, db):
        db.create_table("t", [Column("a", INTEGER)])
        before = db.now()
        db.insert("t", {"a": 1})
        assert db.now() > before


class TestSchemaManagement:
    def test_create_from_columns(self, db):
        table = db.create_table("t", [Column("a", INTEGER)], primary_key="a")
        assert table.schema.primary_key == "a"

    def test_create_from_schema_object(self, db):
        schema = TableSchema("s", [Column("x", TEXT)])
        db.create_table("s", schema=schema)
        assert db.has_table("s")

    def test_create_requires_columns_or_schema(self, db):
        with pytest.raises(SchemaError):
            db.create_table("t")

    def test_duplicate_table(self, db):
        db.create_table("t", [Column("a", INTEGER)])
        with pytest.raises(SchemaError):
            db.create_table("t", [Column("a", INTEGER)])
        same = db.create_table("t", [Column("a", INTEGER)], if_not_exists=True)
        assert same is db.table("t")

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.table("ghost")

    def test_table_names_sorted(self, db):
        db.create_table("zz", [Column("a", INTEGER)])
        db.create_table("aa", [Column("a", INTEGER)])
        assert db.table_names() == ["aa", "zz"]


class TestProgrammaticMutations:
    @pytest.fixture
    def table(self, db):
        db.create_table(
            "t", [Column("id", INTEGER, nullable=False), Column("v", INTEGER)],
            primary_key="id",
        )
        return db.table("t")

    def test_insert_returns_stored_row(self, db, table):
        row = db.insert("t", {"id": 1, "v": 5})
        assert row["v"] == 5

    def test_update_predicate(self, db, table):
        for i in range(4):
            db.insert("t", {"id": i, "v": i})
        count = db.update("t", {"v": 0}, col("v") >= 2)
        assert count == 2

    def test_update_all(self, db, table):
        db.insert("t", {"id": 1, "v": 1})
        db.insert("t", {"id": 2, "v": 2})
        assert db.update("t", {"v": 9}) == 2

    def test_update_by_tid(self, db, table):
        from repro.db import TID

        row = db.insert("t", {"id": 1, "v": 5})
        updated = db.update_by_tid("t", row[TID], {"v": 6})
        assert updated["v"] == 6

    def test_delete_by_tids(self, db, table):
        from repro.db import TID

        rows = [db.insert("t", {"id": i, "v": i}) for i in range(3)]
        count = db.delete_by_tids("t", [rows[0][TID], rows[2][TID], 9999])
        assert count == 2
        assert [r["id"] for r in db.table("t").rows()] == [1]


class TestThreadSafety:
    def test_concurrent_inserts(self, db):
        db.create_table("t", [Column("v", INTEGER)])
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    db.insert("t", {"v": base + i})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k * 1000,)) for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(db.table("t")) == 800
        # tids unique
        from repro.db import TID

        tids = [r[TID] for r in db.table("t").rows()]
        assert len(set(tids)) == 800
