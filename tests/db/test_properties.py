"""Property-based tests: the engine against Python reference semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT

# Small value pools keep collisions (and therefore interesting cases) common.
values = st.one_of(st.integers(min_value=-5, max_value=5), st.none())
names = st.sampled_from(["a", "b", "c"])


rows_strategy = st.lists(
    st.fixed_dictionaries({"k": st.integers(0, 20), "v": values, "tag": names}),
    max_size=30,
)


def fresh_db(rows):
    db = Database()
    db.create_table(
        "t",
        [Column("k", INTEGER), Column("v", INTEGER), Column("tag", TEXT)],
    )
    if rows:
        db.insert_many("t", rows)
    return db


@given(rows_strategy, st.integers(-5, 5))
@settings(max_examples=60, deadline=None)
def test_selection_matches_python_filter(rows, threshold):
    db = fresh_db(rows)
    got = db.query("SELECT * FROM t WHERE v > ?", [threshold])
    expected = [r for r in rows if r["v"] is not None and r["v"] > threshold]
    assert sorted((r["k"], r["v"], r["tag"]) for r in got) == sorted(
        (r["k"], r["v"], r["tag"]) for r in expected
    )


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_group_by_matches_python_aggregation(rows):
    db = fresh_db(rows)
    got = {
        r["tag"]: (r["n"], r["total"])
        for r in db.query("SELECT tag, COUNT(*) AS n, SUM(v) AS total FROM t GROUP BY tag")
    }
    expected = {}
    for row in rows:
        n, total, any_value = expected.get(row["tag"], (0, 0, False))
        if row["v"] is not None:
            total += row["v"]
            any_value = True
        expected[row["tag"]] = (n + 1, total, any_value)
    assert set(got) == set(expected)
    for tag, (n, total, any_value) in expected.items():
        assert got[tag][0] == n
        assert got[tag][1] == (total if any_value else None)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_order_by_is_sorted_and_stable_under_content(rows):
    db = fresh_db(rows)
    got = db.query("SELECT v FROM t WHERE v IS NOT NULL ORDER BY v")
    sequence = [r["v"] for r in got]
    assert sequence == sorted(sequence)


@given(rows_strategy, st.integers(-5, 5))
@settings(max_examples=40, deadline=None)
def test_delete_then_count_consistent(rows, threshold):
    db = fresh_db(rows)
    deleted = db.execute("DELETE FROM t WHERE v = ?", [threshold]).rowcount
    remaining = db.query("SELECT COUNT(*) AS n FROM t")[0]["n"]
    assert deleted + remaining == len(rows)
    assert all(r["v"] != threshold for r in db.query("SELECT * FROM t"))


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_update_preserves_row_count_and_tids(rows):
    from repro.db import TID

    db = fresh_db(rows)
    before = set(r[TID] for r in db.table("t").rows())
    db.execute("UPDATE t SET v = 0 WHERE v IS NOT NULL")
    after = set(r[TID] for r in db.table("t").rows())
    assert before == after


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_distinct_union_self_is_identity(rows):
    db = fresh_db(rows)
    base = db.query("SELECT DISTINCT k FROM t")
    union = db.query("SELECT k FROM t UNION SELECT k FROM t")
    assert sorted(r["k"] for r in base) == sorted(r["k"] for r in union)


@given(rows_strategy)
@settings(max_examples=30, deadline=None)
def test_snapshot_round_trip_preserves_contents(rows):
    import tempfile
    from pathlib import Path

    from repro.db import load_snapshot, save_snapshot

    db = fresh_db(rows)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "s.jsonl"
        save_snapshot(db, path)
        restored = load_snapshot(path)
    def key(r):
        return (r["k"], r["v"] is None, r["v"] or 0, r["tag"])

    original = sorted(db.query("SELECT * FROM t"), key=key)
    loaded = sorted(restored.query("SELECT * FROM t"), key=key)
    assert original == loaded


