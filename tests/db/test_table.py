"""Row storage: tids, timestamps, indexes, constraint enforcement."""

import pytest

from repro.db import Column, TableSchema
from repro.db.schema import CREATED_AT, TID, UPDATED_AT
from repro.db.table import Table
from repro.db.types import INTEGER, TEXT
from repro.errors import ConstraintViolation, DatabaseError, SchemaError


@pytest.fixture
def clock():
    state = {"t": 0}

    def tick():
        state["t"] += 1
        return state["t"]

    return tick


@pytest.fixture
def table(clock):
    schema = TableSchema(
        "items",
        [
            Column("id", INTEGER, nullable=False),
            Column("name", TEXT),
            Column("qty", INTEGER, default=1),
        ],
        primary_key="id",
    )
    return Table(schema, clock)


class TestInsert:
    def test_assigns_tid_and_timestamps(self, table):
        row = table.insert({"id": 1, "name": "a"})
        assert row[TID] == 1
        assert row[CREATED_AT] == row[UPDATED_AT] > 0

    def test_tids_are_dense_and_increasing(self, table):
        first = table.insert({"id": 1})
        second = table.insert({"id": 2})
        assert second[TID] == first[TID] + 1

    def test_timestamps_totally_ordered(self, table):
        a = table.insert({"id": 1})
        b = table.insert({"id": 2})
        assert b[CREATED_AT] > a[CREATED_AT]

    def test_primary_key_enforced(self, table):
        table.insert({"id": 1})
        with pytest.raises(ConstraintViolation):
            table.insert({"id": 1})

    def test_pk_check_leaves_no_trace(self, table):
        table.insert({"id": 1})
        try:
            table.insert({"id": 1})
        except ConstraintViolation:
            pass
        assert len(table) == 1


class TestUpdate:
    def test_update_returns_before_after(self, table):
        row = table.insert({"id": 1, "qty": 5})
        before, after = table.update_row(row[TID], {"qty": 6})
        assert before["qty"] == 5
        assert after["qty"] == 6

    def test_update_bumps_updated_ts(self, table):
        row = table.insert({"id": 1})
        created = row[CREATED_AT]
        _before, after = table.update_row(row[TID], {"qty": 9})
        assert after[UPDATED_AT] > created
        assert after[CREATED_AT] == created

    def test_update_unknown_tid(self, table):
        with pytest.raises(DatabaseError):
            table.update_row(999, {"qty": 1})

    def test_update_violating_pk_rolls_back(self, table):
        table.insert({"id": 1})
        row2 = table.insert({"id": 2, "qty": 7})
        with pytest.raises(ConstraintViolation):
            table.update_row(row2[TID], {"id": 1})
        # Row unchanged and still findable via index.
        assert table.by_key(2)["qty"] == 7


class TestDelete:
    def test_delete_returns_image(self, table):
        row = table.insert({"id": 1, "name": "x"})
        image = table.delete_row(row[TID])
        assert image["name"] == "x"
        assert len(table) == 0

    def test_delete_removes_from_index(self, table):
        row = table.insert({"id": 1})
        table.delete_row(row[TID])
        assert table.by_key(1) is None
        table.insert({"id": 1})  # pk free again

    def test_restore_row(self, table):
        row = table.insert({"id": 1, "name": "x"})
        image = table.delete_row(row[TID])
        table.restore_row(image)
        assert table.by_key(1)["name"] == "x"
        assert table.by_key(1)[TID] == row[TID]

    def test_restore_duplicate_tid_rejected(self, table):
        row = table.insert({"id": 1})
        with pytest.raises(DatabaseError):
            table.restore_row(dict(row))


class TestScans:
    def test_rows_in_tid_order(self, table):
        for i in (3, 1, 2):
            table.insert({"id": i})
        ids = [r["id"] for r in table.rows()]
        assert ids == [3, 1, 2]  # insertion order == tid order

    def test_created_between(self, table):
        table.insert({"id": 1})
        b = table.insert({"id": 2})
        table.insert({"id": 3})
        middle = [r["id"] for r in table.created_between(b[CREATED_AT], b[CREATED_AT])]
        assert middle == [2]
        up_to_b = [r["id"] for r in table.created_between(None, b[CREATED_AT])]
        assert sorted(up_to_b) == [1, 2]

    def test_clear(self, table):
        table.insert({"id": 1})
        table.insert({"id": 2})
        removed = table.clear()
        assert len(removed) == 2
        assert len(table) == 0


class TestSecondaryIndexes:
    def test_create_index_backfills(self, table):
        table.insert({"id": 1, "name": "a"})
        table.insert({"id": 2, "name": "a"})
        table.create_index("by_name", ("name",))
        idx = table.index("by_name")
        assert len(idx.lookup("a")) == 2

    def test_unique_index_on_existing_violation(self, table):
        table.insert({"id": 1, "name": "a"})
        table.insert({"id": 2, "name": "a"})
        with pytest.raises(ConstraintViolation):
            table.create_index("uq_name", ("name",), unique=True)

    def test_duplicate_index_name(self, table):
        table.create_index("x", ("name",))
        with pytest.raises(SchemaError):
            table.create_index("x", ("name",))

    def test_index_maintained_on_update(self, table):
        row = table.insert({"id": 1, "name": "a"})
        table.create_index("by_name", ("name",))
        table.update_row(row[TID], {"name": "b"})
        idx = table.index("by_name")
        assert not idx.lookup("a")
        assert len(idx.lookup("b")) == 1

    def test_find_hash_index(self, table):
        assert table.find_hash_index("id") is not None
        assert table.find_hash_index("name") is None
