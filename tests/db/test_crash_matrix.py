"""The crash matrix: kill the engine at EVERY WAL boundary and recover.

The property under test (the durability contract):

    For every crash point -- before any WAL append, mid-record with a
    torn write, after an append but before its fsync, and at the fsync
    itself (with and without power loss) -- recovery yields a database
    that is an exact *prefix* of the committed-transaction sequence,
    byte-identical to an oracle that executed exactly those commits.

The oracle is built by running the same workload step-by-step on a
plain in-memory database and snapshotting after every committed unit;
snapshots are deterministic (tables sorted by name, rows by tid), so
byte equality is state equality.
"""

import pytest

from repro.db import Database, col, open_durable, recover, save_snapshot
from repro.db.wal import committed_transactions, read_wal
from repro.faults import CrashInjector, CrashPlan, SimulatedCrash

# ----------------------------------------------------------------------
# The workload: each step is exactly ONE committed unit (one auto-commit
# statement, one explicit transaction, or one DDL), except the rollback
# step which commits nothing.


def step_create(db):
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")


def step_insert(db):
    db.execute("INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')")


def step_txn(db):
    with db.transaction():
        db.update("t", {"v": "updated"}, col("id") == 1)
        db.insert("t", {"id": 3, "v": "c"})


def step_rollback(db):
    try:
        with db.transaction():
            db.insert("t", {"id": 99, "v": "never"})
            raise RuntimeError("abort")
    except RuntimeError:
        pass


def step_delete(db):
    db.delete("t", col("id") == 2)


def step_ddl_second_table(db):
    db.execute("CREATE TABLE u (x INTEGER)")


def step_insert_second(db):
    db.execute("INSERT INTO u (x) VALUES (10), (20)")


#: (step, committed units it adds)
WORKLOAD = [
    (step_create, 1),
    (step_insert, 1),
    (step_txn, 1),
    (step_rollback, 0),
    (step_delete, 1),
    (step_ddl_second_table, 1),
    (step_insert_second, 1),
]

TOTAL_UNITS = sum(units for _, units in WORKLOAD)


def state_bytes(database, tmp_path, tag):
    path = tmp_path / f"{tag}.snap"
    save_snapshot(database, path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def oracle_states(tmp_path_factory):
    """Byte image of the database after each committed unit (index = count)."""
    tmp_path = tmp_path_factory.mktemp("oracle")
    db = Database()  # same default name open_durable uses
    states = [state_bytes(db, tmp_path, "u0")]
    unit = 0
    for step, units in WORKLOAD:
        step(db)
        if units:
            unit += units
            states.append(state_bytes(db, tmp_path, f"u{unit}"))
    assert len(states) == TOTAL_UNITS + 1
    return states


def run_with_crash(directory, crash, fsync="always", group_commits=8):
    """Run the workload on a durable db armed with ``crash``.

    Returns True if the crash fired (the run "died"), False if the
    workload completed untouched.
    """
    db, manager = open_durable(
        directory, fsync=fsync, crash=crash, group_commits=group_commits
    )
    try:
        for step, _units in WORKLOAD:
            step(db)
        manager.close()  # the shutdown fsync is a crash point too
    except SimulatedCrash:
        return True  # the process is dead: no cleanup, no close()
    return False


def committed_units_on_disk(directory):
    """Independently count recoverable committed units from the files."""
    wal_files = sorted(directory.glob("wal-*.log"))
    assert len(wal_files) == 1  # the workload never checkpoints
    records, _good = read_wal(wal_files[0])
    return len(list(committed_transactions(records)))


def assert_recovers_to_committed_prefix(directory, tmp_path, oracle_states, tag):
    units = committed_units_on_disk(directory)
    recovered = recover(directory)
    assert (
        state_bytes(recovered, tmp_path, tag) == oracle_states[units]
    ), f"{tag}: recovered state is not the {units}-unit oracle prefix"
    return units


def sweep(tmp_path, oracle_states, make_plan, fsync="always"):
    """Crash at occurrence 0, 1, 2, ... of a point until the workload
    outruns the plan; verify prefix-consistent recovery every time."""
    occurrence = 0
    seen_units = []
    while True:
        directory = tmp_path / f"run-{occurrence}"
        crash = CrashInjector(make_plan(occurrence))
        died = run_with_crash(directory, crash, fsync=fsync)
        if not died:
            assert occurrence > 0, "the crash plan never fired at all"
            break
        units = assert_recovers_to_committed_prefix(
            directory, tmp_path, oracle_states, f"rec-{occurrence}"
        )
        seen_units.append(units)
        occurrence += 1
    # The crash matrix must actually walk forward through the workload:
    # start from (nearly) nothing and reach (nearly) everything.  A crash
    # *before* the final commit append can recover at most TOTAL-1 units;
    # a process-kill *after* it can recover all TOTAL.
    assert seen_units[0] <= 1
    assert seen_units[-1] >= TOTAL_UNITS - 1
    assert seen_units == sorted(seen_units)
    return occurrence


class TestCrashMatrix:
    def test_every_append_boundary(self, tmp_path, oracle_states):
        crashes = sweep(
            tmp_path, oracle_states, lambda at: CrashPlan("wal.append", at=at)
        )
        # One crash per WAL record the full workload writes.
        assert crashes >= TOTAL_UNITS * 2  # every unit has >= begin+commit

    def test_every_append_boundary_with_torn_write(self, tmp_path, oracle_states):
        sweep(
            tmp_path,
            oracle_states,
            lambda at: CrashPlan("wal.append", at=at, torn_bytes=6),
        )

    def test_every_post_append_with_power_loss(self, tmp_path, oracle_states):
        sweep(
            tmp_path,
            oracle_states,
            lambda at: CrashPlan("wal.post_append", at=at, power_loss=True),
        )

    def test_every_fsync_dropped_with_power_loss(self, tmp_path, oracle_states):
        sweep(
            tmp_path,
            oracle_states,
            lambda at: CrashPlan("wal.fsync", at=at, power_loss=True),
        )

    def test_every_fsync_dropped_process_kill(self, tmp_path, oracle_states):
        # Without power loss the buffered bytes survive: recovery may see
        # MORE than the fsynced prefix, but still only committed units.
        sweep(tmp_path, oracle_states, lambda at: CrashPlan("wal.fsync", at=at))

    def test_group_commit_power_loss(self, tmp_path, oracle_states):
        # fsync=interval: a power loss may drop a whole commit group
        # (that is the policy's stated window), but recovery must still
        # land exactly on a committed-prefix state, and the loss is
        # bounded by the group size.
        group = 2
        occurrence = 0
        seen_units = []
        while True:
            directory = tmp_path / f"gc-{occurrence}"
            crash = CrashInjector(
                CrashPlan("wal.post_append", at=occurrence, power_loss=True)
            )
            died = run_with_crash(
                directory, crash, fsync="interval", group_commits=group
            )
            if not died:
                break
            units = assert_recovers_to_committed_prefix(
                directory, tmp_path, oracle_states, f"gc-rec-{occurrence}"
            )
            seen_units.append(units)
            occurrence += 1
        assert seen_units == sorted(seen_units)
        assert seen_units[-1] >= TOTAL_UNITS - group

    def test_torn_tail_is_truncated_on_recovery(self, tmp_path, oracle_states):
        directory = tmp_path / "torn"
        crash = CrashInjector(CrashPlan("wal.append", at=5, torn_bytes=3))
        assert run_with_crash(directory, crash)
        wal_file = next(directory.glob("wal-*.log"))
        size_before = wal_file.stat().st_size
        _, good = read_wal(wal_file)
        assert good < size_before
        recover(directory)
        assert wal_file.stat().st_size == good  # tail physically removed

    def test_double_crash_during_recovery_window(self, tmp_path, oracle_states):
        # Crash, recover, crash again on the re-run, recover again: the
        # second recovery must still be prefix-consistent.
        directory = tmp_path / "double"
        assert run_with_crash(directory, CrashInjector(CrashPlan("wal.append", at=7)))
        units_first = committed_units_on_disk(directory)
        recovered = recover(directory)
        del recovered  # first recovery discarded: crash before reuse
        units_after = committed_units_on_disk(directory)
        assert units_after == units_first  # recovery itself commits nothing
        assert_recovers_to_committed_prefix(
            directory, tmp_path, oracle_states, "double"
        )
