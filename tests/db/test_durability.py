"""DurabilityManager: logged commits, checkpoints, full recovery."""

import pytest

from repro.core import datamodel
from repro.db import (
    Database,
    col,
    load_snapshot,
    open_durable,
    recover,
    save_snapshot,
)
from repro.db.schema import Column
from repro.db.types import INTEGER, TEXT
from repro.errors import DatabaseError
from repro.sync import NotificationCenter
from repro.sync.notification import T_CHANGED_ROWS


def state_bytes(database, tmp_path, tag):
    """Canonical byte image of a database (snapshots are deterministic)."""
    path = tmp_path / f"state-{tag}.snap"
    save_snapshot(database, path)
    return path.read_bytes()


@pytest.fixture
def durable(tmp_path):
    directory = tmp_path / "data"
    db, manager = open_durable(directory)
    yield directory, db, manager
    manager.close()


def seed(db):
    db.create_table(
        "items", [Column("id", INTEGER), Column("name", TEXT)], primary_key="id"
    )
    db.insert("items", {"id": 1, "name": "a"})
    db.insert("items", {"id": 2, "name": "b"})


class TestOpenDurable:
    def test_fresh_directory_initializes_generation_zero(self, durable):
        directory, _db, manager = durable
        assert (directory / "checkpoint-000000.snap").exists()
        assert (directory / "wal-000000.log").exists()
        assert manager.generation == 0

    def test_recover_empty_database(self, durable, tmp_path):
        directory, db, manager = durable
        manager.close()
        recovered = recover(directory)
        assert recovered.table_names() == []

    def test_recover_missing_directory_fails(self, tmp_path):
        with pytest.raises(DatabaseError, match="no checkpoint"):
            recover(tmp_path / "nothing")


class TestRecoveryFidelity:
    def test_all_dml_kinds_round_trip(self, durable, tmp_path):
        directory, db, manager = durable
        seed(db)
        db.update("items", {"name": "aa"}, col("id") == 1)
        db.delete("items", col("id") == 2)
        db.insert_many("items", [{"id": 3, "name": "c"}, {"id": 4, "name": "d"}])
        oracle = state_bytes(db, tmp_path, "oracle")
        manager.close()
        assert state_bytes(recover(directory), tmp_path, "rec") == oracle

    def test_transaction_round_trips_atomically(self, durable, tmp_path):
        directory, db, manager = durable
        seed(db)
        with db.transaction():
            db.insert("items", {"id": 3, "name": "c"})
            db.update("items", {"name": "x"}, col("id") == 1)
        oracle = state_bytes(db, tmp_path, "oracle")
        manager.close()
        assert state_bytes(recover(directory), tmp_path, "rec") == oracle

    def test_rolled_back_transaction_leaves_no_trace(self, durable, tmp_path):
        directory, db, manager = durable
        seed(db)
        oracle = state_bytes(db, tmp_path, "oracle")
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("items", {"id": 9, "name": "never"})
                raise RuntimeError("abort")
        manager.close()
        assert state_bytes(recover(directory), tmp_path, "rec") == oracle

    def test_ddl_round_trips(self, durable, tmp_path):
        directory, db, manager = durable
        seed(db)
        db.execute("CREATE TABLE extra (x INTEGER)")
        db.execute("INSERT INTO extra (x) VALUES (1)")
        db.drop_table("items")
        oracle = state_bytes(db, tmp_path, "oracle")
        manager.close()
        recovered = recover(directory)
        assert recovered.table_names() == ["extra"]
        assert state_bytes(recovered, tmp_path, "rec") == oracle

    def test_clock_continues_after_recovery(self, durable):
        directory, db, manager = durable
        seed(db)
        pre_crash = db.now()
        manager.close()
        recovered = recover(directory)
        assert recovered.now() == pre_crash
        assert recovered.tick() > pre_crash

    def test_tids_continue_after_recovery(self, durable):
        directory, db, manager = durable
        seed(db)
        tids = {row["__tid__"] for row in db.table("items").rows()}
        manager.close()
        recovered = recover(directory)
        fresh = recovered.insert("items", {"id": 5, "name": "e"})
        assert fresh["__tid__"] not in tids


class TestCheckpointing:
    def test_checkpoint_rotates_generation(self, durable, tmp_path):
        directory, db, manager = durable
        seed(db)
        manager.checkpoint()
        assert manager.generation == 1
        assert not (directory / "checkpoint-000000.snap").exists()
        assert not (directory / "wal-000000.log").exists()
        db.insert("items", {"id": 3, "name": "post-checkpoint"})
        oracle = state_bytes(db, tmp_path, "oracle")
        manager.close()
        assert state_bytes(recover(directory), tmp_path, "rec") == oracle

    def test_auto_checkpoint_after_n_commits(self, tmp_path):
        db, manager = open_durable(tmp_path / "data", checkpoint_every=3)
        seed(db)  # 3 commits: create + 2 inserts
        assert manager.checkpoints == 1
        manager.close()

    def test_reopen_continues_transaction_ids(self, tmp_path):
        directory = tmp_path / "data"
        db, manager = open_durable(directory)
        seed(db)
        manager.close()
        db2, manager2 = open_durable(directory)
        db2.insert("items", {"id": 3, "name": "c"})
        manager2.close()
        # All txn ids in the segment must be distinct -- a reused id would
        # make recovery interleave two different transactions.
        from repro.db.wal import read_wal

        records, _ = read_wal(directory / "wal-000000.log")
        begin_ids = [r.payload["x"] for r in records if r.kind == "b"]
        assert len(begin_ids) == len(set(begin_ids))

    def test_stats_counters(self, durable):
        _directory, db, manager = durable
        seed(db)
        stats = manager.stats()
        assert stats["commits"] == 3
        assert stats["wal_appends"] >= 7  # 1 ddl + 2 * (begin, op, commit)
        assert stats["generation"] == 0


class TestNotificationTablesSurviveRestart:
    """The seq-no/tombstone tables are ordinary tables: WAL-covered."""

    def _center_with_traffic(self, db):
        db.create_table("pts", [Column("id", INTEGER)], primary_key="id")
        center = NotificationCenter(db)
        center.watch("pts")
        db.insert("pts", {"id": 1})
        db.insert("pts", {"id": 2})
        db.update("pts", {"id": 3}, col("id") == 2)
        return center

    def test_snapshot_round_trip(self, tmp_path):
        db = Database()
        self._center_with_traffic(db)
        path = tmp_path / "s.snap"
        save_snapshot(db, path)
        restored = load_snapshot(path)
        for table in (datamodel.T_NOTIFICATION, T_CHANGED_ROWS):
            assert [dict(r) for r in restored.table(table).rows()] == [
                dict(r) for r in db.table(table).rows()
            ]

    def test_sequence_numbers_continue_after_recovery(self, tmp_path):
        directory = tmp_path / "data"
        db, manager = open_durable(directory)
        self._center_with_traffic(db)
        top = max(r["seq_no"] for r in db.table(datamodel.T_NOTIFICATION).rows())
        manager.close()

        recovered = recover(directory)
        center2 = NotificationCenter(recovered)
        center2.watch("pts")
        recovered.insert("pts", {"id": 10})
        new_seqs = [
            r["seq_no"]
            for r in recovered.table(datamodel.T_NOTIFICATION).rows()
            if r["seq_no"] > top
        ]
        assert new_seqs  # the new center continued, not restarted, the sequence
        assert min(new_seqs) == top + 1
