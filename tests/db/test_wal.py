"""WAL framing, torn-tail detection, fsync policies, txn grouping."""

import os

import pytest

from repro.db.wal import (
    FSYNC_ALWAYS,
    FSYNC_INTERVAL,
    FSYNC_NEVER,
    KIND_BEGIN,
    KIND_COMMIT,
    KIND_DDL,
    KIND_OP,
    WriteAheadLog,
    committed_transactions,
    encode_record,
    read_wal,
    truncate_torn_tail,
)
from repro.errors import DatabaseError
from repro.faults import CrashInjector, CrashPlan, SimulatedCrash


class TestFraming:
    def test_encode_is_crc_space_json_newline(self):
        data = encode_record({"k": "b", "x": 1})
        assert data.endswith(b"\n")
        assert data[8:9] == b" "
        int(data[:8], 16)  # valid hex CRC

    def test_round_trip_through_read_wal(self, tmp_path):
        path = tmp_path / "wal.log"
        payloads = [{"k": "b", "x": 1}, {"k": "o", "x": 1, "op": "i", "t": "t"}]
        path.write_bytes(b"".join(encode_record(p) for p in payloads))
        records, offset = read_wal(path)
        assert [r.payload for r in records] == payloads
        assert offset == path.stat().st_size

    def test_non_json_payload_is_refused(self):
        with pytest.raises(DatabaseError, match="JSON"):
            encode_record({"k": "o", "bad": object()})

    @pytest.mark.parametrize(
        "damage",
        [
            lambda d: d[: len(d) // 2],  # partial line (no newline)
            lambda d: d[:3] + b"f" + d[4:],  # CRC mismatch
            lambda d: d[:9] + b"not json\n",  # unparsable body
            lambda d: b"x" * 5,  # too short to frame
        ],
    )
    def test_damaged_tail_marks_cut_point(self, tmp_path, damage):
        path = tmp_path / "wal.log"
        good = encode_record({"k": "b", "x": 1}) + encode_record(
            {"k": "c", "x": 1, "clk": 2}
        )
        path.write_bytes(good + damage(encode_record({"k": "b", "x": 2})))
        records, offset = read_wal(path)
        assert len(records) == 2
        assert offset == len(good)

    def test_records_after_damage_are_discarded_even_if_intact(self, tmp_path):
        # A good-looking record AFTER the tear belongs to the crash.
        path = tmp_path / "wal.log"
        good = encode_record({"k": "b", "x": 1})
        path.write_bytes(good + b"garbage\n" + encode_record({"k": "c", "x": 1}))
        records, offset = read_wal(path)
        assert len(records) == 1
        assert offset == len(good)

    def test_truncate_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        good = encode_record({"k": "b", "x": 1})
        path.write_bytes(good + b"torn")
        _, offset = read_wal(path)
        assert truncate_torn_tail(path, offset) == 4
        assert path.stat().st_size == len(good)
        assert truncate_torn_tail(path, offset) == 0  # idempotent


class TestFsyncPolicies:
    def test_always_syncs_every_commit(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", fsync=FSYNC_ALWAYS)
        for txn in range(3):
            wal.append({"k": KIND_BEGIN, "x": txn})
            wal.append({"k": KIND_COMMIT, "x": txn, "clk": txn})
            wal.commit_point()
        assert wal.syncs == 3
        assert wal.synced_offset == wal.offset
        wal.close()

    def test_never_never_syncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", fsync=FSYNC_NEVER)
        for txn in range(5):
            wal.append({"k": KIND_COMMIT, "x": txn, "clk": txn})
            wal.commit_point()
        assert wal.syncs == 0
        wal.close()
        # Data still hits the file through the OS (process-kill safety).
        records, _ = read_wal(tmp_path / "w.log")
        assert len(records) == 5

    def test_interval_groups_commits(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "w.log",
            fsync=FSYNC_INTERVAL,
            group_commits=4,
            group_interval_ms=60_000,  # too long to trigger on time
        )
        for txn in range(8):
            wal.append({"k": KIND_COMMIT, "x": txn, "clk": txn})
            wal.commit_point()
        assert wal.syncs == 2  # 8 commits / group of 4
        wal.close()

    def test_interval_log_writer_syncs_on_time(self, tmp_path):
        import time

        wal = WriteAheadLog(
            tmp_path / "w.log",
            fsync=FSYNC_INTERVAL,
            group_commits=1000,  # count trigger never fires
            group_interval_ms=10.0,
        )
        assert wal._writer is not None and wal._writer.is_alive()
        wal.append({"k": KIND_COMMIT, "x": 1, "clk": 1})
        wal.commit_point()  # enqueues; returns without touching the disk
        wal.drain()  # records written + flushed by the writer thread
        assert wal.offset > 0
        deadline = time.monotonic() + 2.0
        while wal.synced_offset < wal.offset and time.monotonic() < deadline:
            time.sleep(0.01)
        assert wal.synced_offset == wal.offset  # time trigger fired
        assert wal.syncs >= 1
        wal.close()

    def test_interval_log_writer_preserves_record_order(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "w.log",
            fsync=FSYNC_INTERVAL,
            group_commits=64,
            group_interval_ms=60_000,
        )
        for txn in range(20):
            wal.append({"k": KIND_BEGIN, "x": txn})
            wal.append({"k": KIND_COMMIT, "x": txn, "clk": txn})
            wal.commit_point()
        wal.close()
        records, _ = read_wal(tmp_path / "w.log")
        xs = [r.payload["x"] for r in records if r.kind == KIND_COMMIT]
        assert xs == list(range(20))
        assert wal.commits == 20

    def test_interval_backpressure_bounds_inflight_commits(self, tmp_path):
        # group_commits=1 degrades to fully synchronous: every commit
        # waits for the writer to land it before returning.
        wal = WriteAheadLog(
            tmp_path / "w.log",
            fsync=FSYNC_INTERVAL,
            group_commits=1,
            group_interval_ms=60_000,
        )
        for txn in range(5):
            wal.append({"k": KIND_COMMIT, "x": txn, "clk": txn})
            wal.commit_point()
            assert wal._pending_commits == 0  # landed before return
        wal.close()
        records, _ = read_wal(tmp_path / "w.log")
        assert len(records) == 5

    def test_interval_under_crash_injection_stays_synchronous(self, tmp_path):
        # The injector must fire on the committing thread, so no writer
        # thread is started and both triggers run at commit time.
        crash = CrashInjector()
        wal = WriteAheadLog(
            tmp_path / "w.log",
            fsync=FSYNC_INTERVAL,
            group_commits=1000,
            group_interval_ms=0.0,  # every commit is past the window
            crash=crash,
        )
        assert wal._writer is None
        wal.append({"k": KIND_COMMIT, "x": 1, "clk": 1})
        wal.commit_point()
        assert wal.syncs == 1  # synchronous time trigger
        wal.close()

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(DatabaseError, match="fsync policy"):
            WriteAheadLog(tmp_path / "w.log", fsync="sometimes")

    def test_append_continues_existing_segment(self, tmp_path):
        path = tmp_path / "w.log"
        wal = WriteAheadLog(path)
        wal.append({"k": KIND_DDL, "op": "create", "t": "a", "clk": 1})
        wal.close()
        wal = WriteAheadLog(path)
        wal.append({"k": KIND_DDL, "op": "create", "t": "b", "clk": 2})
        wal.close()
        records, _ = read_wal(path)
        assert [r.payload["t"] for r in records] == ["a", "b"]


class TestCrashPoints:
    def test_crash_before_append_leaves_no_trace(self, tmp_path):
        crash = CrashInjector(CrashPlan("wal.append", at=1))
        wal = WriteAheadLog(tmp_path / "w.log", crash=crash)
        wal.append({"k": KIND_BEGIN, "x": 1})
        with pytest.raises(SimulatedCrash):
            wal.append({"k": KIND_COMMIT, "x": 1, "clk": 1})
        records, _ = read_wal(tmp_path / "w.log")
        assert [r.kind for r in records] == [KIND_BEGIN]

    def test_torn_write_leaves_partial_record(self, tmp_path):
        crash = CrashInjector(CrashPlan("wal.append", at=1, torn_bytes=5))
        wal = WriteAheadLog(tmp_path / "w.log", crash=crash)
        wal.append({"k": KIND_BEGIN, "x": 1})
        with pytest.raises(SimulatedCrash):
            wal.append({"k": KIND_COMMIT, "x": 1, "clk": 1})
        size = os.path.getsize(tmp_path / "w.log")
        records, offset = read_wal(tmp_path / "w.log")
        assert [r.kind for r in records] == [KIND_BEGIN]
        assert offset < size  # the torn 5 bytes are detected as damage

    def test_power_loss_drops_unsynced_bytes(self, tmp_path):
        crash = CrashInjector(CrashPlan("wal.fsync", at=1, power_loss=True))
        wal = WriteAheadLog(tmp_path / "w.log", fsync=FSYNC_ALWAYS, crash=crash)
        wal.append({"k": KIND_COMMIT, "x": 1, "clk": 1})
        wal.commit_point()  # first fsync survives
        wal.append({"k": KIND_COMMIT, "x": 2, "clk": 2})
        with pytest.raises(SimulatedCrash):
            wal.commit_point()  # second fsync is the crash
        records, _ = read_wal(tmp_path / "w.log")
        assert [r.payload["x"] for r in records] == [1]

    def test_process_kill_keeps_buffered_bytes(self, tmp_path):
        # Same crash point without power_loss: write(2)-handed-over data
        # survives a process kill.
        crash = CrashInjector(CrashPlan("wal.fsync", at=1))
        wal = WriteAheadLog(tmp_path / "w.log", fsync=FSYNC_ALWAYS, crash=crash)
        wal.append({"k": KIND_COMMIT, "x": 1, "clk": 1})
        wal.commit_point()
        wal.append({"k": KIND_COMMIT, "x": 2, "clk": 2})
        with pytest.raises(SimulatedCrash):
            wal.commit_point()
        records, _ = read_wal(tmp_path / "w.log")
        assert [r.payload["x"] for r in records] == [1, 2]


class TestCommittedTransactions:
    def test_groups_in_commit_order(self, tmp_path):
        path = tmp_path / "w.log"
        payloads = [
            {"k": KIND_BEGIN, "x": 1},
            {"k": KIND_OP, "x": 1, "op": "i", "t": "t", "r": {}},
            {"k": KIND_COMMIT, "x": 1, "clk": 5},
            {"k": KIND_DDL, "op": "create", "t": "u", "clk": 6},
            {"k": KIND_BEGIN, "x": 2},
            {"k": KIND_COMMIT, "x": 2, "clk": 7},
        ]
        path.write_bytes(b"".join(encode_record(p) for p in payloads))
        records, _ = read_wal(path)
        groups = list(committed_transactions(records))
        assert [clk for clk, _ in groups] == [5, 6, 7]
        assert len(groups[0][1]) == 1  # the single op
        assert groups[1][1][0]["k"] == KIND_DDL

    def test_in_flight_transaction_is_dropped(self, tmp_path):
        path = tmp_path / "w.log"
        payloads = [
            {"k": KIND_BEGIN, "x": 1},
            {"k": KIND_COMMIT, "x": 1, "clk": 1},
            {"k": KIND_BEGIN, "x": 2},  # crashed before committing
            {"k": KIND_OP, "x": 2, "op": "i", "t": "t", "r": {}},
        ]
        path.write_bytes(b"".join(encode_record(p) for p in payloads))
        records, _ = read_wal(path)
        groups = list(committed_transactions(records))
        assert len(groups) == 1
        assert groups[0][0] == 1
