"""Cost-aware routing: range scans, composite probes, pushdown, join choice.

The overarching property: every routed plan must return exactly the rows
(and row order) of the naive full-scan plan -- routing is purely a cost
transformation.  Several tests below compare ``optimize=True`` against
``optimize=False`` plans over the same statement to enforce that.
"""

import random

import pytest

from repro.db import Column, Database
from repro.db.algebra import (
    CompositeIndexScan,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    RangeIndexScan,
    Scan,
)
from repro.db.schema import CREATED_AT
from repro.db.sql.parser import parse
from repro.db.sql.planner import plan_select
from repro.db.types import INTEGER, TEXT

ROWS = 300


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "ev",
        [
            Column("id", INTEGER, nullable=False),
            Column("kind", TEXT),
            Column("shard", INTEGER),
            Column("seq", INTEGER),
        ],
        primary_key="id",
    )
    table = database.table("ev")
    table.create_index("ix_ev_seq", ("seq",), sorted=True)
    table.create_index("ix_ev_kind_shard", ("kind", "shard"))
    for i in range(ROWS):
        database.insert(
            "ev", {"id": i, "kind": f"k{i % 3}", "shard": i % 7, "seq": i * 2}
        )
    return database


def leaves(plan):
    out = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(
            node, (Scan, IndexScan, RangeIndexScan, CompositeIndexScan)
        ):
            out.append(node)
        stack.extend(node.children())
    return out


def plans_for(db, sql):
    stmt = parse(sql)
    routed = plan_select(stmt, db, ())
    naive = plan_select(stmt, db, (), optimize=False)
    return routed, naive


def assert_equivalent(db, sql):
    routed, naive = plans_for(db, sql)
    assert routed.to_list(db) == naive.to_list(db)
    return routed


class TestRangeRouting:
    def test_upper_bound_routes(self, db):
        routed = assert_equivalent(db, "SELECT * FROM ev WHERE seq < 20")
        (leaf,) = leaves(routed)
        assert isinstance(leaf, RangeIndexScan)
        assert leaf.column == "seq"
        assert leaf.high == 20 and not leaf.include_high
        assert leaf.low is None

    def test_bounds_merge_across_conjuncts(self, db):
        routed = assert_equivalent(
            db, "SELECT * FROM ev WHERE seq >= 10 AND seq < 40 AND seq > 12"
        )
        (leaf,) = leaves(routed)
        assert isinstance(leaf, RangeIndexScan)
        assert leaf.low == 12 and not leaf.include_low  # tightest wins
        assert leaf.high == 40 and not leaf.include_high

    def test_between_routes(self, db):
        routed = assert_equivalent(
            db, "SELECT * FROM ev WHERE seq BETWEEN 100 AND 120"
        )
        (leaf,) = leaves(routed)
        assert isinstance(leaf, RangeIndexScan)
        assert leaf.low == 100 and leaf.include_low
        assert leaf.high == 120 and leaf.include_high

    def test_created_at_range_routes(self, db):
        # The implicit per-table creation index (isolation predicates).
        snapshot = db.now()
        routed, naive = plans_for(
            db, f"SELECT * FROM ev WHERE {CREATED_AT} <= {snapshot}"
        )
        (leaf,) = leaves(routed)
        assert isinstance(leaf, RangeIndexScan)
        assert leaf.column == CREATED_AT
        assert routed.to_list(db) == naive.to_list(db)

    def test_range_plus_residual_filter(self, db):
        routed = assert_equivalent(
            db, "SELECT * FROM ev WHERE seq < 100 AND kind = 'k1'"
        )
        # kind alone has no single-column index: it stays a residual filter
        # above the range leaf.
        (leaf,) = leaves(routed)
        assert isinstance(leaf, RangeIndexScan)

    def test_explain_shows_range_scan(self, db):
        text = db.explain("SELECT * FROM ev WHERE seq >= 6 AND seq <= 8")
        assert "RangeIndexScan ev.seq in [6, 8]" in text
        assert not any(
            line.strip().startswith("Scan ") for line in text.splitlines()
        )


class TestCompositeRouting:
    def test_composite_equality_routes(self, db):
        routed = assert_equivalent(
            db, "SELECT * FROM ev WHERE kind = 'k2' AND shard = 4"
        )
        (leaf,) = leaves(routed)
        assert isinstance(leaf, CompositeIndexScan)
        assert set(leaf.columns) == {"kind", "shard"}

    def test_partial_composite_does_not_route(self, db):
        # Only one column of the composite key: no usable index.
        routed = assert_equivalent(db, "SELECT * FROM ev WHERE shard = 4")
        (leaf,) = leaves(routed)
        assert isinstance(leaf, Scan)

    def test_cheapest_candidate_wins(self, db):
        # id = 7 narrows to one row; the composite bucket holds many --
        # the point probe must win.
        routed = assert_equivalent(
            db, "SELECT * FROM ev WHERE id = 7 AND kind = 'k1' AND shard = 0"
        )
        (leaf,) = leaves(routed)
        assert isinstance(leaf, IndexScan)
        assert leaf.column == "id"


class TestPushdownAndJoins:
    @pytest.fixture
    def join_db(self, db):
        db.create_table(
            "kinds",
            [Column("kind", TEXT, nullable=False), Column("label", TEXT)],
            primary_key="kind",
        )
        # Big enough that probing beats building a hash table on it.
        for k in range(100):
            db.insert("kinds", {"kind": f"k{k}", "label": f"label{k}"})
        return db

    def test_left_side_conjunct_pushed_and_routed(self, join_db):
        routed = assert_equivalent(
            join_db,
            "SELECT * FROM ev JOIN kinds ON ev.kind = kinds.kind "
            "WHERE ev.seq < 10",
        )
        assert any(isinstance(leaf, RangeIndexScan) for leaf in leaves(routed))

    def test_right_side_conjunct_not_pushed_below_left_join(self, join_db):
        sql = (
            "SELECT * FROM ev LEFT JOIN kinds ON ev.kind = kinds.kind "
            "WHERE kinds.label = 'label1'"
        )
        routed, naive = plans_for(join_db, sql)
        assert routed.to_list(join_db) == naive.to_list(join_db)

    def test_index_nested_loop_chosen_for_small_outer(self, join_db):
        # id = 3 bounds the outer side to one row; kinds has a pk hash
        # index on the join column.
        stmt = parse(
            "SELECT * FROM ev JOIN kinds ON ev.kind = kinds.kind "
            "WHERE ev.id = 3"
        )
        routed = plan_select(stmt, join_db, ())
        nodes = [routed]
        found = []
        while nodes:
            node = nodes.pop()
            if isinstance(node, IndexNestedLoopJoin):
                found.append(node)
            nodes.extend(node.children())
        assert len(found) == 1
        naive = plan_select(stmt, join_db, (), optimize=False)
        assert routed.to_list(join_db) == naive.to_list(join_db)

    def test_large_outer_keeps_hash_join(self, join_db):
        stmt = parse("SELECT * FROM ev JOIN kinds ON ev.kind = kinds.kind")
        routed = plan_select(stmt, join_db, ())
        nodes, kinds_join = [routed], []
        while nodes:
            node = nodes.pop()
            if isinstance(node, (HashJoin, IndexNestedLoopJoin)):
                kinds_join.append(node)
            nodes.extend(node.children())
        assert all(isinstance(j, HashJoin) for j in kinds_join)


class TestPropertyEquivalence:
    def test_random_range_queries_match_full_scan(self, db):
        rng = random.Random(42)
        ops = ["<", "<=", ">", ">="]
        for _ in range(40):
            bound = rng.randrange(-10, 2 * ROWS + 10)
            op = rng.choice(ops)
            sql = f"SELECT * FROM ev WHERE seq {op} {bound}"
            assert_equivalent(db, sql)

    def test_random_two_sided_ranges_match_full_scan(self, db):
        rng = random.Random(7)
        for _ in range(40):
            low = rng.randrange(0, 2 * ROWS)
            high = low + rng.randrange(0, 80)
            sql = (
                f"SELECT * FROM ev WHERE seq >= {low} AND seq <= {high} "
                f"ORDER BY id"
            )
            assert_equivalent(db, sql)

    def test_point_probes_match_full_scan(self, db):
        for i in (-1, 0, 5, ROWS - 1, ROWS, ROWS + 50):
            assert_equivalent(db, f"SELECT * FROM ev WHERE id = {i}")

    def test_contradictory_equalities_empty(self, db):
        routed = assert_equivalent(
            db, "SELECT * FROM ev WHERE id = 1 AND id = 2"
        )
        assert routed.to_list(db) == []


class TestRoutedMutations:
    def test_update_via_point_probe(self, db):
        count = db.execute("UPDATE ev SET kind = 'z' WHERE id = 5").rowcount
        assert count == 1
        assert db.query("SELECT kind FROM ev WHERE id = 5")[0]["kind"] == "z"

    def test_update_via_range(self, db):
        count = db.execute("UPDATE ev SET kind = 'r' WHERE seq < 10").rowcount
        assert count == 5
        assert len(db.query("SELECT * FROM ev WHERE kind = 'r'")) == 5

    def test_delete_via_range(self, db):
        count = db.execute("DELETE FROM ev WHERE seq >= 580").rowcount
        assert count == 10
        assert len(db.query("SELECT * FROM ev")) == ROWS - 10

    def test_update_fires_triggers_with_routed_where(self, db):
        seen = []
        db.on("ev", "update", lambda change: seen.append(len(change.updated)))
        db.execute("UPDATE ev SET shard = 99 WHERE id = 3")
        assert seen == [1]

    def test_routed_delete_matches_unrouted_semantics(self, db):
        # Same predicate, one routable and one not (arithmetic defeats
        # routing); both must delete the same rows.
        other = Database()
        other.create_table(
            "ev",
            [Column("id", INTEGER, nullable=False), Column("seq", INTEGER)],
            primary_key="id",
        )
        for i in range(50):
            other.insert("ev", {"id": i, "seq": i * 2})
        removed_routed = other.execute("DELETE FROM ev WHERE seq <= 20").rowcount
        fresh = Database()
        fresh.create_table(
            "ev",
            [Column("id", INTEGER, nullable=False), Column("seq", INTEGER)],
            primary_key="id",
        )
        for i in range(50):
            fresh.insert("ev", {"id": i, "seq": i * 2})
        removed_scan = fresh.execute(
            "DELETE FROM ev WHERE seq + 0 <= 20"
        ).rowcount
        assert removed_routed == removed_scan == 11


class TestExplainAnalyze:
    def test_row_counters_rendered(self, db):
        text = db.explain("SELECT * FROM ev WHERE seq < 10", analyze=True)
        assert "RangeIndexScan ev.seq in (-inf, 10) (rows=5)" in text
        assert "KeepAll (rows=5)" in text

    def test_sql_explain_statement(self, db):
        result = db.execute("EXPLAIN SELECT * FROM ev WHERE id = 1")
        text = "\n".join(row["plan"] for row in result)
        assert "IndexScan ev.id = 1" in text

    def test_sql_explain_analyze_statement(self, db):
        result = db.execute(
            "EXPLAIN ANALYZE SELECT * FROM ev WHERE seq BETWEEN 0 AND 8"
        )
        text = "\n".join(row["plan"] for row in result)
        assert "(rows=5)" in text

    def test_explain_rejects_non_select(self, db):
        from repro.errors import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            db.execute("EXPLAIN DELETE FROM ev")


class TestIsolationAndNotificationRouting:
    def test_isolation_snapshot_results_unchanged(self, db):
        from repro.workflow import WorkflowEngine
        from repro.workflow.isolation import IsolationContext

        engine = WorkflowEngine(db)
        engine.isolation.manage("ev")
        snapshot = db.now()
        ctx = IsolationContext(1, snapshot, snapshot)
        db.insert("ev", {"id": 9999, "kind": "new", "shard": 0, "seq": -1})
        rows = engine.isolation.query("SELECT * FROM ev", (), ctx)
        assert len(rows) == ROWS  # the post-snapshot row is invisible
        assert all(row["id"] != 9999 for row in rows)

    def test_deletion_table_is_indexed(self, db):
        from repro.workflow import WorkflowEngine

        engine = WorkflowEngine(db)
        engine.isolation.manage("ev")
        deletion = db.table("ev_deleted")
        assert deletion.find_hash_index("pid") is not None
        assert deletion.find_sorted_index("process_end") is not None

    def test_notification_seq_scans_routed(self, db):
        from repro.core import datamodel
        from repro.sync.notification import NotificationCenter

        center = NotificationCenter(db)
        center.watch("ev")
        for i in range(20):
            db.insert(
                "ev", {"id": 1000 + i, "kind": "n", "shard": 0, "seq": 9000 + i}
            )
        notes = center.notifications_since("ev", 0)
        assert len(notes) == 20
        assert notes == sorted(notes)
        # The notification table carries a sorted seq_no index, so SQL
        # range queries over it route too.
        text = db.explain(
            f"SELECT * FROM {datamodel.T_NOTIFICATION} WHERE seq_no > 10"
        )
        assert "RangeIndexScan" in text

    def test_changes_since_tail(self, db):
        from repro.sync.notification import NotificationCenter

        center = NotificationCenter(db)
        center.watch("ev")
        db.insert("ev", {"id": 2000, "kind": "a", "shard": 0, "seq": 8000})
        newest, changes = center.changes_since("ev", 0)
        assert len(changes) == 1
        newest2, changes2 = center.changes_since("ev", newest)
        assert changes2 == []
        assert newest2 == newest
