"""Delta construction and inversion."""

from repro.db.table import ChangeSet
from repro.ivm import Delta, row_key


class TestFromChangeset:
    def test_updates_split_into_delete_insert(self):
        change = ChangeSet(
            "t",
            inserted=[{"a": 1}],
            updated=[({"a": 2}, {"a": 3})],
            deleted=[{"a": 4}],
        )
        delta = Delta.from_changeset(change)
        assert delta.inserted == [{"a": 1}, {"a": 3}]
        assert delta.deleted == [{"a": 4}, {"a": 2}]

    def test_length(self):
        delta = Delta("t", inserted=[{"a": 1}], deleted=[{"a": 2}, {"a": 3}])
        assert len(delta) == 3

    def test_emptiness(self):
        assert Delta("t").is_empty()
        assert not Delta("t", inserted=[{}]).is_empty()

    def test_constructors(self):
        ins = Delta.insertions("t", [{"a": 1}])
        assert ins.inserted and not ins.deleted
        dels = Delta.deletions("t", [{"a": 1}])
        assert dels.deleted and not dels.inserted

    def test_inverted(self):
        delta = Delta("t", inserted=[{"a": 1}], deleted=[{"a": 2}])
        inverse = delta.inverted()
        assert inverse.inserted == [{"a": 2}]
        assert inverse.deleted == [{"a": 1}]


class TestRowKey:
    def test_ignores_hidden_fields(self):
        assert row_key({"a": 1, "__tid__": 5}) == row_key({"a": 1, "__tid__": 9})

    def test_distinguishes_values(self):
        assert row_key({"a": 1}) != row_key({"a": 2})

    def test_order_insensitive(self):
        assert row_key({"a": 1, "b": 2}) == row_key({"b": 2, "a": 1})
