"""Materialized views under incremental maintenance."""

import pytest

from repro.db import AggSpec, Column, Database, col
from repro.db.types import INTEGER, TEXT
from repro.errors import ViewError
from repro.ivm import (
    AggregateView,
    Delta,
    JoinView,
    SelectProjectView,
    ViewRegistry,
    apply_delta,
)


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "orders",
        [
            Column("id", INTEGER, nullable=False),
            Column("customer", TEXT),
            Column("amount", INTEGER),
        ],
        primary_key="id",
    )
    database.create_table(
        "customers",
        [Column("name", TEXT), Column("city", TEXT)],
    )
    return database


@pytest.fixture
def registry(db):
    return ViewRegistry(db)


class TestSelectProjectView:
    def test_populate_and_maintain(self, db, registry):
        view = registry.register(
            SelectProjectView("big", "orders", where=col("amount") > 10)
        )
        db.insert("orders", {"id": 1, "customer": "a", "amount": 5})
        db.insert("orders", {"id": 2, "customer": "b", "amount": 20})
        assert len(view) == 1
        assert view.rows()[0]["customer"] == "b"

    def test_delete_maintains(self, db, registry):
        view = registry.register(SelectProjectView("all", "orders"))
        db.insert("orders", {"id": 1, "customer": "a", "amount": 5})
        db.delete("orders", col("id") == 1)
        assert len(view) == 0

    def test_update_moves_row_across_predicate(self, db, registry):
        view = registry.register(
            SelectProjectView("big", "orders", where=col("amount") > 10)
        )
        db.insert("orders", {"id": 1, "customer": "a", "amount": 5})
        assert len(view) == 0
        db.update("orders", {"amount": 50}, col("id") == 1)
        assert len(view) == 1
        db.update("orders", {"amount": 1}, col("id") == 1)
        assert len(view) == 0

    def test_projection(self, db, registry):
        view = registry.register(
            SelectProjectView(
                "names", "orders", project=[("who", col("customer"))]
            )
        )
        db.insert("orders", {"id": 1, "customer": "a", "amount": 5})
        assert view.rows() == [{"who": "a"}]

    def test_duplicates_counted(self, db, registry):
        view = registry.register(
            SelectProjectView("cities", "customers", project=[("city", col("city"))])
        )
        db.insert("customers", {"name": "a", "city": "x"})
        db.insert("customers", {"name": "b", "city": "x"})
        assert len(view) == 2
        db.delete("customers", col("name") == "a")
        assert len(view) == 1  # one 'x' remains

    def test_matches_recompute(self, db, registry):
        view = registry.register(
            SelectProjectView("big", "orders", where=col("amount") > 10)
        )
        for i in range(20):
            db.insert("orders", {"id": i, "customer": "c", "amount": i})
        db.delete("orders", col("amount") < 5)
        db.update("orders", {"amount": 100}, col("id") == 7)
        incremental = sorted(r["id"] for r in view.rows())
        view.recompute(db)
        recomputed = sorted(r["id"] for r in view.rows())
        assert incremental == recomputed


class TestJoinView:
    def test_populate_and_both_side_deltas(self, db, registry):
        view = registry.register(
            JoinView("oc", "orders", "customers", "customer", "name")
        )
        db.insert("customers", {"name": "a", "city": "paris"})
        db.insert("orders", {"id": 1, "customer": "a", "amount": 5})
        assert len(view) == 1
        assert view.rows()[0]["city"] == "paris"
        # Right-side delta joins against existing left rows.
        db.insert("customers", {"name": "a", "city": "lyon"})
        assert len(view) == 2

    def test_delete_right_side(self, db, registry):
        view = registry.register(
            JoinView("oc", "orders", "customers", "customer", "name")
        )
        db.insert("customers", {"name": "a", "city": "paris"})
        db.insert("orders", {"id": 1, "customer": "a", "amount": 5})
        db.delete("customers", col("city") == "paris")
        assert len(view) == 0

    def test_join_with_predicate_and_projection(self, db, registry):
        view = registry.register(
            JoinView(
                "big_paris",
                "orders",
                "customers",
                "customer",
                "name",
                where=col("amount") > 10,
                project=[("id", col("id")), ("city", col("city"))],
            )
        )
        db.insert("customers", {"name": "a", "city": "paris"})
        db.insert("orders", {"id": 1, "customer": "a", "amount": 5})
        db.insert("orders", {"id": 2, "customer": "a", "amount": 50})
        assert view.rows() == [{"id": 2, "city": "paris"}]

    def test_null_keys_never_join(self, db, registry):
        view = registry.register(
            JoinView("oc", "orders", "customers", "customer", "name")
        )
        db.insert("customers", {"name": None, "city": "niltown"})
        db.insert("orders", {"id": 1, "customer": None, "amount": 5})
        assert len(view) == 0

    def test_self_join_rejected(self):
        with pytest.raises(ViewError):
            JoinView("bad", "t", "t", "a", "a")

    def test_matches_recompute(self, db, registry):
        view = registry.register(
            JoinView("oc", "orders", "customers", "customer", "name")
        )
        for i in range(10):
            db.insert("customers", {"name": f"c{i % 3}", "city": f"city{i}"})
            db.insert("orders", {"id": i, "customer": f"c{i % 4}", "amount": i})
        db.delete("orders", col("amount") < 3)
        incremental = sorted(
            (r["id"], r["city"]) for r in view.rows()
        )
        view.recompute(db)
        recomputed = sorted((r["id"], r["city"]) for r in view.rows())
        assert incremental == recomputed


class TestAggregateView:
    def make(self, db, registry, where=None):
        return registry.register(
            AggregateView(
                "by_customer",
                "orders",
                group_by=["customer"],
                aggregates=[
                    AggSpec("SUM", col("amount"), "total"),
                    AggSpec("COUNT", None, "n"),
                    AggSpec("AVG", col("amount"), "mean"),
                    AggSpec("MIN", col("amount"), "lo"),
                    AggSpec("MAX", col("amount"), "hi"),
                ],
                where=where,
            )
        )

    def test_insert_updates_group(self, db, registry):
        view = self.make(db, registry)
        db.insert("orders", {"id": 1, "customer": "a", "amount": 10})
        db.insert("orders", {"id": 2, "customer": "a", "amount": 30})
        group = view.group("a")
        assert group["total"] == 40
        assert group["n"] == 2
        assert group["mean"] == 20
        assert group["lo"] == 10
        assert group["hi"] == 30

    def test_delete_extremum_recovers_next(self, db, registry):
        view = self.make(db, registry)
        for i, amount in enumerate((10, 30, 20)):
            db.insert("orders", {"id": i, "customer": "a", "amount": amount})
        db.delete("orders", col("amount") == 30)
        group = view.group("a")
        assert group["hi"] == 20
        assert group["lo"] == 10

    def test_group_disappears_when_empty(self, db, registry):
        view = self.make(db, registry)
        db.insert("orders", {"id": 1, "customer": "a", "amount": 10})
        db.delete("orders", col("id") == 1)
        assert view.group("a") is None
        assert len(view) == 0

    def test_null_values_ignored_by_aggs_but_counted_by_star(self, db, registry):
        view = self.make(db, registry)
        db.insert("orders", {"id": 1, "customer": "a", "amount": None})
        group = view.group("a")
        assert group["n"] == 1
        assert group["total"] is None
        assert group["lo"] is None

    def test_update_moves_between_groups(self, db, registry):
        view = self.make(db, registry)
        db.insert("orders", {"id": 1, "customer": "a", "amount": 10})
        db.update("orders", {"customer": "b"}, col("id") == 1)
        assert view.group("a") is None
        assert view.group("b")["total"] == 10

    def test_predicate_filtered(self, db, registry):
        view = self.make(db, registry, where=col("amount") >= 100)
        db.insert("orders", {"id": 1, "customer": "a", "amount": 10})
        assert len(view) == 0
        db.insert("orders", {"id": 2, "customer": "a", "amount": 100})
        assert view.group("a")["n"] == 1

    def test_matches_recompute(self, db, registry):
        view = self.make(db, registry)
        import random

        rng = random.Random(3)
        for i in range(50):
            db.insert(
                "orders",
                {
                    "id": i,
                    "customer": rng.choice("abc"),
                    "amount": rng.choice([None, 1, 5, 9]),
                },
            )
        db.delete("orders", col("amount") == 5)
        db.update("orders", {"amount": 7}, col("amount") == 9)
        incremental = sorted(
            (r["customer"], r["total"], r["n"], r["lo"], r["hi"])
            for r in view.rows()
        )
        view.recompute(db)
        recomputed = sorted(
            (r["customer"], r["total"], r["n"], r["lo"], r["hi"])
            for r in view.rows()
        )
        assert incremental == recomputed

    def test_delete_from_unknown_group_raises(self, db, registry):
        view = self.make(db, registry)
        with pytest.raises(ViewError):
            apply_delta(view, Delta.deletions("orders", [{"customer": "ghost", "amount": 1}]))


class TestRegistry:
    def test_duplicate_name_rejected(self, db, registry):
        registry.register(SelectProjectView("v", "orders"))
        with pytest.raises(ViewError):
            registry.register(SelectProjectView("v", "orders"))

    def test_unregister_stops_maintenance(self, db, registry):
        view = registry.register(SelectProjectView("v", "orders"))
        registry.unregister("v")
        db.insert("orders", {"id": 1, "customer": "a", "amount": 1})
        assert len(view) == 0
        with pytest.raises(ViewError):
            registry.view("v")

    def test_stats_track_work(self, db, registry):
        registry.register(SelectProjectView("v", "orders"))
        db.insert_many(
            "orders",
            [{"id": i, "customer": "a", "amount": i} for i in range(4)],
        )
        stats = registry.stats("v")
        assert stats.recomputes == 1  # initial population
        assert stats.deltas_applied == 1  # one statement
        assert stats.delta_rows == 4

    def test_rows_helper(self, db, registry):
        registry.register(SelectProjectView("v", "orders"))
        db.insert("orders", {"id": 1, "customer": "a", "amount": 1})
        assert len(registry.rows("v")) == 1

    def test_names(self, db, registry):
        registry.register(SelectProjectView("b", "orders"))
        registry.register(SelectProjectView("a", "orders"))
        assert registry.names() == ["a", "b"]


class TestRegistryPolicies:
    """Propagation policies on materialized views (Section V)."""

    def test_threshold_applies_one_combined_delta(self, db, registry):
        from repro.sync.batching import Threshold

        view = registry.register(SelectProjectView("all", "orders"))
        registry.set_policy("all", Threshold(max_changes=100, max_delay_ms=None))
        for i in range(10):
            db.insert("orders", {"id": i + 1, "customer": "c", "amount": i})
        assert len(view) == 0  # buffered, not yet applied
        assert registry.pending_ops("all") == 10
        assert registry.flush_view("all") == 10
        assert len(view) == 10
        stats = registry.stats("all")
        assert stats.deltas_applied == 1  # ONE combined delta
        assert stats.batched_flushes == 1

    def test_threshold_count_overflow_autoflushes(self, db, registry):
        from repro.sync.batching import Threshold

        view = registry.register(SelectProjectView("all", "orders"))
        registry.set_policy("all", Threshold(max_changes=3, max_delay_ms=None))
        db.insert("orders", {"id": 1, "customer": "a", "amount": 1})
        db.insert("orders", {"id": 2, "customer": "b", "amount": 2})
        assert len(view) == 0
        db.insert("orders", {"id": 3, "customer": "c", "amount": 3})
        assert len(view) == 3  # third change crossed the threshold

    def test_insert_delete_coalesces_to_nothing(self, db, registry):
        from repro.sync.batching import MANUAL

        view = registry.register(SelectProjectView("all", "orders"))
        registry.set_policy("all", MANUAL)
        db.insert("orders", {"id": 1, "customer": "a", "amount": 1})
        db.delete("orders", col("id") == 1)
        assert registry.flush_view("all") == 0
        assert len(view) == 0
        assert registry.stats("all").coalesced_ops == 2

    def test_policy_switch_flushes_pending(self, db, registry):
        from repro.sync.batching import IMMEDIATE, MANUAL

        view = registry.register(SelectProjectView("all", "orders"))
        registry.set_policy("all", MANUAL)
        db.insert("orders", {"id": 1, "customer": "a", "amount": 1})
        assert len(view) == 0
        registry.set_policy("all", IMMEDIATE)
        assert len(view) == 1  # switch released the buffered delta
        db.insert("orders", {"id": 2, "customer": "b", "amount": 2})
        assert len(view) == 2  # immediate again

    def test_aggregate_view_batches_correctly(self, db, registry):
        from repro.sync.batching import MANUAL

        view = registry.register(
            AggregateView(
                "by_customer",
                "orders",
                group_by=["customer"],
                aggregates=[AggSpec("SUM", col("amount"), "total")],
            )
        )
        registry.set_policy("by_customer", MANUAL)
        for i in range(4):
            db.insert("orders", {"id": i + 1, "customer": "a", "amount": 10})
        db.insert("orders", {"id": 9, "customer": "b", "amount": 7})
        registry.flush_view("by_customer")
        totals = {r["customer"]: r["total"] for r in view.rows()}
        assert totals == {"a": 40, "b": 7}

    def test_unregister_drops_buffered_deltas(self, db, registry):
        from repro.sync.batching import MANUAL

        registry.register(SelectProjectView("all", "orders"))
        registry.set_policy("all", MANUAL)
        db.insert("orders", {"id": 1, "customer": "a", "amount": 1})
        registry.unregister("all")
        assert registry.flush_all() == 0  # nothing strands, nothing crashes
