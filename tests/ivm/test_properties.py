"""Property-based: incremental maintenance == full recomputation.

The core IVM invariant, checked under random interleavings of inserts,
deletes, and updates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import AggSpec, Column, Database, col
from repro.db.types import INTEGER, TEXT
from repro.ivm import AggregateView, JoinView, SelectProjectView, ViewRegistry

# An operation is (kind, payload).
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.fixed_dictionaries(
                {
                    "g": st.sampled_from(["x", "y", "z"]),
                    "v": st.one_of(st.integers(-3, 3), st.none()),
                }
            ),
        ),
        st.tuples(st.just("delete_v"), st.integers(-3, 3)),
        st.tuples(st.just("update_v"), st.tuples(st.integers(-3, 3), st.integers(-3, 3))),
    ),
    max_size=25,
)


def run_ops(db, ops):
    for kind, payload in ops:
        if kind == "insert":
            db.insert("base", payload)
        elif kind == "delete_v":
            db.delete("base", col("v") == payload)
        else:
            old, new = payload
            db.update("base", {"v": new}, col("v") == old)


def fresh(views):
    db = Database()
    db.create_table("base", [Column("g", TEXT), Column("v", INTEGER)])
    registry = ViewRegistry(db)
    out = [registry.register(v) for v in views]
    return db, registry, out


@given(ops_strategy)
@settings(max_examples=60, deadline=None)
def test_select_project_view_equals_recompute(ops):
    db, _registry, (view,) = fresh(
        [SelectProjectView("v", "base", where=col("v") >= 0)]
    )
    run_ops(db, ops)
    incremental = sorted(
        (r["g"], r["v"]) for r in view.rows()
    )
    view.recompute(db)
    assert incremental == sorted((r["g"], r["v"]) for r in view.rows())


@given(ops_strategy)
@settings(max_examples=60, deadline=None)
def test_aggregate_view_equals_recompute(ops):
    view_def = AggregateView(
        "agg",
        "base",
        group_by=["g"],
        aggregates=[
            AggSpec("COUNT", None, "n"),
            AggSpec("SUM", col("v"), "s"),
            AggSpec("MIN", col("v"), "lo"),
            AggSpec("MAX", col("v"), "hi"),
        ],
    )
    db, _registry, (view,) = fresh([view_def])
    run_ops(db, ops)

    def canon(rows):
        return sorted((r["g"], r["n"], r["s"], r["lo"], r["hi"]) for r in rows)

    incremental = canon(view.rows())
    view.recompute(db)
    assert incremental == canon(view.rows())


join_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("left"),
            st.fixed_dictionaries({"k": st.integers(0, 3), "a": st.integers(0, 5)}),
        ),
        st.tuples(
            st.just("right"),
            st.fixed_dictionaries({"k": st.integers(0, 3), "b": st.integers(0, 5)}),
        ),
        st.tuples(st.just("del_left"), st.integers(0, 3)),
        st.tuples(st.just("del_right"), st.integers(0, 3)),
    ),
    max_size=20,
)


@given(join_ops)
@settings(max_examples=60, deadline=None)
def test_join_view_equals_recompute(ops):
    db = Database()
    db.create_table("l", [Column("k", INTEGER), Column("a", INTEGER)])
    db.create_table("r", [Column("k", INTEGER), Column("b", INTEGER)])
    registry = ViewRegistry(db)
    view = registry.register(JoinView("j", "l", "r", "k", "k"))
    for kind, payload in ops:
        if kind == "left":
            db.insert("l", payload)
        elif kind == "right":
            db.insert("r", payload)
        elif kind == "del_left":
            db.delete("l", col("k") == payload)
        else:
            db.delete("r", col("k") == payload)

    def canon(rows):
        return sorted((r["k"], r["a"], r["b"]) for r in rows)

    incremental = canon(view.rows())
    view.recompute(db)
    assert incremental == canon(view.rows())
