"""Batch view maintenance must be indistinguishable from per-row.

Deltas at or above ``_BATCH_MIN`` rows take the batch path
(`apply_group_rows`, `add_many`/`remove_many`); these tests drive both
paths over the same deltas and assert identical view state -- including
float SUM rounding, MIN/MAX multiset contents, and group lifecycle
(creation, deletion at zero, underflow errors).
"""

import random

import pytest

from repro.db.algebra import AggSpec
from repro.db.expression import col, evaluate_predicate
from repro.errors import ViewError
from repro.ivm.delta import Delta, partition_rows
from repro.ivm.maintenance import _BATCH_MIN, apply_delta
from repro.ivm.view import AggregateView, SelectProjectView


def make_rows(n, seed=0, groups=5):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        rows.append(
            {
                "g": f"g{rng.randrange(groups)}",
                "v": rng.choice([None, rng.uniform(-10, 10), rng.randrange(-5, 5)]),
                "__tid__": i + 1,
            }
        )
    return rows


def agg_view():
    return AggregateView(
        "agg",
        "t",
        ["g"],
        [
            AggSpec("COUNT", None, "n"),
            AggSpec("COUNT", col("v"), "c"),
            AggSpec("SUM", col("v"), "s"),
            AggSpec("AVG", col("v"), "a"),
            AggSpec("MIN", col("v"), "mn"),
            AggSpec("MAX", col("v"), "mx"),
        ],
        where=col("v") > -9,
    )


def snapshot(view):
    return sorted(map(repr, (sorted(r.items()) for r in view.rows())))


def state_snapshot(view):
    out = []
    for key, state in sorted(view.groups.items(), key=repr):
        vcs = [None if vc is None else sorted(vc.items()) for vc in state.value_counts]
        out.append((key, state.count_star, list(state.sums), list(state.counts), vcs))
    return out


class TestAggregateBatchEquivalence:
    def test_insert_batch_matches_per_row(self):
        rows = make_rows(300)
        batch, perrow = agg_view(), agg_view()
        apply_delta(batch, Delta.insertions("t", rows))
        for row in rows:
            if evaluate_predicate(perrow.where, row):
                perrow.apply_row(row, +1)
        assert state_snapshot(batch) == state_snapshot(perrow)
        assert snapshot(batch) == snapshot(perrow)

    def test_delete_batch_matches_per_row(self):
        rows = make_rows(300, seed=2)
        batch, perrow = agg_view(), agg_view()
        apply_delta(batch, Delta.insertions("t", rows))
        apply_delta(perrow, Delta.insertions("t", rows))
        victim = rows[::2]
        apply_delta(batch, Delta.deletions("t", victim))
        small = Delta.deletions("t", victim)
        # Force the per-row path by splitting below _BATCH_MIN.
        for i in range(0, len(victim), _BATCH_MIN - 1):
            apply_delta(perrow, Delta.deletions("t", victim[i : i + _BATCH_MIN - 1]))
        assert state_snapshot(batch) == state_snapshot(perrow)

    def test_float_sum_rounding_identical(self):
        rows = [
            {"g": "g", "v": x, "__tid__": i + 1}
            for i, x in enumerate([0.1] * 70 + [1e15, -1e15] + [0.1] * 70)
        ]
        batch, perrow = agg_view(), agg_view()
        apply_delta(batch, Delta.insertions("t", rows))
        for row in rows:
            if evaluate_predicate(perrow.where, row):
                perrow.apply_row(row, +1)
        # Bit-for-bit, not math.isclose: same left fold, same rounding.
        assert state_snapshot(batch) == state_snapshot(perrow)

    def test_group_deleted_at_zero(self):
        rows = make_rows(200, seed=3, groups=3)
        view = agg_view()
        apply_delta(view, Delta.insertions("t", rows))
        apply_delta(view, Delta.deletions("t", rows))
        assert view.groups == {}

    def test_mixed_update_delta(self):
        rows = make_rows(400, seed=4)
        view_b, view_r = agg_view(), agg_view()
        apply_delta(view_b, Delta.insertions("t", rows))
        apply_delta(view_r, Delta.insertions("t", rows))
        delta = Delta(
            table="t",
            deleted=rows[100:300],
            inserted=[dict(r, v=1) for r in rows[100:300]],
        )
        assert len(delta) >= _BATCH_MIN
        applied_b = apply_delta(view_b, delta)
        # True per-row reference for the SAME delta: every deletion before
        # every insertion, in delta order (what _maintain_aggregate does
        # below _BATCH_MIN).
        applied_r = 0
        for row in delta.deleted:
            if evaluate_predicate(view_r.where, row):
                view_r.apply_row(row, -1)
                applied_r += 1
        for row in delta.inserted:
            if evaluate_predicate(view_r.where, row):
                view_r.apply_row(row, +1)
                applied_r += 1
        assert applied_b == applied_r
        assert state_snapshot(view_b) == state_snapshot(view_r)

    def test_unknown_group_delete_raises(self):
        view = agg_view()
        rows = [{"g": "zz", "v": 1, "__tid__": i} for i in range(_BATCH_MIN)]
        with pytest.raises(ViewError, match="unknown group"):
            apply_delta(view, Delta.deletions("t", rows))

    def test_apply_group_rows_empty_is_noop(self):
        view = agg_view()
        view.apply_group_rows(("g0",), [], +1)
        assert view.groups == {}


class TestSelectProjectBatchEquivalence:
    def make_views(self):
        mk = lambda: SelectProjectView(
            "sp", "t", where=col("v") > 0, project=[("g", col("g")), ("v", col("v"))]
        )
        return mk(), mk()

    def test_insert_and_delete_batches(self):
        rows = make_rows(250, seed=5)
        batch, perrow = self.make_views()
        apply_delta(batch, Delta.insertions("t", rows))
        for i in range(0, len(rows), _BATCH_MIN - 1):
            apply_delta(perrow, Delta.insertions("t", rows[i : i + _BATCH_MIN - 1]))
        assert sorted(map(repr, batch.rows())) == sorted(map(repr, perrow.rows()))
        apply_delta(batch, Delta.deletions("t", rows[::3]))
        victims = rows[::3]
        for i in range(0, len(victims), _BATCH_MIN - 1):
            apply_delta(perrow, Delta.deletions("t", victims[i : i + _BATCH_MIN - 1]))
        assert sorted(map(repr, batch.rows())) == sorted(map(repr, perrow.rows()))

    def test_underflow_message_identical(self):
        batch, perrow = self.make_views()
        rows = [{"g": "g", "v": 1, "__tid__": i} for i in range(_BATCH_MIN)]
        with pytest.raises(ViewError) as err_batch:
            apply_delta(batch, Delta.deletions("t", rows))
        with pytest.raises(ViewError) as err_row:
            perrow.storage.remove({"g": "g", "v": 1})
        assert str(err_batch.value) == str(err_row.value)


class TestPartitionRows:
    def test_preserves_orders(self):
        rows = [{"g": g, "i": i} for i, g in enumerate("abcabcab")]
        parts = partition_rows(rows, ["g"])
        assert list(parts) == [("a",), ("b",), ("c",)]
        assert [r["i"] for r in parts[("a",)]] == [0, 3, 6]

    def test_multi_column_key(self):
        rows = [{"g": "a", "h": 1}, {"g": "a", "h": 2}, {"g": "a", "h": 1}]
        parts = partition_rows(rows, ["g", "h"])
        assert len(parts) == 2
        assert len(parts[("a", 1)]) == 2

    def test_empty(self):
        assert partition_rows([], ["g"]) == {}
