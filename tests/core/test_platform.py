"""The EdiFlow facade: wiring, XML deployment, snapshots."""


from repro import EdiFlow
from repro.workflow import Procedure


class Doubler(Procedure):
    name = "doubler"

    def run(self, env, inputs, read_write):
        return [[{"v": r["v"] * 2} for r in inputs[0]]]


PROCESS_XML = """
<process name="double">
  <relation name="src">
    <column name="v" type="INTEGER"/>
  </relation>
  <function name="doubler"/>
  <body>
    <sequence>
      <activity name="c" type="callFunction" procedure="doubler">
        <input table="src"/>
        <output table="dst"/>
      </activity>
    </sequence>
  </body>
</process>
"""


class TestFacade:
    def test_sql_passthrough(self):
        platform = EdiFlow()
        platform.execute("CREATE TABLE t (a INTEGER)")
        platform.execute("INSERT INTO t (a) VALUES (1), (2)")
        assert platform.query("SELECT COUNT(*) AS n FROM t")[0]["n"] == 2

    def test_deploy_and_run_xml_process(self):
        platform = EdiFlow()
        platform.execute("CREATE TABLE dst (v INTEGER)")
        platform.procedures.register(Doubler())
        definition = platform.deploy_xml(PROCESS_XML)
        assert definition.name == "double"
        platform.execute("INSERT INTO src (v) VALUES (1), (2), (3)")
        platform.run("double")
        values = sorted(r["v"] for r in platform.query("SELECT * FROM dst"))
        assert values == [2, 4, 6]

    def test_deploy_xml_file(self, tmp_path):
        path = tmp_path / "proc.xml"
        path.write_text(PROCESS_XML)
        platform = EdiFlow()
        platform.execute("CREATE TABLE dst (v INTEGER)")
        platform.procedures.register(Doubler())
        definition = platform.deploy_xml_file(path)
        assert definition.name == "double"

    def test_views_wiring(self):
        from repro.vis import VisualItem

        platform = EdiFlow()
        vis = platform.views.visualizations.create_visualization("v")
        comp = platform.views.visualizations.create_component(vis, "scatter")
        platform.views.publish(comp, [VisualItem(obj_id=1, x=0.0, y=0.0)])
        view = platform.views.add_view("laptop", comp)
        assert len(view.display) == 1
        platform.shutdown()

    def test_materialized_views_wiring(self):
        from repro.db import AggSpec, col
        from repro.ivm import AggregateView

        platform = EdiFlow()
        platform.execute("CREATE TABLE votes (state TEXT, n INTEGER)")
        view = platform.materialized.register(
            AggregateView(
                "agg", "votes", ["state"], [AggSpec("SUM", col("n"), "total")]
            )
        )
        platform.execute("INSERT INTO votes (state, n) VALUES ('CA', 5)")
        assert view.group("CA")["total"] == 5

    def test_save_and_load(self, tmp_path):
        platform = EdiFlow(name="snap")
        platform.execute("CREATE TABLE t (a INTEGER)")
        platform.execute("INSERT INTO t (a) VALUES (7)")
        path = tmp_path / "state.jsonl"
        rows = platform.save(path)
        assert rows > 0  # includes core tables content
        restored = EdiFlow.load(path)
        assert restored.query("SELECT a FROM t") == [{"a": 7}]

    def test_run_with_kwargs(self):
        from repro.workflow import AskUser, ProcessDefinition, Variable, seq

        platform = EdiFlow()
        definition = ProcessDefinition(
            "ask",
            seq(AskUser("q", "name?", "name")),
            variables=[Variable("name")],
        )
        platform.deploy(definition)
        execution = platform.run("ask", responder=lambda p, v: "zoe")
        assert execution.variables["name"] == "zoe"

    def test_process_history_survives_snapshot(self, tmp_path):
        from repro.core import datamodel
        from repro.workflow import ProcessDefinition, UpdateTable, seq

        platform = EdiFlow()
        platform.execute("CREATE TABLE t (a INTEGER)")
        definition = ProcessDefinition("p", seq(UpdateTable("u", "DELETE FROM t")))
        platform.deploy(definition)
        platform.run("p")
        path = tmp_path / "state.jsonl"
        platform.save(path)
        restored = EdiFlow.load(path)
        instances = restored.query(
            f"SELECT status FROM {datamodel.T_PROCESS_INSTANCE}"
        )
        assert instances[0]["status"] == "completed"
