"""RetryPolicy: deterministic backoff, predicates, option parsing."""

import pytest

from repro.errors import RetryError, SyncError
from repro.retry import RetryPolicy


class SleepRecorder:
    def __init__(self):
        self.calls = []

    def __call__(self, seconds):
        self.calls.append(seconds)


class TestBackoffSchedule:
    def test_first_attempt_is_immediate(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.delay_for(1) == 0.0

    def test_exponential_growth(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=100.0)
        assert policy.delay_for(2) == pytest.approx(0.1)
        assert policy.delay_for(3) == pytest.approx(0.2)
        assert policy.delay_for(4) == pytest.approx(0.4)

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0)
        assert policy.delay_for(5) == 3.0

    def test_jitter_only_shrinks_and_is_seeded(self):
        a = RetryPolicy(base_delay=1.0, jitter=0.5, seed=7)
        b = RetryPolicy(base_delay=1.0, jitter=0.5, seed=7)
        delays_a = [a.jittered_delay(k) for k in range(2, 8)]
        delays_b = [b.jittered_delay(k) for k in range(2, 8)]
        assert delays_a == delays_b  # same seed, same schedule
        for k, jittered in zip(range(2, 8), delays_a):
            nominal = a.delay_for(k)
            assert nominal * 0.5 <= jittered <= nominal

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.25, jitter=0.0)
        assert policy.jittered_delay(2) == 0.25


class TestCall:
    def test_succeeds_after_transient_failures(self):
        sleeps = SleepRecorder()
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0, sleep=sleeps)
        outcomes = iter([OSError("a"), OSError("b"), "ok"])

        def flaky():
            item = next(outcomes)
            if isinstance(item, Exception):
                raise item
            return item

        assert policy.call(flaky) == "ok"
        assert sleeps.calls == pytest.approx([0.1, 0.2])

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, sleep=lambda s: None)
        attempts = []

        def always_fails():
            attempts.append(1)
            raise OSError("down")

        with pytest.raises(OSError, match="down"):
            policy.call(always_fails)
        assert len(attempts) == 3

    def test_non_retryable_raises_immediately(self):
        policy = RetryPolicy(
            max_attempts=5, retryable=(OSError,), sleep=lambda s: None
        )
        attempts = []

        def fails_differently():
            attempts.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(fails_differently)
        assert len(attempts) == 1

    def test_predicate_retryable(self):
        policy = RetryPolicy(
            max_attempts=3,
            retryable=lambda exc: "again" in str(exc),
            sleep=lambda s: None,
        )
        attempts = []

        def fails():
            attempts.append(1)
            raise SyncError("try again")

        with pytest.raises(SyncError):
            policy.call(fails)
        assert len(attempts) == 3

    def test_on_retry_observer(self):
        seen = []
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, sleep=lambda s: None)

        def fails():
            raise OSError("x")

        with pytest.raises(OSError):
            policy.call(fails, on_retry=lambda n, exc, d: seen.append((n, str(exc))))
        assert seen == [(1, "x")]


class TestAttemptsIterator:
    def test_yields_max_attempts_with_sleeps_between(self):
        sleeps = SleepRecorder()
        policy = RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0, sleep=sleeps)
        numbers = [attempt.number for attempt in policy.attempts()]
        assert numbers == [1, 2, 3]
        assert sleeps.calls == pytest.approx([0.5, 1.0])

    def test_break_stops_sleeping(self):
        sleeps = SleepRecorder()
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.0, sleep=sleeps)
        for attempt in policy.attempts():
            break
        assert sleeps.calls == []


class TestFromOptions:
    def test_none_passthrough(self):
        assert RetryPolicy.from_options(None) is None

    def test_policy_passthrough(self):
        policy = RetryPolicy()
        assert RetryPolicy.from_options(policy) is policy

    def test_snake_and_camel_case(self):
        policy = RetryPolicy.from_options(
            {"maxAttempts": "4", "baseDelay": "0.1", "jitter": "0.25"}
        )
        assert policy.max_attempts == 4
        assert policy.base_delay == pytest.approx(0.1)
        assert policy.jitter == pytest.approx(0.25)
        same = RetryPolicy.from_options({"max_attempts": 4, "base_delay": 0.1})
        assert same.max_attempts == 4

    def test_unknown_key_rejected(self):
        with pytest.raises(RetryError):
            RetryPolicy.from_options({"backoff": 2})


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"jitter": 1.5},
            {"multiplier": 0.5},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(RetryError):
            RetryPolicy(**kwargs)
