"""The shared fault-injection core (repro.faults).

Both the transport faults (repro.sync.faults) and the WAL crash points
(repro.db.wal) are built on these primitives, so their contracts --
determinism, fire-once, occurrence counting -- are pinned here once.
"""

import pytest

from repro.faults import (
    CrashInjector,
    CrashPlan,
    FaultSchedule,
    SimulatedCrash,
    as_index_set,
)


class TestAsIndexSet:
    def test_coerces_iterables(self):
        assert as_index_set([3, 1, 3]) == frozenset({1, 3})
        assert as_index_set(range(2)) == frozenset({0, 1})

    def test_passes_frozenset_through(self):
        s = frozenset({5})
        assert as_index_set(s) is s


class TestFaultSchedule:
    def test_next_index_is_monotonic_from_zero(self):
        schedule = FaultSchedule()
        assert [schedule.next_index() for _ in range(4)] == [0, 1, 2, 3]
        assert schedule.count == 4

    def test_same_seed_same_samples(self):
        a = FaultSchedule(seed=42)
        b = FaultSchedule(seed=42)
        assert [a.chance(0.5) for _ in range(50)] == [
            b.chance(0.5) for _ in range(50)
        ]

    def test_different_seeds_diverge(self):
        def run(seed):
            schedule = FaultSchedule(seed)
            return tuple(schedule.chance(0.5) for _ in range(20))

        assert len({run(seed) for seed in range(4)}) > 1

    def test_zero_rate_never_fires_and_draws_nothing(self):
        schedule = FaultSchedule(seed=7)
        assert not any(schedule.chance(0.0) for _ in range(10))
        # The guard short-circuits before the RNG: the stream is intact.
        untouched = FaultSchedule(seed=7)
        assert schedule.chance(0.5) == untouched.chance(0.5)


class TestSimulatedCrash:
    def test_message_names_point_and_occurrence(self):
        crash = SimulatedCrash("wal.fsync", 3)
        assert crash.point == "wal.fsync"
        assert crash.occurrence == 3
        assert "wal.fsync" in str(crash)
        assert "3" in str(crash)


class TestCrashInjector:
    def test_fires_at_exact_occurrence(self):
        injector = CrashInjector(CrashPlan("p", at=2))
        assert injector.check("p") is None
        assert injector.check("p") is None
        plan = injector.check("p")
        assert plan is not None and plan.at == 2

    def test_fires_at_most_once(self):
        injector = CrashInjector(CrashPlan("p", at=0))
        assert injector.check("p") is not None
        # A process only dies once: later matches are suppressed.
        assert injector.check("p") is None
        assert injector.fired is not None

    def test_counts_are_per_point(self):
        injector = CrashInjector(CrashPlan("b", at=1))
        assert injector.check("a") is None
        assert injector.check("b") is None  # b's occurrence 0
        assert injector.check("a") is None  # a's counter is independent
        assert injector.check("b") is not None

    def test_unarmed_points_still_counted(self):
        injector = CrashInjector()
        injector.check("x")
        injector.check("x")
        assert injector.counts["x"] == 2
        assert injector.fired is None

    def test_reach_raises_on_match(self):
        injector = CrashInjector(CrashPlan("checkpoint.switch", at=1))
        injector.reach("checkpoint.switch")
        with pytest.raises(SimulatedCrash) as exc:
            injector.reach("checkpoint.switch")
        assert exc.value.point == "checkpoint.switch"
        assert exc.value.occurrence == 1

    def test_crash_builds_exception_for_plan(self):
        injector = CrashInjector()
        plan = CrashPlan("p", at=4, torn_bytes=3, power_loss=True)
        crash = injector.crash(plan)
        assert isinstance(crash, SimulatedCrash)
        assert (crash.point, crash.occurrence) == ("p", 4)

    def test_multiple_plans_independent_points(self):
        injector = CrashInjector(CrashPlan("a", at=0), CrashPlan("b", at=0))
        fired = injector.check("b")
        assert fired is not None and fired.point == "b"
        # The other plan can no longer fire: the process is already dead.
        assert injector.check("a") is None
