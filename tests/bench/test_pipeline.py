"""The Figure-8 insert pipeline (small sizes; timing shape is the bench's job)."""

import pytest

from repro.bench import FIG8_SERIES, InsertPipeline
from repro.core import datamodel


@pytest.fixture(params=[False, True], ids=["inprocess", "sockets"])
def pipeline(request):
    p = InsertPipeline(use_sockets=request.param)
    yield p
    p.close()


class TestPipeline:
    def test_one_batch_flows_to_display(self, pipeline):
        timing = pipeline.run_batch(50)
        assert timing.batch_size == 50
        assert len(pipeline.display) == 50
        # Visual attributes written for every node.
        rows = pipeline.database.query(
            f"SELECT COUNT(*) AS n FROM {datamodel.T_VISUAL_ATTRIBUTES}"
        )
        assert rows[0]["n"] == 50

    def test_successive_batches_accumulate(self, pipeline):
        pipeline.run_batch(20)
        pipeline.run_batch(30)
        assert len(pipeline.display) == 50

    def test_timing_fields_cover_all_series(self, pipeline):
        timing = pipeline.run_batch(10)
        data = timing.as_dict()
        assert set(data) == set(FIG8_SERIES)
        assert data["total"] == pytest.approx(
            sum(v for k, v in data.items() if k != "total")
        )
        assert all(v >= 0 for v in data.values())

    def test_display_items_carry_positions(self, pipeline):
        pipeline.run_batch(5)
        for item in pipeline.display.items.values():
            assert item.x is not None
            assert item.y is not None
            assert item.label.startswith("node-")
