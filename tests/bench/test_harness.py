"""Benchmark harness utilities."""

import pytest

from repro.bench import (
    ExperimentRecord,
    SeriesTable,
    Timer,
    dominance_ratio,
    is_roughly_linear,
    linear_fit,
    speedup,
    time_ms,
)


class TestTimer:
    def test_measures_elapsed(self):
        import time

        with Timer() as timer:
            time.sleep(0.01)
        assert timer.ms >= 5

    def test_time_ms_returns_result(self):
        ms, value = time_ms(lambda: 42)
        assert value == 42
        assert ms >= 0


class TestSeriesTable:
    def make(self):
        table = SeriesTable("n", ["a", "b"])
        table.add(10, {"a": 1.0, "b": 5.0})
        table.add(20, {"a": 2.0, "b": 10.0})
        return table

    def test_series_extraction(self):
        table = self.make()
        assert table.xs() == [10, 20]
        assert table.series("a") == [1.0, 2.0]

    def test_missing_series_value_rejected(self):
        table = SeriesTable("n", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1, {"a": 1.0})

    def test_format_contains_all_rows(self):
        text = self.make().format()
        assert "10" in text and "20" in text
        assert "ms" in text


class TestJsonEmission:
    def make(self):
        table = SeriesTable("n", ["a", "b"])
        table.add(10, {"a": 1.0, "b": 5.0})
        table.add(20, {"a": 2.0, "b": 10.0})
        return table

    def test_as_json_shape(self):
        payload = self.make().as_json()
        assert payload["x_label"] == "n"
        assert payload["series"] == ["a", "b"]
        assert payload["rows"] == [
            {"x": 10, "values": {"a": 1.0, "b": 5.0}},
            {"x": 20, "values": {"a": 2.0, "b": 10.0}},
        ]

    def test_write_json_round_trips(self, tmp_path):
        import json

        path = tmp_path / "BENCH_demo.json"
        self.make().write_json(path, "demo", unit="us", extra={"git_rev": "abc"})
        payload = json.loads(path.read_text())
        assert payload["name"] == "demo"
        assert payload["unit"] == "us"
        assert payload["git_rev"] == "abc"
        assert payload["rows"] == self.make().as_json()["rows"]

    def test_write_json_machine_readable_values(self, tmp_path):
        """Every value in the payload is a plain JSON scalar -- no repr
        leakage from floats or numpy-ish types."""
        import json

        path = tmp_path / "BENCH_x.json"
        self.make().write_json(path, "x")
        decoded = json.loads(path.read_text())
        for row in decoded["rows"]:
            assert isinstance(row["x"], (int, float))
            for value in row["values"].values():
                assert isinstance(value, (int, float))


class TestShapeChecks:
    def test_linear_fit_exact(self):
        slope, intercept, r2 = linear_fit([1, 2, 3], [10, 20, 30])
        assert slope == pytest.approx(10.0)
        assert intercept == pytest.approx(0.0)
        assert r2 == pytest.approx(1.0)

    def test_linear_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_is_roughly_linear(self):
        xs = [100, 200, 400, 800]
        assert is_roughly_linear(xs, [1.1, 2.0, 4.2, 7.9])
        assert not is_roughly_linear(xs, [1, 4, 16, 64], min_r_squared=0.99)

    def test_dominance_ratio(self):
        table = SeriesTable("n", ["big", "small1", "small2"])
        table.add(1, {"big": 10.0, "small1": 2.0, "small2": 1.0})
        table.add(2, {"big": 20.0, "small1": 5.0, "small2": 1.0})
        assert dominance_ratio(table, "big", ["small1", "small2"]) == pytest.approx(4.0)

    def test_dominance_needs_rows(self):
        table = SeriesTable("n", ["a", "b"])
        with pytest.raises(ValueError):
            dominance_ratio(table, "a", ["b"])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(10.0, 0.0) == float("inf")

    def test_experiment_record_format(self):
        record = ExperimentRecord("Fig 8", "linear", "r2=0.99", True)
        text = record.format()
        assert "HOLDS" in text
        record = ExperimentRecord("Fig 8", "linear", "r2=0.2", False)
        assert "DIVERGES" in record.format()
