"""The dashboard's "why is this point here" panel: provenance of one
waterfall bar through the lineage-enabled span-stats view."""

import pytest

import repro.obs as obs
from repro.apps.telemetry import TelemetryDashboard
from repro.obs.store import TelemetrySink


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def make_spans(counts):
    tracer = obs.tracer()
    for name, n in counts.items():
        for _ in range(n):
            with tracer.span(name, tags={"table": "nodes"}):
                pass


class TestWhyPanel:
    def test_why_traces_a_bar_to_its_group(self):
        obs.enable()
        sink = TelemetrySink()
        dashboard = TelemetryDashboard(sink)
        try:
            make_spans({"db.write": 4, "layout": 2})
            sink.collect_and_flush()
            dashboard.refresh()
            # Pick one bar off the rendered waterfall.
            span_id = next(
                r["span_id"]
                for r in dashboard.span_mirror.all_rows()
                if r["name"] == "db.write" and r.get("kind") == "span"
            )
            why = dashboard.why(span_id)
            assert why is not None
            assert why["name"] == "db.write"
            assert why["groups"] == [("db.write",)]
            # The group aggregates exactly the 4 db.write spans, so the
            # bar has itself plus 3 siblings behind its statistics.
            assert why["contributing_spans"] == 4
            (stats,) = why["stats"]
            assert stats["n"] == 4
            # The whole provenance query was invisible to the tracer.
            assert len(obs.tracer()) == 0
        finally:
            dashboard.close()
            sink.close()

    def test_why_follows_incremental_growth(self):
        obs.enable()
        sink = TelemetrySink()
        dashboard = TelemetryDashboard(sink)
        try:
            make_spans({"db.write": 2})
            sink.collect_and_flush()
            make_spans({"db.write": 3})
            sink.collect_and_flush()
            dashboard.refresh()
            span_id = next(
                r["span_id"]
                for r in dashboard.span_mirror.all_rows()
                if r["name"] == "db.write"
            )
            why = dashboard.why(span_id)
            assert why["contributing_spans"] == 5
        finally:
            dashboard.close()
            sink.close()

    def test_unknown_span_id(self):
        obs.enable()
        sink = TelemetrySink()
        dashboard = TelemetryDashboard(sink)
        try:
            assert dashboard.why("no-such-span") is None
        finally:
            dashboard.close()
            sink.close()
