"""INRIA activity reports: generation, parsing, ingestion, statistics."""

import pytest

from repro.apps import reports
from repro.db import Database
from repro.errors import SpecificationError


@pytest.fixture
def db():
    database = Database()
    reports.install_schema(database)
    return database


@pytest.fixture
def generator():
    return reports.ReportGenerator(n_teams=4, seed=7)


class TestGenerator:
    def test_one_report_per_team_year(self, generator):
        all_reports = list(generator.reports(2005, 2007))
        assert len(all_reports) == 4 * 3
        keys = {(r.team, r.year) for r in all_reports}
        assert len(keys) == len(all_reports)

    def test_members_sampled_from_roster(self, generator):
        report = next(generator.reports(2005, 2005))
        assert 3 <= len(report.members) <= 12
        for member in report.members:
            assert member.name
            assert 1950 <= member.birth_year <= 1990

    def test_names_are_noisy_across_years(self, generator):
        names = set()
        for report in generator.reports(2005, 2008):
            names.update(m.name for m in report.members)
        # Noise styles produce variants: more surface forms than people.
        people = sum(len(r) for r in generator._rosters.values())
        assert len(names) > people / 2

    def test_deterministic(self):
        a = list(reports.ReportGenerator(n_teams=2, seed=3).reports(2005, 2006))
        b = list(reports.ReportGenerator(n_teams=2, seed=3).reports(2005, 2006))
        assert [(r.team, r.year, r.publications) for r in a] == [
            (r.team, r.year, r.publications) for r in b
        ]


class TestXmlRoundTrip:
    def test_to_xml_parse_round_trip(self, generator):
        report = next(generator.reports(2005, 2005))
        xml = generator.to_xml(report)
        parsed = reports.parse_report(xml)
        assert parsed.team == report.team
        assert parsed.year == report.year
        assert parsed.publications == report.publications
        assert [m.name for m in parsed.members] == [m.name for m in report.members]
        assert [m.birth_year for m in parsed.members] == [
            m.birth_year for m in report.members
        ]

    def test_parse_errors(self):
        with pytest.raises(SpecificationError, match="invalid report XML"):
            reports.parse_report("<raweb")
        with pytest.raises(SpecificationError, match="expected <raweb>"):
            reports.parse_report("<other/>")
        with pytest.raises(SpecificationError, match="team and year"):
            reports.parse_report("<raweb team='x'/>")
        with pytest.raises(SpecificationError, match="member"):
            reports.parse_report(
                "<raweb team='x' year='2005'><members><member/></members></raweb>"
            )


class TestIngestion:
    def test_ingest_creates_rows(self, db, generator):
        ingestor = reports.ReportIngestor(db)
        report = next(generator.reports(2005, 2005))
        report_id = ingestor.ingest(report)
        assert db.table(reports.T_REPORT).by_key(report_id) is not None
        assert len(db.table(reports.T_TEAM)) == 1
        assert len(db.table(reports.T_MEMBERSHIP)) == len(report.members)

    def test_ingest_xml(self, db, generator):
        ingestor = reports.ReportIngestor(db)
        report = next(generator.reports(2005, 2005))
        ingestor.ingest_xml(generator.to_xml(report))
        assert ingestor.reports_ingested == 1

    def test_entity_resolution_dedups_members(self, db, generator):
        """The headline property: across years, the same person under
        noisy name variants resolves to one member row."""
        ingestor = reports.ReportIngestor(db)
        for report in generator.reports(2005, 2008):
            ingestor.ingest(report)
        stored = len(db.table(reports.T_MEMBER))
        surface_forms = set()
        for report in reports.ReportGenerator(n_teams=4, seed=7).reports(2005, 2008):
            surface_forms.update(m.name for m in report.members)
        roster_size = sum(len(r) for r in generator._rosters.values())
        assert stored < len(surface_forms)  # merged variants
        # Close to the true roster (collisions across teams may merge
        # genuinely distinct same-named people; tolerate some slack).
        assert stored <= roster_size
        assert stored >= roster_size * 0.5

    def test_teams_reused_across_years(self, db, generator):
        ingestor = reports.ReportIngestor(db)
        for report in generator.reports(2005, 2006):
            ingestor.ingest(report)
        assert len(db.table(reports.T_TEAM)) == 4


class TestStatistics:
    @pytest.fixture
    def loaded(self, db, generator):
        ingestor = reports.ReportIngestor(db)
        for report in generator.reports(2005, 2007):
            ingestor.ingest(report)
        return db

    def test_reports_by_center(self, loaded):
        stats = reports.compute_statistics(loaded)
        total = sum(stats["reports_by_center"].values())
        assert total == 4 * 3

    def test_publications_by_team_positive(self, loaded):
        stats = reports.compute_statistics(loaded)
        assert len(stats["publications_by_team"]) == 4
        assert all(v > 0 for v in stats["publications_by_team"].values())

    def test_age_distribution_buckets(self, loaded):
        stats = reports.compute_statistics(loaded, as_of_year=2010)
        assert stats["age_distribution"]
        for bucket in stats["age_distribution"]:
            assert bucket.endswith("s")

    def test_members_by_team(self, loaded):
        stats = reports.compute_statistics(loaded)
        assert len(stats["members_by_team"]) == 4
        assert all(v >= 3 for v in stats["members_by_team"].values())

    def test_stats_materialized(self, loaded):
        reports.compute_statistics(loaded)
        rows = loaded.query(f"SELECT * FROM {reports.T_STATS}")
        assert rows
        kinds = {r["stat"] for r in rows}
        assert "reports_by_center" in kinds
        assert "age_distribution" in kinds

    def test_recompute_replaces(self, loaded):
        reports.compute_statistics(loaded)
        first = len(loaded.query(f"SELECT * FROM {reports.T_STATS}"))
        reports.compute_statistics(loaded)
        second = len(loaded.query(f"SELECT * FROM {reports.T_STATS}"))
        assert first == second  # idempotent, not accumulating

    def test_incremental_year_arrival(self, db, generator):
        """New report files arrive -> re-ingest + recompute reflects them
        (the 'self-maintained application' loop)."""
        ingestor = reports.ReportIngestor(db)
        for report in generator.reports(2005, 2006):
            ingestor.ingest(report)
        before = reports.compute_statistics(db)
        for report in generator.reports(2007, 2007):
            ingestor.ingest(report)
        after = reports.compute_statistics(db)
        assert sum(after["reports_by_center"].values()) == (
            sum(before["reports_by_center"].values()) + 4
        )
        for team, pubs in before["publications_by_team"].items():
            assert after["publications_by_team"][team] >= pubs
