"""Myers diff: correctness, minimality, contribution tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.diff import EditOp, annotate_contributions, diff, diff_stats

tokens = st.lists(st.sampled_from("abcde"), max_size=25)


def reconstruct(a, b, ops):
    out = []
    for op in ops:
        if op.kind == "equal":
            out.extend(a[op.old_start : op.old_end])
        elif op.kind == "insert":
            out.extend(b[op.new_start : op.new_end])
    return out


class TestBasics:
    def test_identical(self):
        ops = diff(list("abc"), list("abc"))
        assert [op.kind for op in ops] == ["equal"]

    def test_empty_both(self):
        assert diff([], []) == []

    def test_insert_into_empty(self):
        ops = diff([], list("ab"))
        assert ops == [EditOp("insert", 0, 0, 0, 2)]

    def test_delete_all(self):
        ops = diff(list("ab"), [])
        assert ops == [EditOp("delete", 0, 2, 0, 0)]

    def test_kitten_sitting(self):
        equal, inserted, deleted = diff_stats(list("kitten"), list("sitting"))
        assert equal == 4
        assert inserted == 3
        assert deleted == 2

    def test_ops_coalesced(self):
        ops = diff(list("aaaa"), list("aabbaa"))
        # Adjacent inserts merge into one op.
        inserts = [op for op in ops if op.kind == "insert"]
        assert len(inserts) == 1
        assert inserts[0].length == 2


class TestProperties:
    @given(tokens, tokens)
    @settings(max_examples=150, deadline=None)
    def test_reconstruction(self, a, b):
        assert reconstruct(a, b, diff(a, b)) == b

    @given(tokens, tokens)
    @settings(max_examples=150, deadline=None)
    def test_covers_old_sequence(self, a, b):
        covered = []
        for op in diff(a, b):
            if op.kind in ("equal", "delete"):
                covered.extend(range(op.old_start, op.old_end))
        assert covered == list(range(len(a)))

    @given(tokens, tokens)
    @settings(max_examples=100, deadline=None)
    def test_stats_balance(self, a, b):
        equal, inserted, deleted = diff_stats(a, b)
        assert equal + deleted == len(a)
        assert equal + inserted == len(b)

    @given(tokens)
    @settings(max_examples=50, deadline=None)
    def test_self_diff_is_pure_equality(self, a):
        equal, inserted, deleted = diff_stats(a, a)
        assert (equal, inserted, deleted) == (len(a), 0, 0)

    @given(tokens, tokens)
    @settings(max_examples=100, deadline=None)
    def test_minimality_vs_difflib(self, a, b):
        # Myers produces a minimal script; difflib's is a valid script, so
        # ours must never be longer.
        import difflib

        _equal, inserted, deleted = diff_stats(a, b)
        matcher = difflib.SequenceMatcher(a=a, b=b, autojunk=False)
        lib_equal = sum(size for _i, _j, size in matcher.get_matching_blocks())
        assert inserted + deleted <= (len(a) - lib_equal) + (len(b) - lib_equal)


class TestContributions:
    def test_survivors_keep_author(self):
        old = list("abc")
        authors = [1, 2, 3]
        new = list("axbc")
        out = annotate_contributions(old, authors, new, author=9)
        assert out == [1, 9, 2, 3]

    def test_full_rewrite(self):
        out = annotate_contributions(list("ab"), [1, 1], list("xy"), author=2)
        assert out == [2, 2]

    def test_first_version(self):
        out = annotate_contributions([], [], list("ab"), author=5)
        assert out == [5, 5]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            annotate_contributions(list("ab"), [1], list("ab"), 2)

    @given(tokens, tokens)
    @settings(max_examples=100, deadline=None)
    def test_output_length_matches_new(self, a, b):
        out = annotate_contributions(a, [0] * len(a), b, author=1)
        assert len(out) == len(b)

    @given(tokens, tokens)
    @settings(max_examples=100, deadline=None)
    def test_authors_only_from_old_or_new(self, a, b):
        out = annotate_contributions(a, [0] * len(a), b, author=1)
        assert set(out) <= {0, 1}
