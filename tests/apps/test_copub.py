"""Co-publications application: generator, edge table, layout graph."""

import pytest

from repro.apps import copub
from repro.db import Database
from repro.vis import LinLogLayout


@pytest.fixture
def db():
    database = Database()
    copub.install_schema(database)
    return database


class TestGenerator:
    def test_author_population(self):
        gen = copub.CopublicationGenerator(n_authors=100, n_teams=10, seed=1)
        assert len(gen.authors) == 100
        teams = {a["team"] for a in gen.authors}
        assert len(teams) == 10
        centers = {a["center"] for a in gen.authors}
        assert centers <= set(copub.RESEARCH_CENTERS)

    def test_publications_have_authors(self):
        gen = copub.CopublicationGenerator(n_authors=50, n_teams=5, seed=2)
        for pub in gen.take(20):
            assert len(pub.authors) >= 1
            assert len(set(pub.authors)) == len(pub.authors)
            assert all(1 <= a <= 50 for a in pub.authors)

    def test_publication_ids_sequential(self):
        gen = copub.CopublicationGenerator(n_authors=30, n_teams=3, seed=3)
        pubs = gen.take(10)
        assert [p.publication_id for p in pubs] == list(range(1, 11))

    def test_deterministic(self):
        a = copub.CopublicationGenerator(n_authors=30, n_teams=3, seed=4).take(5)
        b = copub.CopublicationGenerator(n_authors=30, n_teams=3, seed=4).take(5)
        assert [p.authors for p in a] == [p.authors for p in b]

    def test_productivity_skew(self):
        gen = copub.CopublicationGenerator(n_authors=200, n_teams=10, seed=5)
        pubs = gen.take(400)
        counts = {}
        for pub in pubs:
            for author in pub.authors:
                counts[author] = counts.get(author, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        # Preferential attachment: top author far above median.
        assert ordered[0] >= 3 * ordered[len(ordered) // 2]


class TestDatabaseLoading:
    def test_load_and_edges(self, db):
        gen = copub.CopublicationGenerator(n_authors=60, n_teams=6, seed=6)
        pubs = copub.load_into_database(db, gen, n_publications=40)
        assert len(pubs) == 40
        assert len(db.table(copub.T_AUTHOR)) == 60
        assert len(db.table(copub.T_PUBLICATION)) == 40
        edges = list(db.table(copub.T_EDGE).rows())
        assert edges
        for edge in edges:
            assert edge["source"] < edge["target"]
            assert edge["weight"] >= 1

    def test_edge_weights_count_copublications(self, db):
        copub.install_schema(db)
        db.insert_many(
            copub.T_AUTHORSHIP,
            [
                {"publication_id": 1, "author_id": 1},
                {"publication_id": 1, "author_id": 2},
                {"publication_id": 2, "author_id": 1},
                {"publication_id": 2, "author_id": 2},
                {"publication_id": 2, "author_id": 3},
            ],
        )
        copub.refresh_edges(db)
        edges = {
            (e["source"], e["target"]): e["weight"]
            for e in db.table(copub.T_EDGE).rows()
        }
        assert edges[(1, 2)] == 2
        assert edges[(1, 3)] == 1
        assert edges[(2, 3)] == 1

    def test_graph_from_database(self, db):
        gen = copub.CopublicationGenerator(n_authors=40, n_teams=4, seed=7)
        copub.load_into_database(db, gen, n_publications=30)
        graph = copub.graph_from_database(db)
        assert len(graph) > 0
        assert graph.edge_count == len(db.table(copub.T_EDGE))


class TestGraphBuilding:
    def test_incremental_equals_batch(self):
        gen = copub.CopublicationGenerator(n_authors=50, n_teams=5, seed=8)
        pubs = gen.take(30)
        batch_graph = copub.build_graph(pubs)
        incremental = copub.build_graph(pubs[:15])
        incremental = copub.build_graph(pubs[15:], graph=incremental)
        assert sorted(batch_graph.nodes()) == sorted(incremental.nodes())
        batch_edges = {(min(u, v), max(u, v)): w for u, v, w in batch_graph.edges()}
        incr_edges = {(min(u, v), max(u, v)): w for u, v, w in incremental.edges()}
        assert batch_edges == incr_edges

    def test_layout_integration(self):
        gen = copub.CopublicationGenerator(n_authors=40, n_teams=4, seed=9)
        graph = copub.build_graph(gen.take(25))
        layout = LinLogLayout(graph, seed=1)
        result = layout.run(max_iterations=100)
        assert len(result.positions) == len(graph)

    def test_connected_authors(self):
        gen = copub.CopublicationGenerator(n_authors=40, n_teams=4, seed=10)
        graph = copub.build_graph(gen.take(10))
        assert copub.connected_authors(graph) <= len(graph)
        assert copub.connected_authors(graph) > 0
