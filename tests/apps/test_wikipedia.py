"""Wikipedia application: stream generation and incremental metrics."""

import pytest

from repro.apps.wikipedia import (
    RevisionStream,
    WikipediaAnalyzer,
    T_METRICS_ARTICLE,
    T_METRICS_USER,
    T_REVISION,
)
from repro.db import Database


@pytest.fixture
def db():
    return Database()


@pytest.fixture
def analyzer(db):
    return WikipediaAnalyzer(db)


class TestRevisionStream:
    def test_versions_increase_per_article(self):
        stream = RevisionStream(n_articles=5, n_users=3, seed=1)
        revisions = stream.take(50)
        seen = {}
        for rev in revisions:
            expected = seen.get(rev.article_id, 0) + 1
            assert rev.version == expected
            seen[rev.article_id] = expected

    def test_revision_ids_sequential(self):
        revisions = RevisionStream(seed=2).take(20)
        assert [r.revision_id for r in revisions] == list(range(1, 21))

    def test_deterministic_given_seed(self):
        a = RevisionStream(seed=3).take(10)
        b = RevisionStream(seed=3).take(10)
        assert [(r.article_id, r.text) for r in a] == [
            (r.article_id, r.text) for r in b
        ]

    def test_edits_change_text(self):
        stream = RevisionStream(n_articles=1, seed=4)
        revisions = stream.take(5)
        texts = [r.text for r in revisions]
        assert len(set(texts)) > 1

    def test_popularity_skew(self):
        revisions = RevisionStream(n_articles=20, seed=5).take(300)
        counts = {}
        for rev in revisions:
            counts[rev.article_id] = counts.get(rev.article_id, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > ordered[-1]  # heavy tail


class TestIncrementalMetrics:
    def test_single_revision(self, db, analyzer):
        (rev,) = RevisionStream(n_articles=1, seed=6).take(1)
        analyzer.process(rev)
        analyzer.flush_user_metrics()
        article = db.table(T_METRICS_ARTICLE).by_key(rev.article_id)
        assert article["versions"] == 1
        assert article["contributors"] == 1
        assert article["length"] == len(rev.text.split())
        user = db.table(T_METRICS_USER).by_key(rev.user_id)
        assert user["inserted"] == len(rev.text.split())
        assert user["remaining"] == user["inserted"]
        assert user["durability"] == 1.0

    def test_revisions_stored(self, db, analyzer):
        for rev in RevisionStream(seed=7).take(10):
            analyzer.process(rev)
        assert len(db.table(T_REVISION)) == 10

    def test_contribution_table_matches_text_length(self, db, analyzer):
        stream = RevisionStream(n_articles=2, seed=8)
        last_text = {}
        for rev in stream.take(20):
            analyzer.process(rev)
            last_text[rev.article_id] = rev.text
        for article_id, text in last_text.items():
            table = analyzer.contribution_table(article_id)
            assert len(table) == len(text.split())

    def test_contributors_counted_distinctly(self, db, analyzer):
        stream = RevisionStream(n_articles=1, n_users=10, seed=9)
        revisions = stream.take(15)
        for rev in revisions:
            analyzer.process(rev)
        article = db.table(T_METRICS_ARTICLE).by_key(revisions[0].article_id)
        surviving_authors = set(analyzer.contribution_table(revisions[0].article_id))
        assert article["contributors"] == len(surviving_authors)

    def test_durability_below_one_for_overwritten_users(self, db, analyzer):
        for rev in RevisionStream(n_articles=3, n_users=5, seed=10).take(150):
            analyzer.process(rev)
        analyzer.flush_user_metrics()
        durabilities = [
            row["durability"]
            for row in analyzer.user_metrics()
            if row["durability"] is not None
        ]
        assert durabilities
        assert all(0.0 <= d for d in durabilities)
        assert any(d < 1.0 for d in durabilities)  # someone got overwritten


class TestIncrementalEqualsRecompute:
    def test_metrics_match_full_recomputation(self, db, analyzer):
        """The Wikipedia claim: maintaining metrics incrementally gives
        exactly the full-recomputation answer."""
        for rev in RevisionStream(n_articles=5, n_users=4, seed=11).take(80):
            analyzer.process(rev)
        analyzer.flush_user_metrics()
        incremental_articles = sorted(
            (r["article_id"], r["versions"], r["contributors"], r["length"], r["churn"])
            for r in analyzer.article_metrics()
        )
        incremental_users = sorted(
            (r["user_id"], r["inserted"], r["remaining"], r["edits"])
            for r in analyzer.user_metrics()
        )
        analyzer.recompute_all()
        recomputed_articles = sorted(
            (r["article_id"], r["versions"], r["contributors"], r["length"], r["churn"])
            for r in analyzer.article_metrics()
        )
        recomputed_users = sorted(
            (r["user_id"], r["inserted"], r["remaining"], r["edits"])
            for r in analyzer.user_metrics()
        )
        assert incremental_articles == recomputed_articles
        assert incremental_users == recomputed_users

    def test_incremental_is_cheaper_than_recompute(self, db, analyzer):
        import time

        revisions = RevisionStream(n_articles=10, n_users=5, seed=12).take(120)
        for rev in revisions[:-1]:
            analyzer.process(rev)
        start = time.perf_counter()
        analyzer.process(revisions[-1])
        incremental_time = time.perf_counter() - start
        start = time.perf_counter()
        analyzer.recompute_all()
        recompute_time = time.perf_counter() - start
        assert incremental_time < recompute_time
