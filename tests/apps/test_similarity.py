"""String similarity and the person matcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.similarity import (
    PersonMatcher,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    person_similarity,
)

words = st.text(alphabet="abcdef", max_size=12)


class TestLevenshtein:
    def test_known_values(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("flaw", "lawn") == 2
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("same", "same") == 0

    @given(words, words)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words, words, words)
    @settings(max_examples=80, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, words)
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(words, words)
    @settings(max_examples=60, deadline=None)
    def test_similarity_normalized(self, a, b):
        s = levenshtein_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert levenshtein_similarity(a, a) == 1.0


class TestJaro:
    def test_known_values(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)
        assert jaro("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-3)
        assert jaro("", "abc") == 0.0
        assert jaro("abc", "abc") == 1.0

    def test_winkler_boosts_prefix(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")
        # No common prefix: no boost.
        assert jaro_winkler("abc", "xbc") == jaro("abc", "xbc")

    def test_winkler_known_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)

    def test_bad_prefix_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(words, words)
    @settings(max_examples=100, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        assert 0.0 <= jaro(a, b) <= 1.0
        assert jaro(a, b) == pytest.approx(jaro(b, a))
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12


class TestPersonSimilarity:
    def test_identical(self):
        assert person_similarity("Jean Martin", "Jean Martin") == 1.0

    def test_case_and_punctuation_insensitive(self):
        assert person_similarity("JEAN MARTIN", "Jean Martin") == 1.0
        assert person_similarity("Jean-Martin", "Jean Martin") == 1.0

    def test_inverted_order(self):
        assert person_similarity("Martin, Jean", "Jean Martin") > 0.9

    def test_initials(self):
        assert person_similarity("J. Martin", "Jean Martin") > 0.85

    def test_different_people(self):
        assert person_similarity("Jean Martin", "Sophie Dubois") < 0.6

    def test_same_family_different_given(self):
        similar = person_similarity("Jean Martin", "Jean Martin")
        different = person_similarity("Jean Martin", "Paul Martin")
        assert different < similar

    def test_empty(self):
        assert person_similarity("", "Jean") == 0.0


class TestPersonMatcher:
    def test_exact_reuse(self):
        matcher = PersonMatcher()
        a = matcher.resolve("Jean Martin")
        b = matcher.resolve("Jean Martin")
        assert a == b
        assert len(matcher) == 1

    def test_noisy_variants_merge(self):
        matcher = PersonMatcher()
        canonical = matcher.resolve("Jean Martin")
        assert matcher.resolve("J. Martin") == canonical
        assert matcher.resolve("Martin, Jean") == canonical
        assert matcher.resolve("JEAN MARTIN") == canonical
        assert len(matcher) == 1
        assert matcher.merges >= 2

    def test_distinct_people_kept_apart(self):
        matcher = PersonMatcher()
        a = matcher.resolve("Jean Martin")
        b = matcher.resolve("Sophie Dubois")
        c = matcher.resolve("Luc Leroy")
        assert len({a, b, c}) == 3

    def test_display_name_prefers_longest(self):
        matcher = PersonMatcher()
        pid = matcher.resolve("J. Martin")
        matcher.resolve("Jean Martin")
        assert matcher.name_of(pid) == "Jean Martin"

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            PersonMatcher(threshold=0.0)

    def test_known_names_listing(self):
        matcher = PersonMatcher()
        matcher.resolve("Ann B")
        matcher.resolve("Cy D")
        names = matcher.known_names()
        assert len(names) == 2
        assert names[0][0] < names[1][0]
