"""US-elections application: feed, aggregation, treemap, full process."""

import pytest

from repro.apps import elections
from repro.db import Database
from repro.workflow import PropagationManager, WorkflowEngine


@pytest.fixture
def db():
    database = Database()
    elections.install_schema(database)
    return database


class TestReturnsFeed:
    def test_batches_cover_all_states_eventually(self):
        feed = elections.ReturnsFeed(seed=1)
        states = set()
        for batch in feed.batches():
            states.update(r["state"] for r in batch.rows)
        assert states == {s for s, _p in elections.STATES}

    def test_vote_rows_well_formed(self):
        feed = elections.ReturnsFeed(seed=2)
        batch = next(feed.batches())
        for row in batch.rows:
            assert row["party"] in elections.PARTIES
            assert row["votes"] >= 0
        ids = [r["id"] for r in batch.rows]
        assert len(set(ids)) == len(ids)

    def test_deterministic(self):
        a = next(elections.ReturnsFeed(seed=3).batches())
        b = next(elections.ReturnsFeed(seed=3).batches())
        assert a.rows == b.rows


class TestAggregation:
    def run_aggregate(self, db, rows):
        proc = elections.AggregateVotes()
        db.insert_many(elections.T_VOTES, rows)

        class FakeEnv:
            database = db

        proc._upsert(
            db,
            self.totals(rows),
        )
        return proc

    @staticmethod
    def totals(rows):
        out = {}
        for row in rows:
            per = out.setdefault(row["state"], {"DEM": 0, "REP": 0})
            per[row["party"]] += row["votes"]
        return out

    def test_margins_computed(self, db):
        rows = [
            {"id": 1, "state": "CA", "party": "DEM", "votes": 60},
            {"id": 2, "state": "CA", "party": "REP", "votes": 40},
        ]
        self.run_aggregate(db, rows)
        agg = db.table(elections.T_AGG).by_key("CA")
        assert agg["dem"] == 60
        assert agg["margin"] == pytest.approx(0.2)

    def test_upsert_accumulates(self, db):
        proc = elections.AggregateVotes()
        proc._upsert(db, {"TX": {"DEM": 10, "REP": 20}})
        proc._upsert(db, {"TX": {"DEM": 5, "REP": 0}})
        agg = db.table(elections.T_AGG).by_key("TX")
        assert (agg["dem"], agg["rep"]) == (15, 20)


class TestTreemap:
    def test_states_without_data_are_neutral(self, db):
        items = elections.compute_treemap([], "DEM")
        assert len(items) == len(elections.STATES)
        assert all(i.color == "#cccccc" for i in items)

    def test_reported_states_shaded(self, db):
        agg = [
            {"state": "CA", "dem": 80, "rep": 20, "margin": 0.6, "population": 39},
        ]
        items = {i.obj_id: i for i in elections.compute_treemap(agg, "DEM")}
        assert items["CA"].color != "#cccccc"
        assert "80%" in items["CA"].label

    def test_area_tracks_population(self, db):
        items = {i.obj_id: i for i in elections.compute_treemap([], "DEM")}
        ca = items["CA"]
        wy = items["WY"]
        assert ca.width * ca.height > wy.width * wy.height


class TestNestedTreemap:
    def test_regions_partition_states(self):
        all_states = [s for states in elections.REGIONS.values() for s in states]
        assert sorted(all_states) == sorted(s for s, _p in elections.STATES)

    def test_nested_items_structure(self):
        items = elections.compute_nested_treemap([], "DEM")
        regions = [i for i in items if str(i.obj_id).startswith("region:")]
        leaves = [i for i in items if not str(i.obj_id).startswith("region:")]
        assert len(regions) == 4
        assert len(leaves) == len(elections.STATES)

    def test_leaves_inside_their_region(self):
        items = elections.compute_nested_treemap([], "DEM", padding=2.0)
        by_id = {i.obj_id: i for i in items}
        for region, states in elections.REGIONS.items():
            frame = by_id[f"region:{region}"]
            for state in states:
                leaf = by_id[state]
                assert leaf.x >= frame.x - 1e-6
                assert leaf.y >= frame.y - 1e-6
                assert leaf.x + leaf.width <= frame.x + frame.width + 1e-6
                assert leaf.y + leaf.height <= frame.y + frame.height + 1e-6

    def test_reported_state_shaded(self):
        agg = [{"state": "CA", "dem": 70, "rep": 30, "margin": 0.4, "population": 39}]
        items = {i.obj_id: i for i in elections.compute_nested_treemap(agg, "DEM")}
        assert items["CA"].color not in ("#cccccc", "#eeeeee")
        assert items["TX"].color == "#cccccc"


class TestFullProcess:
    def test_election_night(self, db):
        engine = WorkflowEngine(db)
        propagation = PropagationManager(engine)
        engine.procedures.register(elections.AggregateVotes())
        engine.procedures.register(elections.TreemapVotes())
        definition = elections.build_process()
        engine.deploy(definition)

        feed = elections.ReturnsFeed(seed=4, total_minutes=10)
        batches = list(feed.batches())
        # Early returns arrive before the process starts.
        db.insert_many(elections.T_VOTES, batches[0].rows)
        execution = engine.run("us-elections")
        assert execution.instance.is_running()  # visualization is detached
        agg_after_start = {
            r["state"]: r["dem"] + r["rep"]
            for r in db.query(f"SELECT * FROM {elections.T_AGG}")
        }
        assert agg_after_start  # first batch aggregated

        # Election night continues: more returns arrive, the running
        # process reacts through its delta handlers.
        for batch in batches[1:4]:
            db.insert_many(elections.T_VOTES, batch.rows)
        total_votes = db.query(
            f"SELECT SUM(votes) AS s FROM {elections.T_VOTES}"
        )[0]["s"]
        agg_total = db.query(
            f"SELECT SUM(dem) AS d, SUM(rep) AS r FROM {elections.T_AGG}"
        )[0]
        assert agg_total["d"] + agg_total["r"] == total_votes

        # The visualization refreshed on each delta batch.
        vis_proc = engine.procedures.instantiate("treemap_votes")
        reported = [i for i in vis_proc.last_items if i.color != "#cccccc"]
        assert reported

        scopes = {entry.scope for entry in propagation.log}
        assert "ra" in scopes
        engine.close(execution)
