"""The telemetry dashboard: pure visual mappings + the headless e2e the
CI obs-smoke job drives."""

import json

import pytest

import repro.obs as obs
from repro.apps.telemetry import (
    TelemetryDashboard,
    attach_dashboard,
    compute_coalesce_treemap,
    compute_latency_points,
    compute_span_waterfall,
    latest_series_rows,
)
from repro.obs.store import TelemetrySink


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def span_row(span_id, name, start, end, kind="span"):
    return {
        "span_id": span_id,
        "trace_id": span_id,
        "parent_id": None,
        "name": name,
        "kind": kind,
        "start_ns": start,
        "end_ns": end,
        "duration_ms": (end - start) / 1e6 if end else None,
        "thread": "t",
        "tags": "{}",
    }


def metric_row(name, stat, value, snap=1, table="nodes", kind="histogram"):
    return {
        "snap": snap,
        "ts": snap,
        "kind": kind,
        "name": name,
        "labels": json.dumps({"table": table}),
        "stat": stat,
        "value": value,
    }


class TestLatestSeriesRows:
    def test_newest_snap_wins_per_series(self):
        rows = [
            metric_row("db.writes", "value", 1.0, snap=1),
            metric_row("db.writes", "value", 5.0, snap=3),
            metric_row("db.writes", "value", 3.0, snap=2),
        ]
        (latest,) = latest_series_rows(rows)
        assert latest["value"] == 5.0

    def test_absent_from_latest_snap_means_unchanged(self):
        """Changed-only persistence: a series with no row at the newest
        snap still surfaces with its older value."""
        rows = [
            metric_row("db.writes", "value", 7.0, snap=1, table="a"),
            metric_row("db.writes", "value", 2.0, snap=4, table="b"),
        ]
        by_table = {
            json.loads(r["labels"])["table"]: r["value"]
            for r in latest_series_rows(rows)
        }
        assert by_table == {"a": 7.0, "b": 2.0}


class TestWaterfall:
    def test_empty_rows_give_no_items(self):
        assert compute_span_waterfall([]) == []

    def test_one_lane_per_span_name(self):
        rows = [
            span_row(1, "db.write", 0, 100),
            span_row(2, "sync.notify", 50, 150),
            span_row(3, "db.write", 200, 300),
        ]
        items = compute_span_waterfall(rows, width=900, height=400)
        assert len(items) == 3
        lanes = {i.label.split()[0]: i.y for i in items}
        assert len(set(lanes.values())) == 2  # two names -> two lanes
        assert all(i.width >= 1.0 for i in items)
        assert all(0 <= i.x <= 900 for i in items)

    def test_workflow_and_unfinished_rows_excluded(self):
        rows = [
            span_row(1, "db.write", 0, 100),
            span_row(-1, "workflow.process:p", 1, 9, kind="workflow"),
            span_row(5, "open", 10, None),
        ]
        items = compute_span_waterfall(rows)
        assert [i.obj_id for i in items] == [1]

    def test_limit_keeps_newest(self):
        rows = [span_row(i, "op", i * 10, i * 10 + 5) for i in range(20)]
        items = compute_span_waterfall(rows, limit=4)
        assert sorted(i.obj_id for i in items) == [16, 17, 18, 19]

    def test_labels_carry_duration(self):
        (item,) = compute_span_waterfall([span_row(1, "db.write", 0, 2_000_000)])
        assert item.label == "db.write 2.00ms"


class TestLatencyScatter:
    def test_empty_rows_give_no_items(self):
        assert compute_latency_points([]) == []

    def test_one_dot_per_table_quantile(self):
        rows = [
            metric_row("sync.notify_to_applied_ms", stat, v, table=t)
            for t in ("a", "b")
            for stat, v in (("p50", 1.0), ("p95", 2.0), ("p99", 3.0))
        ]
        # count/sum rows must not become dots.
        rows.append(metric_row("sync.notify_to_applied_ms", "count", 99.0))
        items = compute_latency_points(rows)
        assert len(items) == 6
        keys = {i.obj_id for i in items}
        assert keys == {f"{t}:p{q}" for t in ("a", "b") for q in (50, 95, 99)}

    def test_other_metrics_ignored(self):
        rows = [metric_row("db.execute_ms", "p50", 1.0)]
        assert compute_latency_points(rows) == []


class TestCoalesceTreemap:
    def test_cell_area_tracks_savings(self):
        rows = [
            metric_row("sync.coalesced_away", "value", 30.0, table="a", kind="counter"),
            metric_row("sync.coalesced_away", "value", 10.0, table="b", kind="counter"),
        ]
        items = compute_coalesce_treemap(rows, width=100, height=100)
        area = {i.obj_id: i.width * i.height for i in items}
        assert area["a"] == pytest.approx(3 * area["b"])
        assert sum(area.values()) == pytest.approx(100 * 100)
        assert all("saved" in i.label for i in items)

    def test_falls_back_to_write_volume(self):
        rows = [metric_row("db.writes", "value", 5.0, table="a", kind="counter")]
        (item,) = compute_coalesce_treemap(rows)
        assert "writes" in item.label

    def test_empty_rows_give_no_items(self):
        assert compute_coalesce_treemap([]) == []


# ---------------------------------------------------------------------------
# Headless end-to-end (what the CI obs-smoke job runs)


def make_workload(n):
    tracer = obs.tracer()
    for i in range(n):
        with tracer.span("db.write", tags={"table": "nodes"}):
            pass
    obs.metrics().counter("db.writes", table="nodes").inc(n)
    obs.metrics().histogram("sync.notify_to_applied_ms", table="nodes").observe(0.4)


class TestDashboardEndToEnd:
    def test_two_flush_cycles_update_the_views(self):
        obs.enable()
        sink = TelemetrySink()
        dashboard = TelemetryDashboard(sink)
        try:
            make_workload(6)
            sink.collect_and_flush()
            first = dashboard.refresh()
            assert first["span_rows"] >= 6
            assert first["waterfall_items"] >= 6
            assert first["latency_items"] == 3  # p50/p95/p99 for one table
            # >= 1: the sync layer's own connected-user bookkeeping may
            # contribute a write-volume cell alongside the workload's.
            assert first["savings_items"] >= 1
            assert first["snap"] == 1

            make_workload(4)
            sink.collect_and_flush()
            second = dashboard.refresh()
            assert second["span_rows"] > first["span_rows"]
            assert second["snap"] == 2
            assert dashboard.refreshes == 2

            summary = dashboard.span_summary()
            row = next(r for r in summary if r["name"] == "db.write")
            assert row["n"] == 10
            text = dashboard.format_summary()
            assert "db.write" in text and "count" in text
            svgs = dashboard.render_svg()
            assert set(svgs) == {
                "span-waterfall",
                "notify-latency",
                "coalesce-savings",
                "flame-icicle",
            }
            assert all(svg.startswith("<svg") for svg in svgs.values())
            # The whole cycle left the tracer clean (recursion guard).
            assert len(obs.tracer()) == 0
        finally:
            dashboard.close()
            sink.close()

    def test_socket_mode_end_to_end(self):
        """The same e2e with the dashboard mirror on a real socket."""
        obs.enable()
        sink = TelemetrySink()
        dashboard = TelemetryDashboard(sink, use_sockets=True)
        try:
            make_workload(3)
            sink.collect_and_flush()
            stats = dashboard.refresh()
            assert stats["span_rows"] >= 3
            assert stats["waterfall_items"] >= 3
        finally:
            dashboard.close()
            sink.close()

    def test_attach_dashboard_builds_its_own_sink(self):
        dashboard = attach_dashboard()
        try:
            assert isinstance(dashboard.sink, TelemetrySink)
            assert dashboard.refresh()["span_rows"] == 0
        finally:
            dashboard.close()
            dashboard.sink.close()
