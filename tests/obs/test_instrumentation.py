"""Layer instrumentation: the spans and metrics each subsystem emits."""

import pytest

import repro.obs as obs
from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT
from repro.ivm.registry import ViewRegistry
from repro.ivm.view import SelectProjectView
from repro.vis.display import Display
from repro.vis.attributes import VisualItem
from repro.vis.layout.force import FruchtermanReingold
from repro.vis.layout.graph import Graph
from repro.vis.layout.linlog import LinLogLayout


@pytest.fixture
def emp_db():
    db = Database("obs-test")
    db.create_table(
        "emp",
        [Column("id", INTEGER, nullable=False), Column("name", TEXT)],
        primary_key="id",
    )
    db.insert_many("emp", [{"id": i, "name": f"e{i}"} for i in range(50)])
    return db


class TestDisabledByDefault:
    def test_no_spans_recorded_while_disabled(self, emp_db):
        assert not obs.enabled()
        emp_db.execute("SELECT * FROM emp WHERE id = 7")
        emp_db.insert("emp", {"id": 1000, "name": "x"})
        assert len(obs.tracer()) == 0

    def test_runtime_switchable(self, emp_db):
        obs.enable()
        emp_db.execute("SELECT * FROM emp WHERE id = 7")
        traced = len(obs.tracer())
        assert traced > 0
        obs.disable()
        emp_db.execute("SELECT * FROM emp WHERE id = 8")
        assert len(obs.tracer()) == traced  # nothing new

    def test_public_and_impl_paths_agree(self, emp_db):
        via_public = emp_db.execute("SELECT * FROM emp WHERE id = 7")
        via_impl = emp_db._execute_impl("SELECT * FROM emp WHERE id = 7", ())
        assert via_public.rows == via_impl.rows


class TestDatabaseSpans:
    def test_execute_span_tags_routed_access(self, emp_db, enabled_obs):
        emp_db.execute("SELECT * FROM emp WHERE id = 7")
        (span,) = obs.tracer().spans_named("db.execute")
        assert span.tags["kind"] == "select"
        assert span.tags["access"] == "routed"  # primary-key probe
        assert span.tags["rows"] == 1

    def test_execute_span_tags_scan_access(self, emp_db, enabled_obs):
        emp_db.execute("SELECT * FROM emp WHERE name = 'e7'")
        (span,) = obs.tracer().spans_named("db.execute")
        assert span.tags["access"] == "scan"  # name is unindexed

    def test_statement_counters_and_latency(self, emp_db, enabled_obs):
        emp_db.execute("SELECT * FROM emp WHERE id = 7")
        emp_db.execute("SELECT * FROM emp WHERE id = 7")
        snap = obs.metrics().snapshot()
        assert snap["counters"]["db.statements{kind=select}"] == 2
        assert snap["histograms"]["db.execute_ms{kind=select}"]["count"] == 2

    def test_cache_counters_fold_in(self, emp_db, enabled_obs):
        emp_db.execute("SELECT * FROM emp WHERE id = 11")
        emp_db.execute("SELECT * FROM emp WHERE id = 11")
        counters = obs.metrics().snapshot()["counters"]
        assert counters.get("db.statement_cache{result=miss}", 0) >= 1
        assert counters.get("db.statement_cache{result=hit}", 0) >= 1

    def test_write_spans_for_each_operation(self, emp_db, enabled_obs):
        emp_db.insert("emp", {"id": 1000, "name": "new"})
        emp_db.execute("UPDATE emp SET name = 'renamed' WHERE id = 1000")
        emp_db.execute("DELETE FROM emp WHERE id = 1000")
        writes = obs.tracer().spans_named("db.write")
        ops = sorted(s.tags["op"] for s in writes)
        assert ops == ["delete", "insert", "update"]
        assert all(s.tags["table"] == "emp" for s in writes)
        counters = obs.metrics().snapshot()["counters"]
        assert counters["db.writes{op=insert,table=emp}"] == 1
        assert counters["db.writes{op=update,table=emp}"] == 1
        assert counters["db.writes{op=delete,table=emp}"] == 1

    def test_install_metrics_exports_cache_gauges(self, emp_db, enabled_obs):
        emp_db.install_metrics()
        emp_db.execute("SELECT * FROM emp WHERE id = 3")
        emp_db.execute("SELECT * FROM emp WHERE id = 3")
        gauges = obs.metrics().snapshot()["gauges"]
        info = emp_db.cache_info()
        assert gauges["db.cache.statements.hits{db=obs-test}"] == (
            info["statements"]["hits"]
        )
        assert gauges["db.cache.plans.size{db=obs-test}"] == info["plans"]["size"]


class TestTriggerSpans:
    def test_trigger_span_nests_under_write(self, emp_db, enabled_obs):
        fired = []
        emp_db.on("emp", ("insert",), lambda change: fired.append(change))
        emp_db.insert("emp", {"id": 2000, "name": "t"})
        assert fired
        (write,) = [
            s for s in obs.tracer().spans_named("db.write") if s.parent_id is None
        ]
        (trigger,) = obs.tracer().spans_named("db.trigger")
        assert trigger.parent_id == write.span_id
        assert trigger.tags["table"] == "emp"
        histograms = obs.metrics().snapshot()["histograms"]
        assert histograms["db.trigger_ms{table=emp}"]["count"] == 1

    def test_no_trigger_span_without_triggers(self, emp_db, enabled_obs):
        emp_db.insert("emp", {"id": 2001, "name": "quiet"})
        assert obs.tracer().spans_named("db.trigger") == []


class TestIvmSpans:
    def test_delta_apply_span_and_histograms(self, emp_db, enabled_obs):
        registry = ViewRegistry(emp_db)
        registry.register(SelectProjectView("all_emp", "emp"))
        emp_db.insert_many("emp", [{"id": 3000 + i, "name": "v"} for i in range(4)])
        (span,) = obs.tracer().spans_named("ivm.delta_apply")
        assert span.tags["view"] == "all_emp"
        assert span.tags["rows"] == 4
        histograms = obs.metrics().snapshot()["histograms"]
        assert histograms["ivm.delta_rows{view=all_emp}"]["sum"] == 4
        assert histograms["ivm.maintenance_ms{view=all_emp}"]["count"] == 1


class TestVisSpans:
    def test_linlog_layout_span(self, enabled_obs):
        graph = Graph()
        for i in range(6):
            graph.add_node(i)
        for i in range(5):
            graph.add_edge(i, i + 1)
        result = LinLogLayout(graph).run(max_iterations=10)
        (span,) = obs.tracer().spans_named("vis.layout")
        assert span.tags["algo"] == "linlog"
        assert span.tags["nodes"] == 6
        assert span.tags["iterations"] == result.iterations
        histograms = obs.metrics().snapshot()["histograms"]
        assert histograms["vis.layout_ms{algo=linlog}"]["count"] == 1

    def test_fr_layout_span(self, enabled_obs):
        graph = Graph()
        for i in range(4):
            graph.add_node(i)
        FruchtermanReingold(graph).run(max_iterations=5)
        (span,) = obs.tracer().spans_named("vis.layout")
        assert span.tags["algo"] == "fr"

    def test_display_apply_span(self, enabled_obs):
        display = Display("main")
        display.apply_rows(
            [
                VisualItem(obj_id=i, x=float(i), y=0.0).to_row(1, i)
                for i in range(3)
            ]
        )
        (span,) = obs.tracer().spans_named("vis.display.apply")
        assert span.tags == {"display": "main", "rows": 3}
        histograms = obs.metrics().snapshot()["histograms"]
        assert histograms["vis.display_apply_ms{display=main}"]["count"] == 1


class TestWorkflowSpans:
    def test_activity_spans_with_instance_ids(self, enabled_obs):
        from repro.workflow import ProcessDefinition, UpdateTable, seq
        from repro.workflow.engine import WorkflowEngine

        db = Database("wf-obs")
        db.execute("CREATE TABLE t (v INTEGER)")
        engine = WorkflowEngine(db)
        engine.deploy(
            ProcessDefinition(
                "p",
                seq(
                    UpdateTable("w1", "INSERT INTO t (v) VALUES (1)"),
                    UpdateTable("w2", "INSERT INTO t (v) VALUES (2)"),
                ),
            )
        )
        execution = engine.run("p")
        (process_span,) = obs.tracer().spans_named("workflow.process")
        assert process_span.tags["process_instance_id"] == execution.id
        activity_spans = obs.tracer().spans_named("workflow.activity")
        assert [s.tags["activity"] for s in activity_spans] == ["w1", "w2"]
        assert all(s.parent_id == process_span.span_id for s in activity_spans)
        assert all(s.tags["type"] == "UpdateTable" for s in activity_spans)
        histograms = obs.metrics().snapshot()["histograms"]
        assert histograms["workflow.activity_ms{activity=w1}"]["count"] == 1
