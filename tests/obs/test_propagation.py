"""End-to-end propagation traces: the live Figure 8 breakdown."""

import pytest

import repro.obs as obs
from repro.db import Column, Database
from repro.db.types import INTEGER, TEXT
from repro.ivm.registry import ViewRegistry
from repro.ivm.view import SelectProjectView
from repro.obs import STAGES, propagation_report
from repro.sync.client import SyncClient
from repro.sync.server import SyncServer
from repro.vis.display import Display
from repro.vis.attributes import VisualItem
from repro.vis.layout.graph import Graph
from repro.vis.layout.linlog import LinLogLayout


@pytest.fixture
def pipeline():
    """A full reactive pipeline: DB -> notify -> mirror -> IVM -> vis."""
    db = Database("ediflow")
    db.create_table(
        "nodes",
        [Column("id", INTEGER, nullable=False), Column("label", TEXT)],
    )
    server = SyncServer(db, use_sockets=False)
    client = SyncClient(server)
    mirror = client.mirror("nodes")
    registry = ViewRegistry(db)
    registry.register(SelectProjectView("all_nodes", "nodes"))
    yield db, client, mirror
    client.close()
    server.close()


def drive_one_update(db, client, mirror, rows=5):
    """One table update, propagated through every stage."""
    db.insert_many("nodes", [{"id": i, "label": f"n{i}"} for i in range(rows)])
    client.refresh("nodes")
    # The visualization reacts inside the refresh's trace -- exactly what
    # RefreshDriver listeners do via _notify_listeners.
    with obs.tracer().activate(client.last_refresh_context("nodes")):
        graph = Graph()
        for row in mirror.all_rows():
            graph.add_node(row["id"])
        result = LinLogLayout(graph).run(max_iterations=5)
        display = Display()
        display.apply_rows(
            [
                VisualItem(obj_id=n, x=x, y=y).to_row(1, n)
                for n, (x, y) in result.positions.items()
            ]
        )


class TestEndToEnd:
    def test_all_six_stages_present_with_nonzero_durations(
        self, pipeline, enabled_obs
    ):
        db, client, mirror = pipeline
        drive_one_update(db, client, mirror)
        report = propagation_report()
        assert report.missing_stages() == []
        assert set(report.stages) == set(STAGES)
        for stage, duration in report.stages.items():
            assert duration > 0, f"stage {stage} has zero duration"
        assert report.table == "nodes"
        assert report.total_ms == pytest.approx(sum(report.stages.values()))

    def test_single_trace_spans_all_layers(self, pipeline, enabled_obs):
        db, client, mirror = pipeline
        drive_one_update(db, client, mirror)
        report = propagation_report()
        names = {span.name for span in report.spans}
        assert {
            "db.write",
            "db.trigger",
            "sync.notify",
            "sync.mirror_refresh",
            "ivm.delta_apply",
            "vis.layout",
            "vis.display.apply",
        } <= names
        # All spans belong to one trace: the stitched propagation.
        assert len({span.trace_id for span in report.spans}) == 1

    def test_mirror_refresh_reparented_onto_notify(self, pipeline, enabled_obs):
        db, client, mirror = pipeline
        drive_one_update(db, client, mirror)
        report = propagation_report()
        by_id = {span.span_id: span for span in report.spans}
        (refresh,) = [s for s in report.spans if s.name == "sync.mirror_refresh"]
        assert by_id[refresh.parent_id].name == "sync.notify"
        histograms = obs.metrics().snapshot()["histograms"]
        assert histograms["sync.notify_to_applied_ms{table=nodes}"]["count"] == 1

    def test_format_lists_every_stage(self, pipeline, enabled_obs):
        db, client, mirror = pipeline
        drive_one_update(db, client, mirror)
        text = propagation_report().format()
        for stage in STAGES:
            assert stage in text
        assert "span tree:" in text
        assert "(absent)" not in text

    def test_as_dict_round_trips(self, pipeline, enabled_obs):
        import json

        db, client, mirror = pipeline
        drive_one_update(db, client, mirror)
        payload = propagation_report().as_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["table"] == "nodes"
        assert decoded["missing"] == []
        assert len(decoded["spans"]) == len(payload["spans"])

    def test_prefers_trace_that_reached_the_mirror(self, pipeline, enabled_obs):
        db, client, mirror = pipeline
        drive_one_update(db, client, mirror)
        # A later write that is never refreshed must not displace the
        # complete propagation trace.
        db.insert("nodes", {"id": 999, "label": "stray"})
        report = propagation_report()
        assert "mirror_refresh" in report.stages


class TestErrors:
    def test_lookup_error_when_nothing_captured(self, enabled_obs):
        with pytest.raises(LookupError):
            propagation_report()

    def test_lookup_error_when_disabled(self, pipeline):
        db, client, mirror = pipeline
        drive_one_update(db, client, mirror)  # tracing off: nothing lands
        with pytest.raises(LookupError):
            propagation_report()

    def test_unknown_trace_id(self, enabled_obs):
        with pytest.raises(LookupError):
            propagation_report(trace_id=123456)
