"""Telemetry under faults: the observer must survive the same network
failures as the pipeline it observes -- and never observe itself while
recovering."""

import time

import pytest

import repro.obs as obs
from repro.apps.telemetry import TelemetryDashboard
from repro.obs.store import SYS_SPANS, TelemetrySink
from repro.retry import RetryPolicy
from repro.sync import FaultPlan, FaultyTransport, SyncClient, SyncServer
from repro.sync import client as client_mod

HB = 0.05


def fast_reconnect(max_attempts=10):
    return RetryPolicy(
        max_attempts=max_attempts,
        base_delay=0.01,
        multiplier=1.5,
        max_delay=0.1,
        jitter=0.5,
        retryable=(OSError, Exception),
    )


def make_spans(count, table="nodes"):
    tracer = obs.tracer()
    for i in range(count):
        with tracer.span("work", tags={"table": table, "i": i}):
            pass


def faulted_telemetry_stack(plans):
    """A telemetry sink whose dashboard socket runs ``plans[N]`` on its
    Nth callback connection; later connections run clean."""
    sink = TelemetrySink()
    queue = list(plans)

    def factory(stream):
        return FaultyTransport(stream, queue.pop(0) if queue else None)

    server = SyncServer(
        sink.database,
        sink.center,
        use_sockets=True,
        heartbeat_interval=HB,
        transport_factory=factory,
    )
    client = SyncClient(
        server, reconnect=fast_reconnect(), heartbeat_timeout=HB * 5
    )
    return sink, server, client


def stored_span_ids(sink):
    with obs.tracer().suppress():
        return sorted(
            r["span_id"]
            for r in sink.database.query(f"SELECT span_id FROM {SYS_SPANS}")
        )


def mirrored_span_ids(client):
    return sorted(r["span_id"] for r in client.table(SYS_SPANS).all_rows())


class TestSinkUnderFaults:
    def test_sys_spans_mirror_survives_reconnect_replay(self, enabled_obs):
        """Kill the dashboard's socket mid-session: missed sys_spans
        notifications must replay after reconnect and the mirror must
        converge to the base table."""
        # Message 0 is the handshake REPLY; die on the 3rd send.
        sink, server, client, = faulted_telemetry_stack([FaultPlan(disconnect_at=2)])
        try:
            client.mirror(SYS_SPANS)
            make_spans(3)
            sink.collect_and_flush()
            # Keep flushing through the failure window: some of these
            # NOTIFYB frames die on the severed transport.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and client.reconnects == 0:
                make_spans(1)
                sink.collect_and_flush()
                time.sleep(0.01)
            assert client.reconnects >= 1, "dashboard client never reconnected"
            assert client.wait_status(client_mod.CONNECTED, timeout=5.0)
            make_spans(2)
            sink.collect_and_flush()
            with obs.tracer().suppress():
                client.refresh(SYS_SPANS)
            assert mirrored_span_ids(client) == stored_span_ids(sink)
        finally:
            client.close()
            server.close()
            sink.close()

    def test_flush_tolerates_a_dead_dashboard(self, enabled_obs):
        """A dashboard whose transport is dead must not break the sink:
        collect_and_flush keeps persisting and the missed notifications
        are counted for replay."""
        sink, server, client = faulted_telemetry_stack([FaultPlan(disconnect_at=1)])
        try:
            client.mirror(SYS_SPANS)
            for _ in range(4):
                make_spans(2)
                sink.collect_and_flush()
            # Every workload span persisted regardless of the
            # dashboard's health (the client's own untagged connection
            # spans may legitimately ride along).
            with obs.tracer().suppress():
                work = sink.database.query(
                    f"SELECT name FROM {SYS_SPANS} WHERE name = 'work'"
                )
            assert len(work) == 8
        finally:
            client.close()
            server.close()
            sink.close()


class TestRecursionGuardRegression:
    def test_idle_cycles_with_live_dashboard_stay_stable(self, enabled_obs):
        """The acceptance regression: sink + dashboard attached, repeated
        collect/flush/refresh cycles with NO workload must leave the span
        table and the ring buffer flat -- the observer never observes
        itself."""
        sink = TelemetrySink()
        dashboard = TelemetryDashboard(sink)
        try:
            make_spans(5)
            sink.collect_and_flush()
            dashboard.refresh()
            baseline = stored_span_ids(sink)
            for _ in range(6):
                sink.collect_and_flush()
                dashboard.refresh()
            assert stored_span_ids(sink) == baseline
            assert len(obs.tracer()) == 0, "telemetry leaked into the tracer"
            assert sink.guard_dropped == 0, "suppression already guards here"
        finally:
            dashboard.close()
            sink.close()

    def test_unsuppressed_observer_is_guard_dropped(self, enabled_obs):
        """Second guard layer: a foreign thread's spans over the system
        tables (an unsuppressed dashboard) are dropped at collect time."""
        sink = TelemetrySink()
        try:
            make_spans(2, table="nodes")
            make_spans(3, table=SYS_SPANS)  # what a rogue observer produces
            stats = sink.collect_and_flush()
            assert stats["spans"] == 2
            assert stats["dropped"] == 3
            assert sink.guard_dropped == 3
            assert stored_span_ids(sink) == stored_span_ids(sink)  # stable reads
            names = {
                r["name"]
                for r in sink.database.query(f"SELECT name FROM {SYS_SPANS}")
            }
            assert names == {"work"}
        finally:
            sink.close()

    @pytest.mark.parametrize("cycles", [3])
    def test_dashboard_refresh_emits_no_spans(self, enabled_obs, cycles):
        sink = TelemetrySink()
        dashboard = TelemetryDashboard(sink)
        try:
            make_spans(4)
            for _ in range(cycles):
                sink.collect_and_flush()
                dashboard.refresh()
                assert len(obs.tracer()) == 0
        finally:
            dashboard.close()
            sink.close()
