"""Observability test fixtures: a clean, enabled runtime per test."""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Guarantee every test starts disabled and empty, and leaves no
    spans or metrics behind for its neighbors."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def enabled_obs():
    obs.enable()
    return obs
