"""The slow-path attributor: budgets, evidence capture, noise control.

Covers the ISSUE-10 contracts: over-budget statements recorded with
EXPLAIN ANALYZE operator rows, over-budget spans recorded via the tracer
finish hook with profile stacks, per-statement dedup, capacity eviction,
the recursion guard (the slowlog never logs its own reads/writes), and
the Database enable/disable lifecycle.
"""

import json
import time

import pytest

import repro.obs as obs
from repro.db import Column, Database
from repro.db.types import FLOAT, INTEGER
from repro.obs.slowlog import SYS_SLOWLOG, SlowLog


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def make_db(rows=5000):
    db = Database()
    db.create_table(
        "pts",
        [Column("id", INTEGER, nullable=False), Column("x", FLOAT)],
        primary_key="id",
    )
    if rows:
        db.insert_many("pts", [{"id": i, "x": float(i)} for i in range(rows)])
    return db


def busy_span(name, seconds=0.02, tags=None):
    with obs.tracer().span(name, tags=tags) as span:
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            sum(i * i for i in range(500))
    return span


SLOW_SQL = "SELECT * FROM pts WHERE x > 10.0"


class TestQueryPath:
    def test_over_budget_select_recorded_with_operator_rows(self):
        obs.enable()
        db = make_db(20000)
        log = db.enable_slowlog(budget_ms=0.001)
        try:
            db.query(SLOW_SQL)
            (entry,) = log.entries()
            assert entry["kind"] == "query"
            assert entry["name"] == SLOW_SQL
            assert entry["duration_ms"] > 0
            assert entry["budget_ms"] == 0.001
            operators = json.loads(entry["operators"])
            assert operators, "EXPLAIN ANALYZE rows missing"
            labels = [label for label, _rows in operators]
            assert any("Scan" in label for label in labels)
            # The scan saw every row (counters from the real re-run).
            assert max(rows for _label, rows in operators) >= 20000
        finally:
            db.disable_slowlog()

    def test_under_budget_statement_not_recorded(self):
        obs.enable()
        db = make_db(100)
        log = db.enable_slowlog(budget_ms=10_000.0)
        try:
            db.query(SLOW_SQL)
            assert log.entries() == []
        finally:
            db.disable_slowlog()

    def test_per_statement_dedup_caps_entries(self):
        obs.enable()
        db = make_db(20000)
        log = db.enable_slowlog(budget_ms=0.001, max_per_statement=2)
        try:
            for _ in range(5):
                db.query(SLOW_SQL)
            entries = [e for e in log.entries() if e["name"] == SLOW_SQL]
            assert len(entries) == 2
            assert log.suppressed == 3
            log.reset_dedup()
            db.query(SLOW_SQL)
            entries = [e for e in log.entries() if e["name"] == SLOW_SQL]
            assert len(entries) == 3
        finally:
            db.disable_slowlog()

    def test_profile_stacks_attached_when_profiler_running(self):
        obs.enable()
        obs.OBS.enable_profiler(hz=1000)
        db = make_db(50000)
        log = db.enable_slowlog(budget_ms=0.001)
        try:
            db.query(SLOW_SQL)
            entries = [e for e in log.entries() if e["kind"] == "query"]
            assert entries
            stacked = [e for e in entries if e["stacks"]]
            assert stacked, "no profile stacks captured for a slow query"
            stacks = json.loads(stacked[0]["stacks"])
            assert all(ms >= 0 for ms in stacks.values())
        finally:
            db.disable_slowlog()
            obs.OBS.disable_profiler()

    def test_non_select_statements_recorded_without_operators(self):
        obs.enable()
        db = make_db(0)
        log = db.enable_slowlog(budget_ms=0.0001)
        try:
            db.execute("INSERT INTO pts (id, x) VALUES (1, 1.0)")
            entries = [e for e in log.entries() if e["kind"] == "query"]
            assert entries
            assert entries[0]["operators"] is None
        finally:
            db.disable_slowlog()

    def test_explain_false_skips_rerun(self):
        obs.enable()
        db = make_db(20000)
        log = db.enable_slowlog(budget_ms=0.001, explain=False)
        try:
            db.query(SLOW_SQL)
            (entry,) = log.entries()
            assert entry["operators"] is None
        finally:
            db.disable_slowlog()


class TestSpanPath:
    def test_over_budget_span_recorded(self):
        obs.enable()
        db = make_db(0)
        log = db.enable_slowlog(budget_ms=5.0)
        try:
            busy_span("ivm.delta_apply", seconds=0.02, tags={"table": "pts"})
            entries = [e for e in log.entries() if e["kind"] == "span"]
            assert len(entries) == 1
            assert entries[0]["name"] == "ivm.delta_apply"
            assert json.loads(entries[0]["tags"]) == {"table": "pts"}
        finally:
            db.disable_slowlog()

    def test_fast_span_not_recorded(self):
        obs.enable()
        db = make_db(0)
        log = db.enable_slowlog(budget_ms=10_000.0)
        try:
            busy_span("fast.op", seconds=0.001)
            assert log.entries() == []
        finally:
            db.disable_slowlog()

    def test_guarded_table_spans_never_recorded(self):
        """The observer never observes itself: spans tagged with
        telemetry tables (including sys_slowlog) are skipped."""
        obs.enable()
        db = make_db(0)
        log = db.enable_slowlog(budget_ms=1.0)
        try:
            busy_span("db.write", seconds=0.02, tags={"table": "sys_slowlog"})
            busy_span("sync.notify", seconds=0.02, tags={"table": "sys_metrics"})
            assert log.entries() == []
        finally:
            db.disable_slowlog()

    def test_slowlog_reads_do_not_feed_the_log(self):
        obs.enable()
        db = make_db(20000)
        log = db.enable_slowlog(budget_ms=0.001)
        try:
            db.query(SLOW_SQL)
            before = len(log.entries())
            # entries() runs a SELECT over sys_slowlog on this db; it
            # must not create new slowlog entries no matter how slow.
            for _ in range(3):
                log.entries()
            assert len(log.entries()) == before
        finally:
            db.disable_slowlog()


class TestBoundsAndLifecycle:
    def test_capacity_evicts_oldest(self):
        obs.enable()
        db = make_db(0)
        log = SlowLog(db, budget_ms=0.5, capacity=3, max_per_statement=100)
        try:
            for i in range(6):
                busy_span(f"op.{i}", seconds=0.003)
            log.flush()
            entries = log.entries()
            assert len(entries) <= 3
            names = [e["name"] for e in entries]
            assert "op.5" in names  # newest kept
            assert "op.0" not in names  # oldest evicted
        finally:
            log.close()

    def test_enable_is_idempotent_and_disable_unhooks(self):
        obs.enable()
        db = make_db(0)
        log = db.enable_slowlog(budget_ms=1.0)
        assert db.enable_slowlog() is log
        assert db.slowlog() is log
        db.disable_slowlog()
        assert db.slowlog() is None
        busy_span("late.op", seconds=0.01)
        # The hook is gone: nothing recorded after disable.
        assert db.query(f"SELECT * FROM {SYS_SLOWLOG}") == []

    def test_counters_shape(self):
        obs.enable()
        db = make_db(0)
        log = db.enable_slowlog(budget_ms=1.0)
        try:
            busy_span("op.a", seconds=0.01)
            log.flush()
            counters = log.counters()
            assert counters["recorded"] >= 1
            assert counters["errors"] == 0
            assert counters["pending"] == 0
        finally:
            db.disable_slowlog()

    def test_invalid_parameters_rejected(self):
        db = make_db(0)
        with pytest.raises(ValueError):
            SlowLog(db, budget_ms=0)
        with pytest.raises(ValueError):
            SlowLog(db, capacity=0)

    def test_rows_survive_disable(self):
        obs.enable()
        db = make_db(0)
        db.enable_slowlog(budget_ms=1.0)
        busy_span("op.keep", seconds=0.01)
        db.slowlog().flush()
        db.disable_slowlog()
        rows = db.query(f"SELECT * FROM {SYS_SLOWLOG}")
        assert any(r["name"] == "op.keep" for r in rows)
