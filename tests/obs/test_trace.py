"""Tracer core: nesting, thread propagation, links, ring buffer."""

import json
import threading

from repro.obs import SpanContext, Tracer


class TestNesting:
    def test_root_span_gets_fresh_trace(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            pass
        assert span.parent_id is None
        assert span.trace_id != 0
        assert span.finished
        assert span.duration_ms >= 0

    def test_child_nests_under_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("origin") as origin:
            pass
        with tracer.span("elsewhere"):
            with tracer.span("joined", parent=origin.context()) as joined:
                pass
        assert joined.trace_id == origin.trace_id
        assert joined.parent_id == origin.span_id

    def test_tags_via_constructor_and_setter(self):
        tracer = Tracer()
        with tracer.span("op", tags={"table": "t"}) as span:
            span.set_tag("rows", 7)
        assert span.tags == {"table": "t", "rows": 7}

    def test_set_parent_reparents_before_children_start(self):
        tracer = Tracer()
        with tracer.span("origin") as origin:
            pass
        with tracer.span("late") as late:
            late.set_parent(origin.context())
            with tracer.span("child") as child:
                pass
        assert late.trace_id == origin.trace_id
        assert child.trace_id == origin.trace_id
        assert child.parent_id == late.span_id


class TestThreads:
    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("worker") as span:
                seen["worker"] = span

        with tracer.span("main") as main:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span must NOT nest under main's: different thread,
        # no activation.
        assert seen["worker"].parent_id is None
        assert seen["worker"].trace_id != main.trace_id

    def test_activate_joins_another_threads_trace(self):
        tracer = Tracer()
        seen = {}
        with tracer.span("main") as main:
            context = main.context()

        def worker():
            with tracer.activate(context):
                with tracer.span("joined") as span:
                    seen["joined"] = span

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["joined"].trace_id == main.trace_id
        assert seen["joined"].parent_id == main.span_id

    def test_activate_none_is_noop(self):
        tracer = Tracer()
        with tracer.activate(None):
            with tracer.span("free") as span:
                pass
        assert span.parent_id is None


class TestLinks:
    def test_link_round_trip(self):
        tracer = Tracer()
        context = SpanContext(11, 22)
        tracer.link(("notify", "t", 5), context)
        found = tracer.lookup_link(("notify", "t", 5))
        assert found is not None
        linked, registered_at = found
        assert linked is context
        assert registered_at > 0

    def test_lookup_missing_returns_none(self):
        assert Tracer().lookup_link("nope") is None

    def test_link_registry_is_bounded(self):
        tracer = Tracer(link_capacity=4)
        for i in range(10):
            tracer.link(i, SpanContext(1, i))
        assert tracer.lookup_link(0) is None  # evicted, oldest first
        assert tracer.lookup_link(9) is not None


class TestBufferAndExport:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["s2", "s3", "s4"]
        assert len(tracer) == 3

    def test_spans_named_and_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("a"):
            pass
        assert len(tracer.spans_named("a")) == 2
        traces = tracer.traces()
        assert len(traces) == 2
        sizes = sorted(len(spans) for spans in traces.values())
        assert sizes == [1, 2]

    def test_export_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("op", tags={"k": "v"}):
            pass
        exported = json.loads(tracer.export_json())
        assert len(exported) == 1
        record = exported[0]
        assert record["name"] == "op"
        assert record["tags"] == {"k": "v"}
        assert record["duration_ms"] >= 0
        assert record["end_ns"] >= record["start_ns"]
        assert record["thread"]

    def test_reset_clears_spans_and_links(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        tracer.link("k", SpanContext(1, 2))
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.lookup_link("k") is None


class TestSuppression:
    def test_suppressed_thread_gets_null_spans(self):
        tracer = Tracer()
        with tracer.suppress():
            assert tracer.suppressed
            with tracer.span("hidden") as span:
                span.set_tag("k", "v").add_event("e")
            assert span.span_id == 0
            assert span.finished
        assert not tracer.suppressed
        assert len(tracer) == 0

    def test_suppression_is_reentrant(self):
        tracer = Tracer()
        with tracer.suppress():
            with tracer.suppress():
                pass
            # Still suppressed after the inner exit.
            assert tracer.suppressed
            with tracer.span("hidden"):
                pass
        assert len(tracer) == 0

    def test_suppression_is_per_thread(self):
        tracer = Tracer()
        seen = []

        def other():
            with tracer.span("visible") as span:
                pass
            seen.append(span.span_id)

        with tracer.suppress():
            worker = threading.Thread(target=other)
            worker.start()
            worker.join()
        assert seen[0] != 0
        assert [s.name for s in tracer.finished_spans()] == ["visible"]

    def test_suppressed_spans_do_not_touch_the_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.suppress():
                with tracer.span("hidden"):
                    assert tracer.current_context().span_id == outer.span_id


class TestEvents:
    def test_events_round_trip_through_export(self):
        tracer = Tracer()
        with tracer.span("stmt") as span:
            span.add_event("explain.operator", operator="SeqScan", rows=3)
        record = json.loads(tracer.export_json())[0]
        assert len(record["events"]) == 1
        event = record["events"][0]
        assert event["name"] == "explain.operator"
        assert event["attrs"] == {"operator": "SeqScan", "rows": 3}
        assert span.start_ns <= event["ts_ns"] <= span.end_ns

    def test_events_keep_order(self):
        tracer = Tracer()
        with tracer.span("stmt") as span:
            for i in range(5):
                span.add_event("tick", i=i)
        assert [attrs["i"] for _, _, attrs in span.events] == list(range(5))


class TestDrain:
    def test_drain_empties_and_preserves_order(self):
        tracer = Tracer()
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        drained = tracer.drain()
        assert [s.name for s in drained] == ["a", "b", "c"]
        assert len(tracer) == 0
        assert tracer.drain() == []

    def test_concurrent_drain_loses_no_span(self):
        """Producers finishing spans while a consumer drains: every span
        lands in exactly one drain -- none lost, none duplicated."""
        tracer = Tracer(capacity=100_000)
        per_thread = 400
        threads = 4
        stop = threading.Event()
        drained = []

        def produce(tid):
            for i in range(per_thread):
                with tracer.span(f"s-{tid}-{i}"):
                    pass

        def consume():
            while not stop.is_set():
                drained.extend(tracer.drain())
            drained.extend(tracer.drain())

        producers = [
            threading.Thread(target=produce, args=(t,)) for t in range(threads)
        ]
        consumer = threading.Thread(target=consume)
        consumer.start()
        for p in producers:
            p.start()
        for p in producers:
            p.join()
        stop.set()
        consumer.join()

        names = [s.name for s in drained]
        assert len(names) == threads * per_thread
        assert len(set(names)) == threads * per_thread
        assert all(s.end_ns is not None for s in drained)

    def test_export_is_atomic_under_concurrent_finishes(self):
        """export_json must serialize one consistent snapshot while other
        threads keep appending finished spans."""
        tracer = Tracer(capacity=512)  # ring bounds the serialization cost
        stop = threading.Event()
        errors = []

        def produce():
            i = 0
            while not stop.is_set():
                with tracer.span(f"p-{i}"):
                    pass
                i += 1

        def export():
            try:
                for _ in range(20):
                    for record in json.loads(tracer.export_json()):
                        assert record["end_ns"] is not None
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        producers = [threading.Thread(target=produce) for _ in range(3)]
        exporter = threading.Thread(target=export)
        for p in producers:
            p.start()
        exporter.start()
        exporter.join()
        stop.set()
        for p in producers:
            p.join()
        assert errors == []


class TestFinishHooks:
    def test_hook_fires_on_finish_and_add_is_idempotent(self):
        tracer = Tracer()
        seen = []
        tracer.add_finish_hook(seen.append)
        tracer.add_finish_hook(seen.append)  # duplicate ignored
        with tracer.span("hooked"):
            pass
        assert [s.name for s in seen] == ["hooked"]

    def test_bound_method_hook_can_be_removed(self):
        """Regression: ``obj.method`` builds a fresh bound-method object
        on every attribute access, so unhooking must match by equality,
        not identity -- otherwise disable_profiler/SlowLog.close leak
        their hooks forever."""
        tracer = Tracer()

        class Listener:
            def __init__(self):
                self.spans = []

            def on_finish(self, span):
                self.spans.append(span)

        listener = Listener()
        tracer.add_finish_hook(listener.on_finish)
        # A second access to the attribute is a different object...
        assert listener.on_finish is not listener.on_finish
        # ...yet removal with it must still work.
        tracer.remove_finish_hook(listener.on_finish)
        with tracer.span("after-unhook"):
            pass
        assert listener.spans == []
