"""Tracer core: nesting, thread propagation, links, ring buffer."""

import json
import threading

from repro.obs import SpanContext, Tracer


class TestNesting:
    def test_root_span_gets_fresh_trace(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            pass
        assert span.parent_id is None
        assert span.trace_id != 0
        assert span.finished
        assert span.duration_ms >= 0

    def test_child_nests_under_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("origin") as origin:
            pass
        with tracer.span("elsewhere"):
            with tracer.span("joined", parent=origin.context()) as joined:
                pass
        assert joined.trace_id == origin.trace_id
        assert joined.parent_id == origin.span_id

    def test_tags_via_constructor_and_setter(self):
        tracer = Tracer()
        with tracer.span("op", tags={"table": "t"}) as span:
            span.set_tag("rows", 7)
        assert span.tags == {"table": "t", "rows": 7}

    def test_set_parent_reparents_before_children_start(self):
        tracer = Tracer()
        with tracer.span("origin") as origin:
            pass
        with tracer.span("late") as late:
            late.set_parent(origin.context())
            with tracer.span("child") as child:
                pass
        assert late.trace_id == origin.trace_id
        assert child.trace_id == origin.trace_id
        assert child.parent_id == late.span_id


class TestThreads:
    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("worker") as span:
                seen["worker"] = span

        with tracer.span("main") as main:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span must NOT nest under main's: different thread,
        # no activation.
        assert seen["worker"].parent_id is None
        assert seen["worker"].trace_id != main.trace_id

    def test_activate_joins_another_threads_trace(self):
        tracer = Tracer()
        seen = {}
        with tracer.span("main") as main:
            context = main.context()

        def worker():
            with tracer.activate(context):
                with tracer.span("joined") as span:
                    seen["joined"] = span

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["joined"].trace_id == main.trace_id
        assert seen["joined"].parent_id == main.span_id

    def test_activate_none_is_noop(self):
        tracer = Tracer()
        with tracer.activate(None):
            with tracer.span("free") as span:
                pass
        assert span.parent_id is None


class TestLinks:
    def test_link_round_trip(self):
        tracer = Tracer()
        context = SpanContext(11, 22)
        tracer.link(("notify", "t", 5), context)
        found = tracer.lookup_link(("notify", "t", 5))
        assert found is not None
        linked, registered_at = found
        assert linked is context
        assert registered_at > 0

    def test_lookup_missing_returns_none(self):
        assert Tracer().lookup_link("nope") is None

    def test_link_registry_is_bounded(self):
        tracer = Tracer(link_capacity=4)
        for i in range(10):
            tracer.link(i, SpanContext(1, i))
        assert tracer.lookup_link(0) is None  # evicted, oldest first
        assert tracer.lookup_link(9) is not None


class TestBufferAndExport:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["s2", "s3", "s4"]
        assert len(tracer) == 3

    def test_spans_named_and_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("a"):
            pass
        assert len(tracer.spans_named("a")) == 2
        traces = tracer.traces()
        assert len(traces) == 2
        sizes = sorted(len(spans) for spans in traces.values())
        assert sizes == [1, 2]

    def test_export_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("op", tags={"k": "v"}):
            pass
        exported = json.loads(tracer.export_json())
        assert len(exported) == 1
        record = exported[0]
        assert record["name"] == "op"
        assert record["tags"] == {"k": "v"}
        assert record["duration_ms"] >= 0
        assert record["end_ns"] >= record["start_ns"]
        assert record["thread"]

    def test_reset_clears_spans_and_links(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        tracer.link("k", SpanContext(1, 2))
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.lookup_link("k") is None
