"""Metrics registry: instruments, snapshot, Prometheus exposition."""

import re

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("events").inc(-1)

    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("msgs", type="notify")
        b = registry.counter("msgs", type="notify")
        c = registry.counter("msgs", type="ping")
        assert a is b
        assert a is not c


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_gauge_fn_evaluated_on_read(self):
        registry = MetricsRegistry()
        state = {"v": 1}
        gauge = registry.gauge_fn("cache.size", lambda: state["v"])
        assert gauge.value == 1
        state["v"] = 42
        assert gauge.value == 42
        assert registry.snapshot()["gauges"]["cache.size"] == 42


class TestHistogram:
    def test_observe_counts_and_sums(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(0.04)
        histogram.observe(0.2)
        histogram.observe(5000.0)  # beyond the last bucket
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5000.24)

    def test_buckets_are_cumulative_with_inf(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 100.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts == {"1": 2, "10": 3, "+Inf": 4}

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        histogram.observe(1.0)  # le="1" means <= 1
        assert histogram.bucket_counts()["1"] == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(10.0, 1.0))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", table="t").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c{table=t}": 1.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["sum"] == 1.5
        assert "+Inf" in snap["histograms"]["h"]["buckets"]

    def test_labels_sorted_in_series_name(self):
        registry = MetricsRegistry()
        registry.counter("c", zeta="1", alpha="2").inc()
        assert list(registry.snapshot()["counters"]) == ["c{alpha=2,zeta=1}"]

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def _parse_prometheus(text):
    """Minimal parser for the text exposition format: name{labels} value."""
    samples = {}
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$", line)
        assert match, f"malformed exposition line: {line!r}"
        name, labels, value = match.groups()
        samples[name + (labels or "")] = float(value)
    return samples


class TestPrometheusText:
    def test_dump_round_trips_against_snapshot(self):
        """Every snapshot value must be recoverable from the text dump."""
        registry = MetricsRegistry()
        registry.counter("sync.notifications", op="insert").inc(3)
        registry.gauge("sync.heartbeat_rtt_ms").set(1.25)
        histogram = registry.histogram("db.execute_ms", kind="select")
        histogram.observe(0.3)
        histogram.observe(40.0)

        samples = _parse_prometheus(registry.prometheus_text())
        snap = registry.snapshot()

        assert samples['repro_sync_notifications_total{op="insert"}'] == 3.0
        assert (
            samples["repro_sync_heartbeat_rtt_ms"]
            == snap["gauges"]["sync.heartbeat_rtt_ms"]
        )
        hist_snap = snap["histograms"]["db.execute_ms{kind=select}"]
        assert samples['repro_db_execute_ms_count{kind="select"}'] == hist_snap["count"]
        assert samples['repro_db_execute_ms_sum{kind="select"}'] == hist_snap["sum"]
        for bound, count in hist_snap["buckets"].items():
            key = f'repro_db_execute_ms_bucket{{kind="select",le="{bound}"}}'
            assert samples[key] == count

    def test_type_lines_present(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(1)
        text = registry.prometheus_text()
        assert "# TYPE repro_c_total counter" in text
        assert "# TYPE repro_g gauge" in text
        assert "# TYPE repro_h histogram" in text

    def test_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("sync.client.hook-failures").inc()
        text = registry.prometheus_text()
        assert "repro_sync_client_hook_failures_total" in text
        assert "." not in text.split()[-2]  # metric name carries no dots

    def test_label_values_escaped(self):
        """Backslash, quote, and newline in label values must be escaped
        per the exposition format -- raw, they corrupt the dump."""
        registry = MetricsRegistry()
        registry.counter("c", path='C:\\tmp\\"x"\nrest').inc(2)
        text = registry.prometheus_text()
        # One metric line (no raw newline leaked into the output).
        metric_lines = [l for l in text.splitlines() if not l.startswith("#") and l]
        assert len(metric_lines) == 1
        assert metric_lines[0] == (
            'repro_c_total{path="C:\\\\tmp\\\\\\"x\\"\\nrest"} 2'
        )

    def test_plain_label_values_unchanged(self):
        registry = MetricsRegistry()
        registry.gauge("g", table="nodes").set(7)
        assert 'repro_g{table="nodes"} 7' in registry.prometheus_text()


class TestQuantiles:
    def test_interpolation_within_a_bucket(self):
        # 10 varied observations all landing in the (1.0, 2.5] bucket:
        # the median interpolates linearly to the bucket midpoint.
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.5, 5.0))
        for index in range(10):
            histogram.observe(1.2 if index % 2 else 2.4)
        assert histogram.quantile(0.5) == pytest.approx(1.0 + (2.5 - 1.0) * 0.5)

    def test_identical_observations_are_exact(self):
        # All-equal observations must report the exact value, not an
        # interpolated point the histogram never saw.
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.5, 5.0))
        for _ in range(10):
            histogram.observe(2.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 2.0

    def test_single_bucket_clamps_to_observed_range(self):
        # One finite bucket: naive interpolation over [0, 5] would
        # report values below the true minimum and above the maximum.
        histogram = MetricsRegistry().histogram("h", buckets=(5.0,))
        histogram.observe(3.0)
        histogram.observe(4.0)
        assert histogram.quantile(0.0) == pytest.approx(3.0)
        assert histogram.quantile(1.0) == pytest.approx(4.0)
        for q in (0.25, 0.5, 0.99):
            value = histogram.quantile(q)
            assert 3.0 <= value <= 4.0
        assert histogram.min == 3.0
        assert histogram.max == 4.0

    def test_empty_histogram_min_max_none(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.min is None
        assert histogram.max is None
        snap = MetricsRegistry().snapshot()
        assert snap["histograms"] == {}

    def test_quantile_spans_buckets(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0):
            histogram.observe(value)
        # Rank 4 of 8 is the last observation of the (1.0, 2.0] bucket.
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        # Rank 0.25*8=2 exhausts the first bucket exactly.
        assert histogram.quantile(0.25) == pytest.approx(1.0)

    def test_overflow_clamps_to_observed_max(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        histogram.observe(5.0)
        histogram.observe(999.0)  # +Inf bucket
        # The +Inf bucket reports the true maximum, not the last finite
        # bound (10.0 would be a fabrication -- nothing landed there).
        assert histogram.quantile(0.99) == pytest.approx(999.0)

    def test_empty_histogram_returns_none(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.quantile(0.5) is None
        assert histogram.quantiles() == {"p50": None, "p95": None, "p99": None}

    def test_out_of_range_quantile_rejected(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_quantiles_keys(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(0.3)
        summary = histogram.quantiles()
        assert set(summary) == {"p50", "p95", "p99"}
        assert all(v is not None for v in summary.values())

    def test_snapshot_includes_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("db.execute_ms")
        for value in (0.2, 0.4, 0.6):
            histogram.observe(value)
        series = registry.snapshot()["histograms"]["db.execute_ms"]
        for stat in ("p50", "p95", "p99"):
            assert series[stat] == pytest.approx(histogram.quantile(
                float(stat.lstrip("p")) / 100
            ))
        assert series["p50"] <= series["p95"] <= series["p99"]

    def test_prometheus_text_has_quantile_series(self):
        registry = MetricsRegistry()
        registry.histogram("db.execute_ms", table="emp").observe(0.3)
        text = registry.prometheus_text()
        for q in ("0.5", "0.95", "0.99"):
            pattern = rf'repro_db_execute_ms\{{table="emp",quantile="{q}"\}} '
            assert re.search(pattern, text), pattern

    def test_empty_histogram_emits_no_quantile_series(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        assert "quantile=" not in registry.prometheus_text()
