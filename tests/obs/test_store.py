"""TelemetrySink: spans/metrics as system tables, guarded and bounded."""

import time
from types import SimpleNamespace

import pytest

import repro.obs as obs
from repro.obs.store import (
    SYS_METRICS,
    SYS_SPAN_EVENTS,
    SYS_SPANS,
    TelemetrySink,
)


def make_spans(count, name="work", table="nodes"):
    """Finish ``count`` real spans on the shared tracer."""
    tracer = obs.tracer()
    for i in range(count):
        with tracer.span(name, tags={"table": table, "i": i}):
            pass


@pytest.fixture
def sink():
    s = TelemetrySink()
    yield s
    s.close()


# ---------------------------------------------------------------------------
# Roundtrip


class TestRoundtrip:
    def test_span_rows_roundtrip(self, enabled_obs, sink):
        tracer = obs.tracer()
        with tracer.span("outer", tags={"table": "nodes"}) as outer:
            with tracer.span("inner"):
                time.sleep(0.001)
        stats = sink.collect()
        assert stats["spans"] == 2

        rows = {r["name"]: r for r in sink.database.query(f"SELECT * FROM {SYS_SPANS}")}
        assert set(rows) == {"outer", "inner"}
        assert rows["inner"]["parent_id"] == rows["outer"]["span_id"]
        assert rows["inner"]["trace_id"] == rows["outer"]["trace_id"]
        assert rows["outer"]["kind"] == "span"
        assert rows["outer"]["duration_ms"] > 0
        assert '"table": "nodes"' in rows["outer"]["tags"]
        assert outer.span_id == rows["outer"]["span_id"]

    def test_span_events_roundtrip(self, enabled_obs, sink):
        with obs.tracer().span("stmt") as span:
            span.add_event("explain.operator", operator="SeqScan", rows=42)
            span.add_event("explain.operator", operator="Filter", rows=7)
        sink.collect()

        events = sink.database.query(f"SELECT * FROM {SYS_SPAN_EVENTS}")
        assert len(events) == 2
        assert [e["seq"] for e in sorted(events, key=lambda e: e["seq"])] == [0, 1]
        assert all(e["span_id"] == span.span_id for e in events)
        assert any('"operator": "SeqScan"' in e["attrs"] for e in events)

    def test_metric_rows_roundtrip(self, enabled_obs, sink):
        obs.metrics().counter("db.writes", table="nodes").inc(5)
        obs.metrics().gauge("sync.clients").set(2)
        hist = obs.metrics().histogram("db.execute_ms")
        for v in (0.2, 0.4, 8.0):
            hist.observe(v)
        stats = sink.collect()
        assert stats["metrics"] > 0

        rows = sink.database.query(f"SELECT * FROM {SYS_METRICS}")
        by_series = {(r["name"], r["stat"]): r for r in rows}
        assert by_series[("db.writes", "value")]["value"] == 5.0
        assert by_series[("db.writes", "value")]["kind"] == "counter"
        assert '"table": "nodes"' in by_series[("db.writes", "value")]["labels"]
        assert by_series[("sync.clients", "value")]["value"] == 2.0
        assert by_series[("db.execute_ms", "count")]["value"] == 3.0
        assert by_series[("db.execute_ms", "sum")]["value"] == pytest.approx(8.6)
        # Quantile summaries persist alongside count/sum.
        for stat in ("p50", "p95", "p99"):
            assert (("db.execute_ms", stat)) in by_series
        assert all(r["snap"] == 1 for r in rows)

    def test_drain_empties_the_ring_buffer(self, enabled_obs, sink):
        make_spans(10)
        sink.collect()
        assert len(obs.tracer()) == 0
        # Nothing new -> nothing stored.
        assert sink.collect()["spans"] == 0


# ---------------------------------------------------------------------------
# Recursion guards


class TestRecursionGuard:
    def test_sink_writes_are_invisible_to_the_tracer(self, enabled_obs, sink):
        make_spans(5)
        sink.collect_and_flush()
        # The sink wrote dozens of rows into an instrumented database;
        # none of that may come back as spans on the next collect.
        assert len(obs.tracer()) == 0
        assert sink.collect()["spans"] == 0

    def test_spans_tagged_with_system_tables_are_dropped(self, enabled_obs, sink):
        make_spans(3, table="nodes")
        # A dashboard thread refreshing its telemetry mirror produces
        # spans tagged with the system tables -- they must never persist.
        make_spans(2, name="sync.mirror_refresh", table=SYS_SPANS)
        make_spans(1, name="db.write", table=SYS_METRICS)
        stats = sink.collect()
        assert stats["spans"] == 3
        assert stats["dropped"] == 3
        assert sink.guard_dropped == 3
        names = {
            r["name"] for r in sink.database.query(f"SELECT name FROM {SYS_SPANS}")
        }
        assert names == {"work"}

    def test_metric_series_labeled_with_system_tables_never_persist(
        self, enabled_obs, sink
    ):
        obs.metrics().counter("db.writes", table="nodes").inc()
        obs.metrics().counter("db.writes", table=SYS_SPANS).inc()
        obs.metrics().histogram("sync.flush_ms", table=SYS_METRICS).observe(1.0)
        sink.collect()
        rows = sink.database.query(f"SELECT * FROM {SYS_METRICS}")
        assert rows, "the workload series must persist"
        for row in rows:
            assert "sys_" not in row["labels"]

    def test_repeated_idle_cycles_stay_clean(self, enabled_obs, sink):
        """N idle collect/flush cycles must not grow the span table."""
        make_spans(4)
        sink.collect_and_flush()
        # Inspection queries against the telemetry database are traced
        # like any user query -- suppress them so they are not workload.
        with obs.tracer().suppress():
            baseline = len(sink.database.query(f"SELECT span_id FROM {SYS_SPANS}"))
            for _ in range(5):
                sink.collect_and_flush()
            after = len(sink.database.query(f"SELECT span_id FROM {SYS_SPANS}"))
        assert after == baseline == 4


# ---------------------------------------------------------------------------
# Metric keyframes + retention


class TestMetricPersistence:
    def test_unchanged_series_skipped_between_keyframes(self, enabled_obs, sink):
        counter = obs.metrics().counter("db.writes", table="nodes")
        counter.inc(3)
        sink.collect()  # snap 1: keyframe, everything persists
        sink.collect()  # snap 2: unchanged -> nothing
        counter.inc(1)
        sink.collect()  # snap 3: changed -> persists again

        snaps = sorted(
            r["snap"]
            for r in sink.database.query(f"SELECT * FROM {SYS_METRICS}")
            if r["name"] == "db.writes"
        )
        assert snaps == [1, 3]

    def test_keyframe_persists_unchanged_series(self, enabled_obs, sink):
        sink.metric_keyframe_every = 3
        obs.metrics().counter("db.writes", table="nodes").inc()
        for _ in range(4):
            sink.collect()  # snaps 1..4; keyframes at 1 and 4
        snaps = sorted(
            r["snap"]
            for r in sink.database.query(f"SELECT * FROM {SYS_METRICS}")
            if r["name"] == "db.writes"
        )
        assert snaps == [1, 4]

    def test_old_snaps_pruned_past_retention(self, enabled_obs, sink):
        sink.metric_retention = 3
        sink.metric_keyframe_every = 1  # every collect is a keyframe
        counter = obs.metrics().counter("db.writes", table="nodes")
        for _ in range(6):
            counter.inc()
            sink.collect()
        snaps = {r["snap"] for r in sink.database.query(f"SELECT * FROM {SYS_METRICS}")}
        assert snaps == {4, 5, 6}

    def test_every_live_series_keeps_a_row_under_retention(self, enabled_obs, sink):
        """keyframe_every < metric_retention => an unchanged series is
        re-persisted before its last row ages out."""
        assert sink.metric_keyframe_every < sink.metric_retention
        obs.metrics().gauge("sync.clients").set(1)
        for _ in range(sink.metric_retention * 2):
            sink.collect()
        rows = [
            r
            for r in sink.database.query(f"SELECT * FROM {SYS_METRICS}")
            if r["name"] == "sync.clients"
        ]
        assert rows, "an unchanged series must always have a retained row"


# ---------------------------------------------------------------------------
# Span sampling + retention


class TestSpanSampling:
    def test_sampling_keeps_every_nth_span(self, enabled_obs):
        sink = TelemetrySink(span_sample=0.25)
        try:
            make_spans(40)
            stats = sink.collect()
            assert stats["spans"] == 10
            assert sink.sampled_out == 30
        finally:
            sink.close()

    def test_sampling_counts_across_collections(self, enabled_obs):
        """1-in-4 of 6+6 spans over two collects is 3 total, not 2x ceil."""
        sink = TelemetrySink(span_sample=0.25)
        try:
            make_spans(6)
            first = sink.collect()["spans"]
            make_spans(6)
            second = sink.collect()["spans"]
            assert first + second == 3
        finally:
            sink.close()

    def test_full_sampling_is_the_default(self, enabled_obs, sink):
        make_spans(7)
        assert sink.collect()["spans"] == 7
        assert sink.sampled_out == 0

    def test_span_retention_bounds_the_table(self, enabled_obs):
        sink = TelemetrySink(span_retention=2)
        try:
            for _ in range(5):
                with obs.tracer().span("work") as span:
                    span.add_event("tick")
                sink.collect()
            spans = sink.database.query(
                f"SELECT * FROM {SYS_SPANS} WHERE kind = 'span'"
            )
            events = sink.database.query(f"SELECT * FROM {SYS_SPAN_EVENTS}")
            # Only the newest 2 collections' spans (and their events) remain.
            assert len(spans) == 2
            assert len(events) == 2
            kept = {r["span_id"] for r in spans}
            assert all(e["span_id"] in kept for e in events)
        finally:
            sink.close()

    def test_span_retention_spares_workflow_rows(self, enabled_obs):
        sink = TelemetrySink(span_retention=1)
        try:
            sink.ingest_process_monitor(StubMonitor([make_trace(1)]))
            for _ in range(3):
                make_spans(2)
                sink.collect()
            kinds = [
                r["kind"] for r in sink.database.query(f"SELECT kind FROM {SYS_SPANS}")
            ]
            assert kinds.count("workflow") == 2  # process + one activity
            assert kinds.count("span") == 2  # newest collection only
        finally:
            sink.close()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TelemetrySink(span_sample=0.0)
        with pytest.raises(ValueError):
            TelemetrySink(span_sample=1.5)
        with pytest.raises(ValueError):
            TelemetrySink(span_retention=0)


# ---------------------------------------------------------------------------
# Workflow timeline ingestion


def make_activity(aid, name="write", status="COMPLETED", end=7):
    return SimpleNamespace(
        activity_instance_id=aid,
        activity_name=name,
        status=status,
        user="alice",
        start=5,
        end=end,
    )


def make_trace(pid, status="COMPLETED", end=9, activities=None):
    return SimpleNamespace(
        process_instance_id=pid,
        process_name="p",
        status=status,
        start=1,
        end=end,
        activities=activities if activities is not None else [make_activity(10 + pid)],
    )


class StubMonitor:
    """history() is the whole ProcessMonitor surface the sink touches."""

    def __init__(self, traces):
        self.traces = traces

    def history(self):
        return self.traces


class TestWorkflowIngest:
    def test_rows_share_the_span_schema(self, sink):
        written = sink.ingest_process_monitor(StubMonitor([make_trace(3)]))
        assert written == 2
        rows = sink.database.query(f"SELECT * FROM {SYS_SPANS}")
        process = next(r for r in rows if r["name"] == "workflow.process:p")
        activity = next(r for r in rows if r["name"].startswith("workflow.activity:"))
        assert process["kind"] == activity["kind"] == "workflow"
        assert process["span_id"] < 0 and activity["span_id"] < 0
        assert process["span_id"] != activity["span_id"]
        assert activity["parent_id"] == process["span_id"]
        assert activity["trace_id"] == process["span_id"]
        assert process["duration_ms"] is None  # logical clock, not wall time
        assert process["start_ns"] == 1 and process["end_ns"] == 9

    def test_reingest_is_an_upsert(self, sink):
        running = make_trace(1, status="RUNNING", end=None)
        sink.ingest_process_monitor(StubMonitor([running]))
        finished = make_trace(1, status="COMPLETED", end=42)
        sink.ingest_process_monitor(StubMonitor([finished]))

        rows = [
            r
            for r in sink.database.query(f"SELECT * FROM {SYS_SPANS}")
            if r["name"] == "workflow.process:p"
        ]
        assert len(rows) == 1
        assert rows[0]["end_ns"] == 42
        assert '"status": "COMPLETED"' in rows[0]["tags"]

    def test_empty_history_writes_nothing(self, sink):
        assert sink.ingest_process_monitor(StubMonitor([])) == 0


# ---------------------------------------------------------------------------
# Lifecycle


class TestLifecycle:
    def test_counters_reflect_lifetime_totals(self, enabled_obs, sink):
        make_spans(3)
        make_spans(1, table=SYS_SPANS)
        obs.metrics().counter("db.writes", table="nodes").inc()
        sink.collect_and_flush()
        counters = sink.counters()
        assert counters["collections"] == 1
        assert counters["spans_stored"] == 3
        assert counters["guard_dropped"] == 1
        assert counters["metrics_stored"] >= 1
        assert counters["sampled_out"] == 0

    def test_background_thread_collects(self, enabled_obs, sink):
        make_spans(5)
        sink.start(interval=0.02)
        assert sink.running
        sink.start(interval=0.02)  # idempotent
        deadline = time.time() + 2.0
        while sink.spans_stored < 5 and time.time() < deadline:
            time.sleep(0.01)
        sink.stop()
        assert not sink.running
        assert sink.spans_stored == 5
        assert sink.collections >= 1
        assert sink.flush_cycles >= 1

    def test_flush_ships_net_ops(self, enabled_obs, sink):
        make_spans(4)
        stats = sink.collect_and_flush()
        assert stats["net_ops"] >= stats["spans"]
        assert sink.flush_cycles == 1
