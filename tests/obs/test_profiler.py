"""The continuous sampling profiler: lifecycle, attribution, self-hosting.

Covers the ISSUE-10 contracts: start/stop idempotency, the sampler never
profiling itself (or any suppressed thread), span attribution with
``self_time_ms`` tags, >=90% wall-time attribution on a busy run,
flamegraph export, concurrent sink drains under an active sampler, and
retention pruning of ``sys_profiles`` / ``sys_stacks``.
"""

import threading
import time

import pytest

import repro.obs as obs
from repro.obs import SamplingProfiler, collapse_frames
from repro.obs.profiler import OVERFLOW_STACK, iter_collapsed
from repro.obs.store import SYS_PROFILES, SYS_STACKS, TelemetrySink


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def busy_wait(seconds):
    """Burn CPU (not sleep): sleeping threads still show in samples, but
    the attribution math is clearest on genuinely running code."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(200))


class TestCollapseFrames:
    def test_current_frame_collapses_to_this_test(self):
        import sys

        frame = sys._current_frames()[threading.get_ident()]
        stack = collapse_frames(frame)
        assert "test_profiler:" in stack
        leaf = stack.rsplit(";", 1)[-1]
        assert "test_current_frame_collapses_to_this_test" in leaf

    def test_max_depth_keeps_leaf_frames(self):
        def recurse(n):
            if n == 0:
                import sys

                return sys._current_frames()[threading.get_ident()]
            return recurse(n - 1)

        stack = collapse_frames(recurse(30), max_depth=5)
        frames = stack.split(";")
        assert frames[0] == "<deep>"
        assert len(frames) == 6  # marker + 5 kept leaf-most frames

    def test_iter_collapsed_round_trips(self):
        text = "a;b;c 3\nx;y 10\n"
        assert list(iter_collapsed(text)) == [(["a", "b", "c"], 3), (["x", "y"], 10)]


class TestLifecycle:
    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(hz=500)
        assert not profiler.running
        profiler.start()
        profiler.start()  # second start is a no-op
        assert profiler.running
        # Exactly one sampler thread exists.
        samplers = [
            t for t in threading.enumerate() if t.name == "profiler-sampler"
        ]
        assert len(samplers) == 1
        profiler.stop()
        profiler.stop()  # second stop is a no-op
        assert not profiler.running

    def test_restart_after_stop(self):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        profiler.stop()
        profiler.start()
        assert profiler.running
        profiler.stop()

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_stop_keeps_aggregates(self):
        profiler = SamplingProfiler(hz=500).start()
        busy_wait(0.05)
        profiler.stop()
        assert profiler.samples_total > 0
        assert profiler.totals()

    def test_runtime_enable_disable(self):
        obs.enable()
        profiler = obs.OBS.enable_profiler(hz=500)
        assert profiler.running
        assert obs.OBS.enable_profiler() is profiler  # idempotent
        obs.OBS.disable_profiler()
        assert not profiler.running
        # Aggregates survive for post-mortem reads.
        assert obs.OBS.profiler is profiler

    def test_flamegraph_empty_without_profiler(self):
        assert obs.OBS.flamegraph() == ""


class TestSamplerNeverProfilesItself:
    def test_own_thread_absent_from_aggregates(self):
        profiler = SamplingProfiler(hz=1000).start()
        busy_wait(0.1)
        profiler.stop()
        threads = {entry["thread"] for entry in profiler.totals()}
        assert threads, "busy run produced no samples"
        assert "profiler-sampler" not in threads

    def test_suppressed_threads_not_sampled(self):
        obs.enable()
        tracer = obs.tracer()
        profiler = SamplingProfiler(tracer=tracer, hz=1000).start()

        def suppressed_work():
            with tracer.suppress():
                busy_wait(0.1)

        worker = threading.Thread(target=suppressed_work, name="suppressed-w")
        worker.start()
        worker.join()
        profiler.stop()
        threads = {entry["thread"] for entry in profiler.totals()}
        assert "suppressed-w" not in threads

    def test_excluded_thread_not_sampled(self):
        profiler = SamplingProfiler(hz=1000)

        ready = threading.Event()
        done = threading.Event()

        def excluded_work():
            ready.set()
            busy_wait(0.1)
            done.set()

        worker = threading.Thread(target=excluded_work, name="excluded-w")
        worker.start()
        ready.wait()
        profiler.exclude_thread(worker.ident)
        profiler.start()
        done.wait()
        worker.join()
        profiler.stop()
        threads = {entry["thread"] for entry in profiler.totals()}
        assert "excluded-w" not in threads


class TestSpanAttribution:
    def test_samples_attributed_to_open_span(self):
        obs.enable()
        profiler = obs.OBS.enable_profiler(hz=1000)
        with obs.tracer().span("hot.work") as span:
            busy_wait(0.1)
        obs.OBS.disable_profiler()
        names = {entry["span_name"] for entry in profiler.totals()}
        assert "hot.work" in names
        # The finish hook stamped profile evidence onto the span.
        assert span.tags["profile_samples"] > 0
        assert span.tags["self_time_ms"] > 0
        # And the per-span table agrees.
        profile = profiler.span_profile(span.span_id)
        assert profile is not None
        assert profile["samples"] == span.tags["profile_samples"]
        assert profile["stacks"]

    def test_hottest_spans_ranked(self):
        obs.enable()
        profiler = obs.OBS.enable_profiler(hz=1000)
        with obs.tracer().span("hot.long"):
            busy_wait(0.12)
        with obs.tracer().span("hot.short"):
            busy_wait(0.02)
        obs.OBS.disable_profiler()
        ranked = profiler.hottest_spans()
        names = [r["span_name"] for r in ranked]
        assert names.index("hot.long") < names.index("hot.short")

    def test_busy_run_attributes_ninety_percent_of_wall_time(self):
        """The acceptance bar: a busy single-thread run's flamegraph
        accounts for >=90% of its wall time (honest inter-sample
        accounting makes this hold regardless of sampler lateness)."""
        profiler = SamplingProfiler(hz=200).start()
        start = time.perf_counter_ns()
        busy_wait(0.5)
        wall_ms = (time.perf_counter_ns() - start) / 1e6
        profiler.stop()
        me = threading.current_thread().name
        attributed_ms = profiler.thread_totals().get(me, 0.0)
        assert attributed_ms >= 0.9 * wall_ms

    def test_flamegraph_non_empty_and_parseable(self):
        profiler = SamplingProfiler(hz=500).start()
        busy_wait(0.1)
        profiler.stop()
        text = profiler.flamegraph()
        parsed = list(iter_collapsed(text))
        assert parsed
        assert all(count >= 1 for _frames, count in parsed)
        total = sum(count for _f, count in parsed)
        assert total == profiler.samples_total
        ms_text = profiler.flamegraph(weights="ms")
        assert list(iter_collapsed(ms_text))
        with pytest.raises(ValueError):
            profiler.flamegraph(weights="bogus")


class TestBounds:
    def test_overflow_stack_bounds_aggregates(self):
        profiler = SamplingProfiler(hz=100, max_stacks=2)
        # Synthesize distinct keys straight through the private aggregate
        # to pin the bound without needing thousands of real stacks.
        with profiler._lock:
            for i in range(10):
                key = ("t", None, f"stack-{i}")
                if len(profiler._stacks) >= profiler.max_stacks:
                    key = ("t", None, OVERFLOW_STACK)
                cell = profiler._stacks.setdefault(key, [0, 0])
                cell[0] += 1
                cell[1] += 1000
        assert len(profiler._stacks) <= profiler.max_stacks + 1

    def test_span_table_lru_bounded(self):
        profiler = SamplingProfiler(hz=100, span_table_size=4)
        with profiler._lock:
            for span_id in range(20):
                profiler._credit_span(span_id, "a;b", 1000)
        assert len(profiler._span_tables) <= 4
        assert profiler.span_profile(0) is None
        assert profiler.span_profile(19) is not None


class TestDrainAndTotals:
    def test_drain_resets_deltas_but_totals_survive(self):
        profiler = SamplingProfiler(hz=500).start()
        busy_wait(0.06)
        profiler.stop()
        first = profiler.drain()
        assert first
        assert profiler.drain() == []  # deltas consumed
        # Lifetime reads still see everything.
        assert profiler.totals()
        assert profiler.flamegraph()

    def test_concurrent_drains_lose_nothing(self):
        """Sink-style drains racing the live sampler: every sample lands
        in exactly one drain (or the final totals), never split or lost."""
        profiler = SamplingProfiler(hz=1000).start()
        drained = []
        stop = threading.Event()

        def drainer():
            while not stop.is_set():
                drained.extend(profiler.drain())
                time.sleep(0.005)

        worker = threading.Thread(target=drainer, name="drainer")
        worker.start()
        busy_wait(0.2)
        stop.set()
        worker.join()
        profiler.stop()
        remaining = profiler.drain()
        total_samples = sum(e["samples"] for e in drained + remaining)
        assert total_samples == profiler.samples_total
        # And the totals aggregate agrees with the union of the drains.
        assert sum(e["samples"] for e in profiler.totals()) == total_samples

    def test_reset_clears_everything(self):
        profiler = SamplingProfiler(hz=500).start()
        busy_wait(0.05)
        profiler.stop()
        profiler.reset()
        assert profiler.samples_total == 0
        assert profiler.totals() == []
        assert profiler.flamegraph() == ""


class TestSinkSelfHosting:
    def _run_collections(self, sink, n, work_ms=0.03):
        for _ in range(n):
            busy_wait(work_ms)
            sink.collect_and_flush()

    def test_profile_rows_land_in_system_tables(self):
        obs.enable()
        obs.OBS.enable_profiler(hz=1000)
        sink = TelemetrySink()
        try:
            self._run_collections(sink, 2)
            profiles = sink.database.query(f"SELECT * FROM {SYS_PROFILES}")
            stacks = sink.database.query(f"SELECT * FROM {SYS_STACKS}")
            assert profiles and stacks
            assert {r["kind"] for r in profiles} >= {"delta"}
            # snap 1 is a keyframe collection: lifetime totals stored too.
            assert any(r["kind"] == "total" for r in profiles)
            assert sink.profiles_stored == len(profiles)
            assert sink.stacks_stored == len(stacks)
            # The sampler's own threads never appear (recursion guard).
            threads = {r["thread"] for r in stacks}
            assert "profiler-sampler" not in threads
            assert "telemetry-sink" not in threads
        finally:
            sink.close()

    def test_retention_prunes_old_generations(self):
        obs.enable()
        obs.OBS.enable_profiler(hz=1000)
        sink = TelemetrySink()
        sink.profile_retention = 2
        try:
            self._run_collections(sink, 5)
            for table in (SYS_PROFILES, SYS_STACKS):
                snaps = {
                    r["snap"] for r in sink.database.query(f"SELECT * FROM {table}")
                }
                assert snaps, f"{table} is empty"
                assert min(snaps) > sink._snap - 2 - 1
        finally:
            sink.close()

    def test_no_profiler_costs_nothing(self):
        obs.enable()
        sink = TelemetrySink()
        try:
            sink.collect_and_flush()
            assert sink.profiles_stored == 0
            assert sink.stacks_stored == 0
        finally:
            sink.close()
