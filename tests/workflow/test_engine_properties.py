"""Property-based enactment tests: random process structures.

Invariants checked over randomly generated process trees:
* every created activity instance ends ``completed``;
* the process instance itself ends ``completed``;
* exactly the activities on the taken control-flow path execute;
* deterministic structures produce deterministic effect counts.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import datamodel
from repro.db import Column, Database
from repro.db.types import TEXT
from repro.workflow import (
    ActivityNode,
    AndSplitJoin,
    ConditionalNode,
    OrBranch,
    OrSplitJoin,
    ProcessDefinition,
    SequenceNode,
    UpdateTable,
    WorkflowEngine,
)

_counter = itertools.count()


def marker_activity():
    """An activity that logs its execution into the marks table."""
    name = f"a{next(_counter)}"
    return ActivityNode(
        UpdateTable(name, f"INSERT INTO marks (who) VALUES ('{name}')")
    )


# Recursive strategy over process structures.
def node_strategy():
    leaf = st.builds(marker_activity)

    def extend(children):
        return st.one_of(
            st.builds(lambda steps: SequenceNode(list(steps)),
                      st.lists(children, min_size=1, max_size=3)),
            st.builds(lambda branches: AndSplitJoin(list(branches)),
                      st.lists(children, min_size=1, max_size=3)),
            st.builds(
                lambda body, flag: ConditionalNode(
                    "SELECT 1" if flag else "SELECT 0", body
                ),
                children,
                st.booleans(),
            ),
            st.builds(
                lambda first, second, which: OrSplitJoin(
                    [
                        OrBranch("SELECT 1" if which == 0 else "SELECT 0", first),
                        OrBranch("SELECT 1" if which == 1 else "SELECT 0", second),
                    ]
                ),
                children,
                children,
                st.integers(0, 2),  # 2 = no branch eligible
            ),
        )

    return st.recursive(leaf, extend, max_leaves=8)


def expected_marks(node):
    """Which marker activities should run, given the guards we generated."""
    if isinstance(node, ActivityNode):
        return [node.activity.name]
    if isinstance(node, SequenceNode):
        out = []
        for step in node.steps:
            out.extend(expected_marks(step))
        return out
    if isinstance(node, AndSplitJoin):
        out = []
        for branch in node.branches:
            out.extend(expected_marks(branch))
        return out
    if isinstance(node, ConditionalNode):
        if node.condition == "SELECT 1":
            return expected_marks(node.body)
        return []
    if isinstance(node, OrSplitJoin):
        for branch in node.branches:
            if branch.condition == "SELECT 1":
                return expected_marks(branch.body)
        return []
    raise AssertionError(f"unexpected node {node!r}")


@given(node_strategy())
@settings(max_examples=50, deadline=None)
def test_execution_follows_control_flow(node):
    db = Database()
    db.create_table("marks", [Column("who", TEXT)])
    engine = WorkflowEngine(db)
    definition = ProcessDefinition("p", SequenceNode([node]))
    engine.deploy(definition)
    engine.run("p")
    executed = sorted(r["who"] for r in db.table("marks").rows())
    assert executed == sorted(expected_marks(node))


@given(node_strategy())
@settings(max_examples=40, deadline=None)
def test_all_instances_complete(node):
    db = Database()
    db.create_table("marks", [Column("who", TEXT)])
    engine = WorkflowEngine(db)
    definition = ProcessDefinition("p", SequenceNode([node]))
    engine.deploy(definition)
    engine.run("p")
    process_rows = list(db.table(datamodel.T_PROCESS_INSTANCE).rows())
    assert all(r["status"] == datamodel.COMPLETED for r in process_rows)
    activity_rows = list(db.table(datamodel.T_ACTIVITY_INSTANCE).rows())
    assert all(r["status"] == datamodel.COMPLETED for r in activity_rows)
    # One instance per executed activity.
    assert len(activity_rows) == len(list(db.table("marks").rows()))


@given(node_strategy(), st.integers(2, 4))
@settings(max_examples=20, deadline=None)
def test_repeated_runs_are_deterministic(node, runs):
    db = Database()
    db.create_table("marks", [Column("who", TEXT)])
    engine = WorkflowEngine(db)
    definition = ProcessDefinition("p", SequenceNode([node]))
    engine.deploy(definition)
    counts = []
    for _ in range(runs):
        before = len(db.table("marks"))
        engine.run("p")
        counts.append(len(db.table("marks")) - before)
    assert len(set(counts)) == 1  # same path every time
