"""Enactment: instance lifecycle, every activity type, control flow."""

import pytest

from repro.core import datamodel
from repro.errors import EnactmentError, SpecificationError, WorkflowError
from repro.workflow import (
    AskUser,
    Assign,
    CallProcedure,
    ProcessDefinition,
    Procedure,
    QueryExpr,
    RelationDecl,
    RunQuery,
    UpdateTable,
    Variable,
    alt,
    par,
    seq,
    when,
)


@pytest.fixture
def votes(db):
    db.execute("CREATE TABLE votes (id INTEGER PRIMARY KEY, state TEXT, n INTEGER)")
    db.execute(
        "INSERT INTO votes (id, state, n) VALUES (1, 'CA', 10), (2, 'TX', 5)"
    )
    return db


class Echo(Procedure):
    """Returns its first input unchanged (one output table)."""

    name = "echo"

    def run(self, env, inputs, read_write):
        return [list(inputs[0])]


class TestLifecycle:
    def test_instances_recorded_in_core_tables(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(RunQuery("read", "SELECT * FROM votes", into_variable="rows")),
        )
        engine.deploy(definition)
        execution = engine.run("p")
        process_rows = votes.query(
            "SELECT status, start, end FROM ediflow_process_instance"
        )
        assert process_rows[0]["status"] == datamodel.COMPLETED
        assert process_rows[0]["start"] < process_rows[0]["end"]
        activity_rows = votes.query("SELECT status FROM ediflow_activity_instance")
        assert [r["status"] for r in activity_rows] == [datamodel.COMPLETED]
        assert len(execution.variables["rows"]) == 2

    def test_deploy_writes_definition_rows(self, votes, engine):
        definition = ProcessDefinition(
            "p", seq(UpdateTable("u", "DELETE FROM votes"))
        )
        engine.deploy(definition)
        assert votes.query("SELECT name FROM ediflow_process")[0]["name"] == "p"
        assert votes.query("SELECT name FROM ediflow_activity")[0]["name"] == "u"

    def test_duplicate_deploy_rejected(self, votes, engine):
        definition = ProcessDefinition("p", seq(UpdateTable("u", "DELETE FROM votes")))
        engine.deploy(definition)
        with pytest.raises(SpecificationError):
            engine.deploy(definition)

    def test_deploy_requires_registered_procedures(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("c", "missing_proc")),
            procedures=["missing_proc"],
        )
        with pytest.raises(SpecificationError, match="missing_proc"):
            engine.deploy(definition)

    def test_run_unknown_process(self, engine):
        with pytest.raises(WorkflowError):
            engine.run("ghost")

    def test_failed_activity_leaves_completed_trace(self, votes, engine):
        definition = ProcessDefinition(
            "p", seq(UpdateTable("boom", "DELETE FROM missing_table"))
        )
        engine.deploy(definition)
        with pytest.raises(Exception):
            engine.run("p")
        # The process instance is closed, not left dangling.
        statuses = votes.query("SELECT status FROM ediflow_process_instance")
        assert statuses[0]["status"] == datamodel.COMPLETED


class TestActivityTypes:
    def test_assign_literal_and_expression(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(
                Assign("set_k", "k", 7),
                Assign("set_rows", "rows", QueryExpr("SELECT * FROM votes WHERE n > $k")),
            ),
            variables=[Variable("k", "INTEGER"), Variable("rows")],
        )
        engine.deploy(definition)
        execution = engine.run("p")
        assert execution.variables["k"] == 7
        assert [r["state"] for r in execution.variables["rows"]] == ["CA"]

    def test_update_with_variable_params(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(UpdateTable("bump", "UPDATE votes SET n = n + ? WHERE state = ?",
                            params=["$delta", "CA"])),
            variables=[Variable("delta", "INTEGER", initial=5)],
        )
        engine.deploy(definition)
        engine.run("p")
        assert votes.query("SELECT n FROM votes WHERE state = 'CA'")[0]["n"] == 15

    def test_run_query_into_table(self, votes, engine):
        votes.execute("CREATE TABLE top (id INTEGER, state TEXT, n INTEGER)")
        definition = ProcessDefinition(
            "p",
            seq(RunQuery("copy", "SELECT id, state, n FROM votes WHERE n >= 10",
                         into_table="top")),
        )
        engine.deploy(definition)
        engine.run("p")
        assert votes.query("SELECT state FROM top") == [{"state": "CA"}]

    def test_run_query_without_destination_rejected(self, votes, engine):
        definition = ProcessDefinition(
            "p", seq(RunQuery("bad", "SELECT * FROM votes"))
        )
        engine.deploy(definition)
        with pytest.raises(SpecificationError, match="destination"):
            engine.run("p")

    def test_ask_user_via_responder(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(AskUser("ask", "Which state?", "state")),
            variables=[Variable("state")],
        )
        engine.deploy(definition)
        execution = engine.run("p", responder=lambda prompt, var: "CA")
        assert execution.variables["state"] == "CA"

    def test_ask_user_without_responder_fails(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(AskUser("ask", "Which state?", "state")),
            variables=[Variable("state")],
        )
        engine.deploy(definition)
        with pytest.raises(EnactmentError, match="responder"):
            engine.run("p")

    def test_call_procedure_outputs_written_with_provenance(self, votes, engine):
        votes.execute("CREATE TABLE copy (id INTEGER, state TEXT, n INTEGER)")
        engine.procedures.register(Echo())
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("c", "echo", inputs=["votes"], outputs=["copy"])),
            procedures=["echo"],
        )
        engine.deploy(definition)
        engine.run("p")
        assert len(votes.query("SELECT * FROM copy")) == 2
        prov = votes.query("SELECT * FROM ediflow_provenance")
        assert len(prov) == 2
        assert all(p["entity_table"] == "copy" for p in prov)

    def test_call_procedure_too_few_outputs(self, votes, engine):
        class NoOutput(Procedure):
            name = "noout"

            def run(self, env, inputs, read_write):
                return []

        engine.procedures.register(NoOutput())
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("c", "noout", outputs=["t1"])),
            procedures=["noout"],
        )
        engine.deploy(definition)
        with pytest.raises(WorkflowError, match="output"):
            engine.run("p")


class TestControlFlow:
    def test_sequence_order(self, votes, engine):
        order = []

        class Tracker(Procedure):
            def __init__(self, name):
                self.name = name

            def run(self, env, inputs, read_write):
                order.append(self.name)
                return []

        for n in ("t1", "t2", "t3"):
            engine.procedures.register(Tracker(n))
        definition = ProcessDefinition(
            "p",
            seq(
                CallProcedure("a", "t1"),
                CallProcedure("b", "t2"),
                CallProcedure("c", "t3"),
            ),
            procedures=["t1", "t2", "t3"],
        )
        engine.deploy(definition)
        engine.run("p")
        assert order == ["t1", "t2", "t3"]

    def test_and_split_runs_all_branches(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(
                par(
                    UpdateTable("left", "UPDATE votes SET n = n + 1 WHERE state = 'CA'"),
                    UpdateTable("right", "UPDATE votes SET n = n + 1 WHERE state = 'TX'"),
                )
            ),
        )
        engine.deploy(definition)
        engine.run("p")
        rows = {r["state"]: r["n"] for r in votes.query("SELECT * FROM votes")}
        assert rows == {"CA": 11, "TX": 6}

    def test_and_split_parallel_threads(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(
                par(
                    UpdateTable("left", "UPDATE votes SET n = n + 1 WHERE state = 'CA'"),
                    UpdateTable("right", "UPDATE votes SET n = n + 1 WHERE state = 'TX'"),
                    parallel=True,
                )
            ),
        )
        engine.deploy(definition)
        engine.run("p")
        rows = {r["state"]: r["n"] for r in votes.query("SELECT * FROM votes")}
        assert rows == {"CA": 11, "TX": 6}

    def test_or_split_takes_first_eligible_branch(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(
                alt(
                    ("SELECT COUNT(*) FROM votes WHERE n > 100",
                     UpdateTable("never", "DELETE FROM votes")),
                    ("SELECT COUNT(*) FROM votes WHERE n > 1",
                     UpdateTable("bump", "UPDATE votes SET n = 0 WHERE state = 'CA'")),
                    (None, UpdateTable("fallback", "DELETE FROM votes")),
                )
            ),
        )
        engine.deploy(definition)
        engine.run("p")
        # Only 'bump' ran: rows survive, CA zeroed.
        rows = {r["state"]: r["n"] for r in votes.query("SELECT * FROM votes")}
        assert rows == {"CA": 0, "TX": 5}

    def test_or_split_no_branch_eligible(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(
                alt(
                    ("SELECT COUNT(*) FROM votes WHERE n > 100",
                     UpdateTable("never", "DELETE FROM votes")),
                )
            ),
        )
        engine.deploy(definition)
        engine.run("p")  # no error; nothing ran
        assert len(votes.query("SELECT * FROM votes")) == 2

    def test_conditional_true_and_false(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(
                when("SELECT COUNT(*) FROM votes",
                     UpdateTable("yes", "UPDATE votes SET n = n + 1 WHERE state = 'CA'")),
                when("SELECT COUNT(*) FROM votes WHERE n > 99",
                     UpdateTable("no", "DELETE FROM votes")),
            ),
        )
        engine.deploy(definition)
        engine.run("p")
        rows = {r["state"]: r["n"] for r in votes.query("SELECT * FROM votes")}
        assert rows == {"CA": 11, "TX": 5}

    def test_python_callable_condition(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(
                when(lambda env: env.lookup("go"),
                     UpdateTable("maybe", "DELETE FROM votes")),
            ),
            variables=[Variable("go", "BOOLEAN", initial=False)],
        )
        engine.deploy(definition)
        engine.run("p")
        assert len(votes.query("SELECT * FROM votes")) == 2


class TestDetachedActivities:
    def test_detached_keeps_running_until_closed(self, votes, engine):
        engine.procedures.register(Echo())
        votes.execute("CREATE TABLE sink (id INTEGER, state TEXT, n INTEGER)")
        definition = ProcessDefinition(
            "p",
            seq(
                CallProcedure(
                    "vis", "echo", inputs=["votes"], outputs=["sink"], detached=True
                )
            ),
            procedures=["echo"],
        )
        engine.deploy(definition)
        execution = engine.run("p")
        assert execution.instance.is_running()
        statuses = votes.query("SELECT status FROM ediflow_activity_instance")
        assert statuses[0]["status"] == datamodel.RUNNING
        engine.close(execution)
        assert execution.instance.is_completed()
        statuses = votes.query("SELECT status FROM ediflow_activity_instance")
        assert statuses[0]["status"] == datamodel.COMPLETED

    def test_finish_activity_explicitly(self, votes, engine):
        engine.procedures.register(Echo())
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("vis", "echo", inputs=["votes"], detached=True)),
            procedures=["echo"],
        )
        engine.deploy(definition)
        execution = engine.run("p")
        live_id = execution.detached_running[0].instance.id
        engine.finish_activity(live_id)
        assert not execution.detached_running
        with pytest.raises(EnactmentError):
            engine.finish_activity(live_id)


class TestTemporaryRelations:
    def test_created_and_dropped(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(
                UpdateTable("fill", "INSERT INTO scratch (v) VALUES (1)"),
                RunQuery("read", "SELECT * FROM scratch", into_variable="out"),
            ),
            relations=[
                RelationDecl("scratch", columns=(("v", "INTEGER"),), temporary=True)
            ],
        )
        engine.deploy(definition)
        execution = engine.run("p")
        assert execution.variables["out"] == [{"v": 1}]
        assert not votes.has_table("scratch")

    def test_temp_collision_detected(self, votes, engine):
        votes.execute("CREATE TABLE scratch (v INTEGER)")
        definition = ProcessDefinition(
            "p",
            seq(RunQuery("read", "SELECT * FROM scratch", into_variable="out")),
            relations=[
                RelationDecl("scratch", columns=(("v", "INTEGER"),), temporary=True)
            ],
        )
        engine.deploy(definition)
        with pytest.raises(EnactmentError, match="already exists"):
            engine.run("p")

    def test_temp_data_copied_to_persistent_table(self, votes, engine):
        """Section IV-B: "if temporary relation data are to persist, they
        can be explicitly copied into persistent DBMS tables"."""
        votes.execute("CREATE TABLE keeper (v INTEGER)")
        definition = ProcessDefinition(
            "p",
            seq(
                UpdateTable("fill", "INSERT INTO scratch (v) VALUES (1), (2)"),
                UpdateTable("copy", "INSERT INTO keeper SELECT v FROM scratch"),
            ),
            relations=[
                RelationDecl("scratch", columns=(("v", "INTEGER"),), temporary=True)
            ],
        )
        engine.deploy(definition)
        engine.run("p")
        assert not votes.has_table("scratch")  # temp gone
        assert len(votes.query("SELECT * FROM keeper")) == 2  # data persisted

    def test_persistent_relation_created_from_declaration(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(UpdateTable("fill", "INSERT INTO fresh (v) VALUES (1)")),
            relations=[RelationDecl("fresh", columns=(("v", "INTEGER"),))],
        )
        engine.deploy(definition)
        engine.run("p")
        assert votes.has_table("fresh")  # persists after the run
        assert len(votes.query("SELECT * FROM fresh")) == 1


class TestDetachedInsideParallel:
    def test_detached_in_and_split(self, votes, engine):
        engine.procedures.register(Echo())
        definition = ProcessDefinition(
            "p",
            seq(
                par(
                    CallProcedure("vis1", "echo", inputs=["votes"], detached=True),
                    CallProcedure("vis2", "echo", inputs=["votes"], detached=True),
                )
            ),
            procedures=["echo"],
        )
        engine.deploy(definition)
        execution = engine.run("p")
        assert len(execution.detached_running) == 2
        assert execution.instance.is_running()
        engine.close(execution)
        assert execution.detached_running == []
        statuses = votes.query("SELECT status FROM ediflow_activity_instance")
        assert all(s["status"] == "completed" for s in statuses)


class TestRoles:
    def test_group_enforced(self, votes, engine):
        engine.roles.ensure_group("analysts")
        definition = ProcessDefinition(
            "p",
            seq(UpdateTable("a", "DELETE FROM votes", group="analysts")),
        )
        engine.deploy(definition)
        with pytest.raises(WorkflowError, match="not a member"):
            engine.run("p", user="mallory")
        # Put alice in the group: works.
        alice = engine.roles.ensure_user("alice")
        engine.roles.add_to_group(alice, engine.roles.group_id("analysts"))
        engine.run("p", user="alice")

    def test_group_without_user_rejected(self, votes, engine):
        definition = ProcessDefinition(
            "p",
            seq(UpdateTable("a", "DELETE FROM votes", group="analysts")),
        )
        engine.deploy(definition)
        with pytest.raises(WorkflowError, match="no user"):
            engine.run("p")
