"""Isolation: snapshots, deletion tables, query rewriting, GC (Section VI-A)."""

import pytest

from repro.core import datamodel
from repro.db import TID, col
from repro.errors import IsolationError
from repro.workflow import (
    ProcessDefinition,
    RelationDecl,
    RunQuery,
    UpdateTable,
    seq,
)
from repro.workflow.isolation import IsolationContext


@pytest.fixture
def items(db):
    db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO items (id, v) VALUES (1, 1), (2, 2), (3, 3)")
    return db


def deploy_reader(engine, name="reader"):
    definition = ProcessDefinition(
        name,
        seq(RunQuery("read", "SELECT * FROM items ORDER BY id", into_variable="rows")),
        relations=[RelationDecl("items")],
    )
    engine.deploy(definition)
    return definition


class TestTimeBasedIsolation:
    def test_snapshot_excludes_later_external_inserts(self, items, engine):
        deploy_reader(engine)
        execution = engine.start("reader")
        # External insert lands after the process started.
        items.execute("INSERT INTO items (id, v) VALUES (4, 4)")
        engine.execute_node(execution.definition.body, execution)
        engine.close(execution)
        assert [r["id"] for r in execution.variables["rows"]] == [1, 2, 3]

    def test_own_writes_visible(self, items, engine):
        definition = ProcessDefinition(
            "writer",
            seq(
                UpdateTable("add", "INSERT INTO items (id, v) VALUES (10, 10)"),
                RunQuery("read", "SELECT * FROM items ORDER BY id", into_variable="rows"),
            ),
            relations=[RelationDecl("items")],
        )
        engine.deploy(definition)
        execution = engine.run("writer")
        assert [r["id"] for r in execution.variables["rows"]] == [1, 2, 3, 10]

    def test_fresh_snapshot_activity_sees_new_data(self, items, engine):
        definition = ProcessDefinition(
            "fresh",
            seq(
                RunQuery("stale", "SELECT COUNT(*) AS n FROM items", into_variable="before"),
                RunQuery(
                    "fresh_read",
                    "SELECT COUNT(*) AS n FROM items",
                    into_variable="after",
                    fresh_snapshot=True,
                ),
            ),
            relations=[RelationDecl("items")],
        )
        engine.deploy(definition)
        execution = engine.start("fresh")
        items.execute("INSERT INTO items (id, v) VALUES (4, 4)")
        engine.execute_node(execution.definition.body, execution)
        engine.close(execution)
        assert execution.variables["before"][0]["n"] == 3
        assert execution.variables["after"][0]["n"] == 4

    def test_later_process_sees_everything(self, items, engine):
        deploy_reader(engine)
        first = engine.run("reader")
        items.execute("INSERT INTO items (id, v) VALUES (4, 4)")
        second = engine.run("reader")
        assert len(first.variables["rows"]) == 3
        assert len(second.variables["rows"]) == 4


class TestDeletionTables:
    def test_logical_delete_hides_from_deleter_only(self, items, engine):
        engine.isolation.manage("items")
        ctx_deleter = IsolationContext(100, engine.database.now(), None)
        ctx_other = IsolationContext(200, engine.database.now(), None)
        engine.isolation.process_started(100, ctx_deleter.start_time)
        engine.isolation.process_started(200, ctx_other.start_time)
        count = engine.isolation.logical_delete("items", col("id") == 2, ctx_deleter)
        assert count == 1
        # Physical row still present.
        assert len(items.query("SELECT * FROM items")) == 3
        # Deleter no longer sees it; the concurrent process still does.
        assert [r["id"] for r in engine.isolation.visible_rows("items", ctx_deleter)] == [1, 3]
        assert [r["id"] for r in engine.isolation.visible_rows("items", ctx_other)] == [1, 2, 3]

    def test_deletion_table_row_shape(self, items, engine):
        engine.isolation.manage("items")
        ctx = IsolationContext(100, engine.database.now(), None)
        engine.isolation.process_started(100, ctx.start_time)
        engine.isolation.logical_delete("items", col("id") == 1, ctx)
        deletion = items.query(f"SELECT * FROM {datamodel.deletion_table_name('items')}")
        assert deletion[0]["pid"] == 100
        assert deletion[0]["process_end"] is None
        assert deletion[0]["t_del"] > 0

    def test_process_started_after_deleter_end_does_not_see_deleted(self, items, engine):
        definition = ProcessDefinition(
            "deleter",
            seq(UpdateTable("del", "DELETE FROM items WHERE id = 2")),
            relations=[RelationDecl("items")],
        )
        engine.deploy(definition)
        deploy_reader(engine)
        # Reader A starts before the deleter finishes -> still sees id 2.
        reader_a = engine.start("reader")
        engine.run("deleter")
        engine.execute_node(reader_a.definition.body, reader_a)
        engine.close(reader_a)
        assert [r["id"] for r in reader_a.variables["rows"]] == [1, 2, 3]
        # Reader B starts after the deleter ended -> does not see id 2.
        reader_b = engine.run("reader")
        assert [r["id"] for r in reader_b.variables["rows"]] == [1, 3]

    def test_double_delete_is_idempotent(self, items, engine):
        engine.isolation.manage("items")
        ctx = IsolationContext(100, engine.database.now(), None)
        engine.isolation.process_started(100, ctx.start_time)
        assert engine.isolation.logical_delete("items", col("id") == 2, ctx) == 1
        assert engine.isolation.logical_delete("items", col("id") == 2, ctx) == 0

    def test_unmanaged_table_rejected(self, items, engine):
        ctx = IsolationContext(1, 0, None)
        with pytest.raises(IsolationError):
            engine.isolation.logical_delete("items", None, ctx)


class TestQueryRewriting:
    def test_rewrite_for_deleting_process(self, items, engine):
        engine.isolation.manage("items")
        ctx = IsolationContext(42, engine.database.now(), None)
        engine.isolation.process_started(42, ctx.start_time)
        engine.isolation.logical_delete("items", col("id") == 1, ctx)
        sql = engine.isolation.rewrite_select_star("items", ctx)
        assert "pid = 42" in sql
        assert "NOT IN" in sql

    def test_rewrite_for_later_process(self, items, engine):
        engine.isolation.manage("items")
        ctx = IsolationContext(43, engine.database.now(), None)
        sql = engine.isolation.rewrite_select_star("items", ctx)
        assert f"process_end < {ctx.start_time}" in sql

    def test_rewritten_sql_is_executable(self, items, engine):
        engine.isolation.manage("items")
        ctx = IsolationContext(42, engine.database.now(), None)
        engine.isolation.process_started(42, ctx.start_time)
        engine.isolation.logical_delete("items", col("id") == 1, ctx)
        sql = engine.isolation.rewrite_select_star("items", ctx)
        rows = items.query(sql)
        assert sorted(r["id"] for r in rows) == [2, 3]


class TestGarbageCollection:
    def test_physical_delete_after_all_witnesses_gone(self, items, engine):
        definition = ProcessDefinition(
            "deleter",
            seq(UpdateTable("del", "DELETE FROM items WHERE id = 2")),
            relations=[RelationDecl("items")],
        )
        engine.deploy(definition)
        deploy_reader(engine)
        witness = engine.start("reader")  # started before deleter ends
        engine.run("deleter")
        # Witness still running: the tuple must not be physically removed.
        assert len(items.table("items")) == 3
        engine.execute_node(witness.definition.body, witness)
        engine.close(witness)
        # Last witness finished: now it may be collected.
        engine.isolation.collect_garbage("items")
        assert len(items.table("items")) == 2
        deletion_table = datamodel.deletion_table_name("items")
        assert len(items.table(deletion_table)) == 0

    def test_gc_noop_for_pending_deletes(self, items, engine):
        engine.isolation.manage("items")
        ctx = IsolationContext(100, engine.database.now(), None)
        engine.isolation.process_started(100, ctx.start_time)
        engine.isolation.logical_delete("items", col("id") == 2, ctx)
        # Deleting process still running: nothing collectible.
        assert engine.isolation.collect_garbage("items") == 0
        assert len(items.table("items")) == 3

    def test_gc_on_unmanaged_table(self, items, engine):
        assert engine.isolation.collect_garbage("items") == 0


class TestProcessBasedIsolation:
    def test_own_rows_via_provenance(self, items, engine):
        items.execute("CREATE TABLE results (v INTEGER)")
        definition = ProcessDefinition(
            "producer",
            seq(RunQuery("make", "SELECT v FROM items WHERE id = 1", into_table="results")),
            relations=[RelationDecl("items"), RelationDecl("results")],
        )
        engine.deploy(definition)
        first = engine.run("producer")
        second = engine.run("producer")
        all_rows = items.query("SELECT * FROM results")
        assert len(all_rows) == 2
        own_first = engine.isolation.own_rows("results", first.id)
        own_second = engine.isolation.own_rows("results", second.id)
        assert len(own_first) == 1
        assert len(own_second) == 1
        assert own_first[0][TID] != own_second[0][TID]
