"""Retry-on-failure semantics for black-box CallProcedure activities."""

import pytest

from repro.errors import SpecificationError
from repro.retry import RetryPolicy
from repro.workflow import CallProcedure, ProcessDefinition, Procedure, seq
from repro.workflow.spec import parse_process, serialize_process


class FlakyProcedure(Procedure):
    """Fails the first ``failures`` runs, then echoes its input."""

    name = "flaky"

    def __init__(self, failures=2, exc=OSError):
        self.failures = failures
        self.exc = exc
        self.runs = 0

    def run(self, env, inputs, read_write):
        self.runs += 1
        if self.runs <= self.failures:
            raise self.exc(f"transient failure #{self.runs}")
        return [list(inputs[0]) if inputs else []]


@pytest.fixture
def pts(db):
    db.execute("CREATE TABLE src (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO src (id, v) VALUES (1, 10)")
    return db


def deploy_and_run(engine, flaky, retry=None, options=None):
    engine.procedures.register(flaky)
    activity = CallProcedure(
        "call",
        "flaky",
        inputs=("src",),
        outputs=(),
        retry=retry,
        options=options,
    )
    definition = ProcessDefinition("p", seq(activity))
    engine.deploy(definition)
    return engine.run("p")


class TestActivityRetry:
    def test_transient_failures_are_retried(self, pts, engine):
        flaky = FlakyProcedure(failures=2)
        deploy_and_run(
            engine,
            flaky,
            retry={"max_attempts": 3, "base_delay": 0.0, "jitter": 0.0},
        )
        assert flaky.runs == 3  # 2 failures + 1 success

    def test_exhaustion_propagates_last_error(self, pts, engine):
        flaky = FlakyProcedure(failures=10)
        with pytest.raises(OSError, match="transient failure #2"):
            deploy_and_run(
                engine,
                flaky,
                retry={"max_attempts": 2, "base_delay": 0.0},
            )
        assert flaky.runs == 2

    def test_no_retry_declared_means_one_attempt(self, pts, engine):
        flaky = FlakyProcedure(failures=1)
        with pytest.raises(OSError):
            deploy_and_run(engine, flaky)
        assert flaky.runs == 1

    def test_retry_policy_object_accepted(self, pts, engine):
        flaky = FlakyProcedure(failures=1)
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, sleep=lambda s: None)
        deploy_and_run(engine, flaky, retry=policy)
        assert flaky.runs == 2

    def test_non_retryable_exception_not_retried(self, pts, engine):
        flaky = FlakyProcedure(failures=5, exc=ValueError)
        with pytest.raises(ValueError):
            deploy_and_run(
                engine,
                flaky,
                retry={"max_attempts": 4, "base_delay": 0.0, "retryable": (OSError,)},
            )
        assert flaky.runs == 1


class TestProcedureLevelPolicy:
    def test_procedure_declares_its_own_policy(self, pts, engine):
        flaky = FlakyProcedure(failures=1)
        flaky.retry_policy = RetryPolicy(
            max_attempts=2, base_delay=0.0, sleep=lambda s: None
        )
        deploy_and_run(engine, flaky)
        assert flaky.runs == 2

    def test_activity_declaration_wins_over_procedure(self, pts, engine):
        flaky = FlakyProcedure(failures=10)
        flaky.retry_policy = RetryPolicy(
            max_attempts=5, base_delay=0.0, sleep=lambda s: None
        )
        with pytest.raises(OSError):
            deploy_and_run(
                engine, flaky, retry={"max_attempts": 2, "base_delay": 0.0}
            )
        assert flaky.runs == 2

    def test_nested_call_procedure_honors_policy(self, pts, engine):
        flaky = FlakyProcedure(failures=1)
        flaky.retry_policy = RetryPolicy(
            max_attempts=3, base_delay=0.0, sleep=lambda s: None
        )
        engine.procedures.register(flaky)
        from repro.workflow.procedures import ProcessEnv

        # The procedure under test never touches the isolation context.
        env = ProcessEnv(
            engine=engine,
            process_instance_id=0,
            activity_instance_id=None,
            isolation=None,
            variables={},
            constants={},
        )
        out = env.call_procedure("flaky", [[{"id": 1}]])
        assert out == [[{"id": 1}]]
        assert flaky.runs == 2


RETRY_XML = """
<process name="p">
  <relations/>
  <body>
    <sequence>
      <activity name="call" type="callFunction" procedure="flaky">
        <input table="src"/>
        <retry maxAttempts="3" baseDelay="0.0" jitter="0.0"/>
      </activity>
    </sequence>
  </body>
</process>
"""


class TestSpecIntegration:
    def test_xml_retry_declaration_drives_retries(self, pts, engine):
        flaky = FlakyProcedure(failures=2)
        engine.procedures.register(flaky)
        definition = parse_process(RETRY_XML)
        engine.deploy(definition)
        engine.run("p")
        assert flaky.runs == 3

    def test_retry_round_trips_through_xml(self):
        definition = parse_process(RETRY_XML)
        xml = serialize_process(definition)
        assert "retry" in xml
        again = parse_process(xml)
        (activity,) = [
            a for a in again.body.activities() if isinstance(a, CallProcedure)
        ]
        policy = RetryPolicy.from_options(activity.options["retry"])
        assert policy.max_attempts == 3

    def test_bad_retry_spec_rejected_at_parse_time(self):
        bad = RETRY_XML.replace('maxAttempts="3"', 'maxAttempts="0"')
        with pytest.raises(SpecificationError, match="bad retry"):
            parse_process(bad)
