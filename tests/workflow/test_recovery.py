"""Resumable enactments: crash mid-process, recover, same final state."""

import pytest

from repro.core import datamodel
from repro.db import Database, open_durable, recover as recover_db
from repro.faults import SimulatedCrash
from repro.workflow import (
    AskUser,
    Assign,
    CallProcedure,
    ProcessDefinition,
    Procedure,
    RunQuery,
    UpdateTable,
    Variable,
    seq,
)
from repro.workflow.engine import WorkflowEngine


class CrashyWriter(Procedure):
    """Writes rows, then optionally "dies" mid-run.

    ``armed`` is class-level so a rebuilt engine (simulating a fresh
    process) shares the disarm flag; ``runs`` counts invocations.
    """

    name = "crashy"
    armed = False
    runs = 0

    def run(self, env, inputs, read_write):
        type(self).runs += 1
        env.write_rows("out", [{"v": 101}, {"v": 102}])  # durable before crash
        if type(self).armed:
            raise SimulatedCrash("procedure.mid", 0)
        return [[{"v": 201}]]


def build_engine(db):
    engine = WorkflowEngine(db)
    engine.procedures.register(CrashyWriter(), singleton=False)
    definition = ProcessDefinition(
        "p",
        seq(
            Assign("set_k", "k", 7),
            UpdateTable("seed", "INSERT INTO src (v) VALUES (1), (2), (3)"),
            CallProcedure("crunch", "crashy", inputs=["src"], outputs=["out"]),
            RunQuery("count", "SELECT COUNT(*) AS c FROM out", into_variable="c"),
        ),
        variables=[Variable("k", initial=0), Variable("c", initial=None)],
    )
    engine.deploy(definition)
    return engine


def make_app_tables(db):
    db.execute("CREATE TABLE src (v INTEGER)")
    db.execute("CREATE TABLE out (v INTEGER)")


@pytest.fixture(autouse=True)
def reset_crashy():
    CrashyWriter.armed = False
    CrashyWriter.runs = 0
    yield
    CrashyWriter.armed = False


def out_values(db):
    return sorted(r["v"] for r in db.query("SELECT v FROM out"))


def oracle_run():
    """The uninterrupted run's final output table."""
    db = Database()
    make_app_tables(db)
    engine = build_engine(db)
    engine.run("p")
    return out_values(db)


class TestEngineRecovery:
    """Crash and resume on the SAME database object (workflow layer only)."""

    def crash_mid_procedure(self, db):
        engine = build_engine(db)
        CrashyWriter.armed = True
        with pytest.raises(SimulatedCrash):
            engine.run("p")
        CrashyWriter.armed = False
        return engine

    def test_crash_leaves_instance_running(self, db):
        make_app_tables(db)
        self.crash_mid_procedure(db)
        rows = db.query(f"SELECT status FROM {datamodel.T_PROCESS_INSTANCE}")
        assert rows[0]["status"] == datamodel.RUNNING

    def test_recover_completes_with_oracle_state(self, db):
        make_app_tables(db)
        self.crash_mid_procedure(db)
        engine2 = build_engine(db)  # fresh engine = restarted process
        recovered = engine2.recover()
        assert len(recovered) == 1
        execution = recovered[0]
        assert execution.instance.is_completed()
        # Compensation removed the crashed attempt's partial writes, so
        # the resumed run's output equals the uninterrupted oracle's.
        assert out_values(db) == oracle_run()

    def test_completed_activities_are_not_rerun(self, db):
        make_app_tables(db)
        self.crash_mid_procedure(db)
        engine2 = build_engine(db)
        engine2.recover()
        # src was seeded once pre-crash; the completed UpdateTable
        # activity is skipped on resume, not re-executed.
        assert len(db.query("SELECT v FROM src")) == 3
        # The procedure re-ran exactly once after the crash.
        assert CrashyWriter.runs == 2

    def test_variables_restored(self, db):
        make_app_tables(db)
        self.crash_mid_procedure(db)
        engine2 = build_engine(db)
        execution = engine2.recover()[0]
        assert execution.variables["k"] == 7  # assigned before the crash
        assert execution.variables["c"] == [{"c": 3}]  # assigned after resume

    def test_crashed_activity_instance_is_compensated_away(self, db):
        make_app_tables(db)
        self.crash_mid_procedure(db)
        engine2 = build_engine(db)
        engine2.recover()
        statuses = [
            r["status"]
            for r in db.query(f"SELECT status FROM {datamodel.T_ACTIVITY_INSTANCE}")
        ]
        assert statuses == [datamodel.COMPLETED] * 4

    def test_recover_without_resume_leaves_instances_running(self, db):
        make_app_tables(db)
        self.crash_mid_procedure(db)
        engine2 = build_engine(db)
        recovered = engine2.recover(resume=False)
        assert recovered[0].instance.is_running()
        # Compensation already happened: the partial rows are gone.
        assert out_values(db) == []

    def test_recover_is_idempotent(self, db):
        make_app_tables(db)
        self.crash_mid_procedure(db)
        engine2 = build_engine(db)
        engine2.recover()
        assert engine2.recover() == []  # nothing left in flight

    def test_recover_with_nothing_running_is_noop(self, db):
        make_app_tables(db)
        engine = build_engine(db)
        engine.run("p")
        assert engine.recover() == []

    def test_resumed_procedure_sees_raw_sql_seeds(self, db):
        """Rows a completed ``UpdateTable`` INSERTed stay visible to the
        enactment after recovery: raw-SQL inserts write durable
        ``createdBy`` provenance, which ``recover()`` rebuilds own-row
        visibility from (in-memory own_tids die with the process)."""

        class SumProc(Procedure):
            name = "summer"
            armed = True

            def run(self, env, inputs, read_write):
                if SumProc.armed:
                    raise SimulatedCrash("procedure.mid", 0)
                return [[{"v": sum(r["v"] for r in inputs[0])}]]

        def build(database):
            eng = WorkflowEngine(database)
            eng.procedures.register(SumProc(), singleton=False)
            eng.deploy(
                ProcessDefinition(
                    "sums",
                    seq(
                        UpdateTable(
                            "seed", "INSERT INTO src (v) VALUES (1), (2), (3)"
                        ),
                        CallProcedure(
                            "crunch", "summer", inputs=["src"], outputs=["out"]
                        ),
                    ),
                )
            )
            return eng

        make_app_tables(db)
        with pytest.raises(SimulatedCrash):
            build(db).run("sums")
        SumProc.armed = False
        recovered = build(db).recover()  # fresh engine = restarted process
        assert recovered[0].instance.is_completed()
        # The seeds were created after the process snapshot, so only the
        # provenance-backed own-row set makes them visible on resume.
        assert out_values(db) == [6]

    def test_ask_user_resumes_through_responder(self, db):
        db.execute("CREATE TABLE log (v TEXT)")
        engine = WorkflowEngine(db)

        class AskCrash(Procedure):
            name = "askcrash"
            armed = True

            def run(self, env, inputs, read_write):
                if AskCrash.armed:
                    raise SimulatedCrash("procedure.mid", 0)
                return []

        def build(database):
            eng = WorkflowEngine(database)
            eng.procedures.register(AskCrash(), singleton=False)
            definition = ProcessDefinition(
                "q",
                seq(
                    AskUser("ask", "who is it?", "who"),
                    CallProcedure("boom", "askcrash", inputs=[], outputs=[]),
                    UpdateTable("log_it", "INSERT INTO log (v) VALUES ($who)"),
                ),
                variables=[Variable("who", initial=None)],
            )
            eng.deploy(definition)
            return eng

        engine = build(db)
        with pytest.raises(SimulatedCrash):
            engine.run("q", responder=lambda prompt, var: "alice")
        AskCrash.armed = False
        engine2 = build(db)
        answered = []
        execution = engine2.recover(
            responders={"q": lambda prompt, var: answered.append(var) or "bob"}
        )[0]
        assert execution.instance.is_completed()
        # The pre-crash answer survived in the variable table: the AskUser
        # activity completed before the crash and is NOT re-asked.
        assert answered == []
        assert db.query("SELECT v FROM log")[0]["v"] == "alice"


class TestDurableRecovery:
    """Full stack: durable database + engine recovery across a "restart"."""

    def test_crash_recover_resume_equals_oracle(self, tmp_path):
        directory = tmp_path / "data"
        db, manager = open_durable(directory)
        make_app_tables(db)
        engine = build_engine(db)
        CrashyWriter.armed = True
        with pytest.raises(SimulatedCrash):
            engine.run("p")
        del db, manager, engine  # the process dies: nothing closes cleanly

        CrashyWriter.armed = False
        db2 = recover_db(directory)
        engine2 = build_engine(db2)  # deploy adopts the recovered catalog
        execution = engine2.recover()[0]
        assert execution.instance.is_completed()
        assert out_values(db2) == oracle_run()

    def test_redeploy_adopts_existing_catalog_rows(self, tmp_path):
        directory = tmp_path / "data"
        db, manager = open_durable(directory)
        make_app_tables(db)
        build_engine(db)
        manager.close()
        db2 = recover_db(directory)
        build_engine(db2)  # must not violate the unique name constraint
        processes = db2.query(f"SELECT name FROM {datamodel.T_PROCESS}")
        assert [r["name"] for r in processes] == ["p"]
        activities = db2.query(f"SELECT name FROM {datamodel.T_ACTIVITY}")
        assert len(activities) == 4
