"""Instance state machines and role management."""

import pytest

from repro.core import datamodel
from repro.errors import EnactmentError, WorkflowError
from repro.workflow import ProcessDefinition, UpdateTable, seq
from repro.workflow.instance import ActivityInstance, ProcessInstance


@pytest.fixture
def deployed(db, engine):
    db.execute("CREATE TABLE t (v INTEGER)")
    definition = ProcessDefinition("p", seq(UpdateTable("u", "DELETE FROM t")))
    engine.deploy(definition)
    return engine


class TestProcessInstance:
    def test_transitions(self, db, deployed):
        execution = deployed.start("p")
        instance = execution.instance
        assert instance.is_running()
        assert instance.start_time is not None
        instance.complete()
        assert instance.is_completed()
        assert instance.end_time > instance.start_time

    def test_illegal_transition(self, db, deployed):
        execution = deployed.start("p")
        execution.instance.complete()
        with pytest.raises(EnactmentError, match="illegal status transition"):
            execution.instance.complete()

    def test_missing_instance(self, db, deployed):
        ghost = ProcessInstance(db, 9999)
        with pytest.raises(EnactmentError, match="does not exist"):
            ghost.row()

    def test_activity_instances_listing(self, db, deployed):
        execution = deployed.run("p")
        rows = execution.instance.activity_instances()
        assert len(rows) == 1
        assert rows[0]["status"] == datamodel.COMPLETED


class TestActivityInstance:
    def test_full_lifecycle_recorded(self, db, deployed):
        execution = deployed.run("p")
        row = db.query("SELECT * FROM ediflow_activity_instance")[0]
        assert row["status"] == datamodel.COMPLETED
        assert row["start"] < row["end"]
        assert row["process_instance_id"] == execution.id

    def test_assign_to_user(self, db, deployed):
        execution = deployed.start("p")
        aid = deployed.activity_id("p", "u")
        instance_id = deployed.allocator.next_id(datamodel.T_ACTIVITY_INSTANCE)
        db.insert(
            datamodel.T_ACTIVITY_INSTANCE,
            {
                "id": instance_id,
                "activity_id": aid,
                "process_instance_id": execution.id,
                "status": datamodel.NOT_STARTED,
            },
        )
        instance = ActivityInstance(db, instance_id)
        user_id = deployed.roles.ensure_user("bob")
        instance.assign_to(user_id)
        assert instance.row()["user_id"] == user_id
        instance.start()
        instance.complete()


class TestRoles:
    def test_group_crud(self, engine):
        gid = engine.roles.create_group("analysts")
        assert engine.roles.group_id("analysts") == gid
        assert engine.roles.ensure_group("analysts") == gid
        assert engine.roles.group_id("ghost") is None

    def test_user_crud(self, engine):
        uid = engine.roles.create_user("ann", password="pw")
        assert engine.roles.user_id("ann") == uid
        assert engine.roles.ensure_user("ann") == uid

    def test_membership(self, engine):
        gid = engine.roles.create_group("g")
        uid = engine.roles.create_user("u")
        engine.roles.add_to_group(uid, gid)
        engine.roles.add_to_group(uid, gid)  # idempotent
        assert engine.roles.groups_of(uid) == {gid}
        assert engine.roles.members_of(gid) == {uid}

    def test_check_assignment(self, engine):
        gid = engine.roles.create_group("g")
        uid = engine.roles.create_user("u")
        with pytest.raises(WorkflowError):
            engine.roles.check_assignment(uid, gid)
        engine.roles.add_to_group(uid, gid)
        engine.roles.check_assignment(uid, gid)  # no raise
        engine.roles.check_assignment(uid, None)  # unconstrained


class TestDataModel:
    def test_core_tables_installed(self, engine, db):
        for table in datamodel.CORE_TABLES:
            assert db.has_table(table)

    def test_install_idempotent(self, db, engine):
        datamodel.install_core_schema(db)  # second call: no error

    def test_id_allocator_seeds_from_existing(self, db, engine):
        db.insert(datamodel.T_GROUP, {"id": 41, "name": "existing"})
        allocator = datamodel.IdAllocator(db)
        assert allocator.next_id(datamodel.T_GROUP) == 42
        assert allocator.next_id(datamodel.T_GROUP) == 43

    def test_provenance_helpers(self, db, engine):
        from repro.db import TID

        db.execute("CREATE TABLE app (v INTEGER)")
        row = db.insert("app", {"v": 1})
        datamodel.record_provenance(db, "app", row[TID], activity_instance_id=7)
        records = datamodel.provenance_of(db, "app", row[TID])
        assert records[0]["activity_instance_id"] == 7
        assert records[0]["relation"] == "createdBy"
        assert datamodel.provenance_of(db, "app", 999) == []

    def test_deletion_table_name(self):
        assert datamodel.deletion_table_name("votes") == "votes_deleted"
