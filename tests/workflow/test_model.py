"""Process model construction and validation."""

import pytest

from repro.errors import SpecificationError
from repro.workflow import (
    AskUser,
    Assign,
    CallProcedure,
    Constant,
    ProcessDefinition,
    RelationDecl,
    RunQuery,
    UpdatePropagation,
    UpdateTable,
    Variable,
    alt,
    par,
    propagate_to_future,
    seq,
    when,
)


def simple_body():
    return seq(
        UpdateTable("a1", "DELETE FROM t"),
        RunQuery("a2", "SELECT * FROM t", into_variable="x"),
    )


class TestDefinition:
    def test_activity_lookup(self):
        definition = ProcessDefinition("p", simple_body())
        assert definition.activity("a1").name == "a1"
        assert definition.activity_names() == ["a1", "a2"]

    def test_unknown_activity_lookup(self):
        definition = ProcessDefinition("p", simple_body())
        with pytest.raises(SpecificationError):
            definition.activity("nope")

    def test_duplicate_activity_names_rejected(self):
        body = seq(
            UpdateTable("dup", "DELETE FROM t"),
            UpdateTable("dup", "DELETE FROM t"),
        )
        with pytest.raises(SpecificationError, match="duplicate"):
            ProcessDefinition("p", body)

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            ProcessDefinition("", simple_body())

    def test_up_on_unknown_activity_rejected(self):
        with pytest.raises(SpecificationError, match="unknown activity"):
            ProcessDefinition(
                "p",
                simple_body(),
                propagations=[UpdatePropagation("t", "ghost", "ra")],
            )

    def test_up_on_undeclared_relation_rejected(self):
        with pytest.raises(SpecificationError, match="undeclared relation"):
            ProcessDefinition(
                "p",
                simple_body(),
                relations=[RelationDecl("t")],
                propagations=[UpdatePropagation("other", "a1", "ra")],
            )

    def test_bad_up_scope(self):
        with pytest.raises(SpecificationError, match="scope"):
            UpdatePropagation("t", "a1", "everything")

    def test_duplicate_variables_rejected(self):
        with pytest.raises(SpecificationError):
            ProcessDefinition(
                "p", simple_body(), variables=[Variable("v"), Variable("v")]
            )

    def test_constant_variable_clash_rejected(self):
        with pytest.raises(SpecificationError):
            ProcessDefinition(
                "p",
                simple_body(),
                variables=[Variable("v")],
                constants=[Constant("v", 1)],
            )

    def test_propagations_for(self):
        definition = ProcessDefinition(
            "p",
            simple_body(),
            relations=[RelationDecl("t")],
            propagations=[
                UpdatePropagation("t", "a1", "ra"),
                UpdatePropagation("t", "a1", "fa-rp"),
            ],
        )
        assert len(definition.propagations_for("t")) == 2
        assert definition.propagations_for("other") == []


class TestStructure:
    def test_sequence_activities_in_order(self):
        body = seq(
            UpdateTable("first", "DELETE FROM t"),
            par(
                UpdateTable("left", "DELETE FROM t"),
                UpdateTable("right", "DELETE FROM t"),
            ),
            when("SELECT 1", UpdateTable("maybe", "DELETE FROM t")),
        )
        assert [a.name for a in body.activities()] == [
            "first",
            "left",
            "right",
            "maybe",
        ]

    def test_or_split_collects_all_branches(self):
        body = alt(
            ("SELECT 1", UpdateTable("yes", "DELETE FROM t")),
            (None, UpdateTable("no", "DELETE FROM t")),
        )
        assert [a.name for a in body.activities()] == ["yes", "no"]

    def test_lift_rejects_junk(self):
        with pytest.raises(SpecificationError):
            seq("not an activity")

    def test_propagate_to_future_macro(self):
        activities = [
            UpdateTable("a", "DELETE FROM t"),
            UpdateTable("b", "DELETE FROM t"),
        ]
        ups = propagate_to_future("t", activities)
        assert [(u.activity, u.scope) for u in ups] == [
            ("a", "fa-rp"),
            ("b", "fa-rp"),
        ]


class TestActivities:
    def test_activity_requires_name(self):
        with pytest.raises(SpecificationError):
            UpdateTable("", "DELETE FROM t")

    def test_flags(self):
        activity = CallProcedure(
            "vis", "layout", detached=True, fresh_snapshot=True, group="analysts"
        )
        assert activity.detached
        assert activity.fresh_snapshot
        assert activity.group == "analysts"

    def test_ask_user_fields(self):
        activity = AskUser("ask", "Which party?", "party")
        assert activity.prompt == "Which party?"
        assert activity.variable == "party"

    def test_assign_fields(self):
        activity = Assign("set", "threshold", 0.5)
        assert activity.variable == "threshold"
        assert activity.expression == 0.5
