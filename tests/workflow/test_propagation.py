"""Update propagation: the four UP scopes (Section V / VI-B)."""

import pytest

from repro.errors import PropagationError
from repro.workflow import (
    CallProcedure,
    ProcessDefinition,
    Procedure,
    RelationDecl,
    RunQuery,
    UpdatePropagation,
    UpdateTable,
    seq,
)


class Recorder(Procedure):
    """Counts handler invocations and remembers deltas."""

    def __init__(self, name="recorder", distributive=False):
        self.name = name
        self.distributive = distributive
        self.runs = 0
        self.running_deltas = []
        self.finished_deltas = []

    def run(self, env, inputs, read_write):
        self.runs += 1
        return []

    def on_delta_running(self, env, delta):
        self.running_deltas.append(delta)
        return None

    def on_delta_finished(self, env, delta):
        self.finished_deltas.append(delta)
        return None


@pytest.fixture
def source(db):
    db.execute("CREATE TABLE src (id INTEGER PRIMARY KEY, v INTEGER)")
    return db


def deploy(engine, recorder, scopes, detached=False):
    engine.procedures.register(recorder)
    definition = ProcessDefinition(
        "p",
        seq(
            CallProcedure(
                "work", recorder.name, inputs=["src"], detached=detached
            )
        ),
        relations=[RelationDecl("src")],
        procedures=[recorder.name],
        propagations=[UpdatePropagation("src", "work", s) for s in scopes],
    )
    engine.deploy(definition)
    return definition


class TestDefaultIgnore:
    def test_no_up_no_handler_calls(self, source, engine, propagation):
        recorder = Recorder()
        engine.procedures.register(recorder)
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("work", "recorder", inputs=["src"])),
            relations=[RelationDecl("src")],
            procedures=["recorder"],
        )
        engine.deploy(definition)
        engine.run("p")
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        assert recorder.running_deltas == []
        assert recorder.finished_deltas == []


class TestRunningScope:
    def test_ra_delivers_to_running_detached_instance(self, source, engine, propagation):
        recorder = Recorder()
        deploy(engine, recorder, ["ra"], detached=True)
        execution = engine.run("p")
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        assert len(recorder.running_deltas) == 1
        assert recorder.running_deltas[0].inserted[0]["id"] == 1
        engine.close(execution)
        # After completion 'ra' no longer fires.
        source.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        assert len(recorder.running_deltas) == 1

    def test_ra_sees_updates_and_deletes(self, source, engine, propagation):
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        recorder = Recorder()
        deploy(engine, recorder, ["ra"], detached=True)
        execution = engine.run("p")
        source.execute("UPDATE src SET v = 9 WHERE id = 1")
        source.execute("DELETE FROM src WHERE id = 1")
        assert len(recorder.running_deltas) == 2
        update_delta = recorder.running_deltas[0]
        assert update_delta.inserted[0]["v"] == 9
        assert update_delta.deleted[0]["v"] == 1
        engine.close(execution)

    def test_ra_requires_running_handler(self, source, engine, propagation):
        class NoHandlers(Procedure):
            name = "nohandlers"

            def run(self, env, inputs, read_write):
                return []

        engine.procedures.register(NoHandlers())
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("work", "nohandlers", inputs=["src"], detached=True)),
            relations=[RelationDecl("src")],
            procedures=["nohandlers"],
            propagations=[UpdatePropagation("src", "work", "ra")],
        )
        engine.deploy(definition)
        execution = engine.run("p")
        with pytest.raises(PropagationError, match="no running delta handler"):
            source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        engine.close(execution)


class TestTerminatedScopes:
    def test_ta_rp_fires_while_process_running(self, source, engine, propagation):
        recorder = Recorder()
        deploy(engine, recorder, ["ta-rp"])
        execution = engine.run("p", close=False)
        assert execution.instance.is_running()
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        assert len(recorder.finished_deltas) == 1
        engine.close(execution)
        source.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        assert len(recorder.finished_deltas) == 1  # process ended: ta-rp stops

    def test_ta_tp_fires_after_process_ended(self, source, engine, propagation):
        recorder = Recorder()
        deploy(engine, recorder, ["ta-tp"])
        execution = engine.run("p", close=False)
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        assert recorder.finished_deltas == []  # process still running
        engine.close(execution)
        source.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        assert len(recorder.finished_deltas) == 1

    def test_combined_scopes_cover_both_phases(self, source, engine, propagation):
        recorder = Recorder()
        deploy(engine, recorder, ["ta-rp", "ta-tp"])
        execution = engine.run("p", close=False)
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        engine.close(execution)
        source.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        assert len(recorder.finished_deltas) == 2


class TestFutureScope:
    def test_fa_rp_promotes_future_activity_to_fresh_snapshot(
        self, source, engine, propagation
    ):
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        definition = ProcessDefinition(
            "p",
            seq(
                # A user-interaction stand-in: a query the engine runs first.
                RunQuery("first", "SELECT COUNT(*) AS n FROM src", into_variable="n1"),
                RunQuery("second", "SELECT COUNT(*) AS n FROM src", into_variable="n2"),
            ),
            relations=[RelationDecl("src")],
            propagations=[UpdatePropagation("src", "second", "fa-rp")],
        )
        engine.deploy(definition)
        execution = engine.start("p")
        # Delta arrives while the process is running, before 'second' starts.
        source.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        engine.execute_node(execution.definition.body, execution)
        engine.close(execution)
        assert execution.variables["n1"][0]["n"] == 1  # process-start snapshot
        assert execution.variables["n2"][0]["n"] == 2  # promoted to fresh

    def test_fa_rp_does_not_affect_other_processes(self, source, engine, propagation):
        definition = ProcessDefinition(
            "p",
            seq(RunQuery("read", "SELECT COUNT(*) AS n FROM src", into_variable="n")),
            relations=[RelationDecl("src")],
            propagations=[UpdatePropagation("src", "read", "fa-rp")],
        )
        engine.deploy(definition)
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        execution = engine.run("p")
        assert execution.variables["n"][0]["n"] == 1


class TestDistributiveProcedures:
    def test_distributive_auto_handler_runs_on_delta(self, source, engine, propagation):
        class Distributive(Procedure):
            name = "dist"
            distributive = True

            def __init__(self):
                self.batches = []

            def run(self, env, inputs, read_write):
                self.batches.append(list(inputs[0]))
                return []

        proc = Distributive()
        engine.procedures.register(proc)
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("work", "dist", inputs=["src"], detached=True)),
            relations=[RelationDecl("src")],
            procedures=["dist"],
            propagations=[UpdatePropagation("src", "work", "ra")],
        )
        engine.deploy(definition)
        execution = engine.run("p")
        source.execute("INSERT INTO src (id, v) VALUES (1, 1), (2, 2)")
        # First batch: the initial (empty) run; second: the delta alone.
        assert len(proc.batches) == 2
        assert [r["id"] for r in proc.batches[1]] == [1, 2]
        engine.close(execution)


class TestHandlerOutputInjection:
    def test_handler_outputs_written_to_activity_outputs(self, source, engine, propagation):
        source.execute("CREATE TABLE sink (id INTEGER, v INTEGER)")

        class Producer(Procedure):
            name = "producer"

            def run(self, env, inputs, read_write):
                return [[]]

            def on_delta_running(self, env, delta):
                return [[{"id": r["id"], "v": r["v"] * 10} for r in delta.inserted]]

        engine.procedures.register(Producer())
        definition = ProcessDefinition(
            "p",
            seq(
                CallProcedure(
                    "work", "producer", inputs=["src"], outputs=["sink"], detached=True
                )
            ),
            relations=[RelationDecl("src")],
            procedures=["producer"],
            propagations=[UpdatePropagation("src", "work", "ra")],
        )
        engine.deploy(definition)
        execution = engine.run("p")
        source.execute("INSERT INTO src (id, v) VALUES (1, 7)")
        rows = source.query("SELECT * FROM sink")
        assert rows == [{"id": 1, "v": 70}]
        engine.close(execution)

    def test_propagation_log_records_invocations(self, source, engine, propagation):
        recorder = Recorder()
        deploy(engine, recorder, ["ra"], detached=True)
        execution = engine.run("p")
        source.execute("INSERT INTO src (id, v) VALUES (1, 1), (2, 2)")
        assert len(propagation.log) == 1
        entry = propagation.log[0]
        assert entry.scope == "ra"
        assert entry.delta_size == 2
        assert entry.relation == "src"
        engine.close(execution)


class TestRetention:
    def test_prune_finished_stops_ta_propagation(self, source, engine, propagation):
        recorder = Recorder()
        deploy(engine, recorder, ["ta-tp"])
        execution = engine.run("p", close=False)
        engine.close(execution)
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        assert len(recorder.finished_deltas) == 1
        dropped = engine.prune_finished()
        assert dropped == 1
        source.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        assert len(recorder.finished_deltas) == 1  # no longer delivered

    def test_prune_single_process(self, source, engine, propagation):
        recorder = Recorder()
        deploy(engine, recorder, ["ta-tp"])
        first = engine.run("p", close=False)
        engine.close(first)
        second = engine.run("p", close=False)
        engine.close(second)
        assert engine.prune_finished(first.id) == 1
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        # Only the surviving record receives the delta.
        assert len(recorder.finished_deltas) == 1

    def test_prune_empty_is_zero(self, source, engine, propagation):
        assert engine.prune_finished() == 0


class TestCompileErrors:
    def test_ra_on_non_procedure_activity_rejected(self, source, engine, propagation):
        definition = ProcessDefinition(
            "p",
            seq(UpdateTable("upd", "DELETE FROM src")),
            relations=[RelationDecl("src")],
            propagations=[UpdatePropagation("src", "upd", "ra")],
        )
        with pytest.raises(PropagationError, match="delta handlers"):
            engine.deploy(definition)


class TestPropagationPolicies:
    """P2/P3 policies on UP routes (Section V)."""

    def test_manual_policy_defers_to_activity_completion(
        self, source, engine, propagation
    ):
        from repro.sync.batching import MANUAL

        recorder = Recorder()
        deploy(engine, recorder, ["ra"], detached=True)
        propagation.set_policy("src", MANUAL)
        execution = engine.run("p")
        for i in range(5):
            source.execute(f"INSERT INTO src (id, v) VALUES ({i + 1}, {i})")
        # Nothing delivered while the unit of work is open.
        assert recorder.running_deltas == []
        assert propagation.pending_ops("src") == 5
        # Completion flushes: the still-live 'ra' instance gets ONE net
        # delta covering the whole batch.
        engine.close(execution)
        assert len(recorder.running_deltas) == 1
        assert len(recorder.running_deltas[0].inserted) == 5

    def test_threshold_policy_flushes_on_count(self, source, engine, propagation):
        from repro.sync.batching import Threshold

        recorder = Recorder()
        deploy(engine, recorder, ["ra"], detached=True)
        propagation.set_policy("src", Threshold(max_changes=3, max_delay_ms=None))
        execution = engine.run("p")
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        source.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        assert recorder.running_deltas == []
        source.execute("INSERT INTO src (id, v) VALUES (3, 3)")
        assert len(recorder.running_deltas) == 1
        assert len(recorder.running_deltas[0].inserted) == 3
        engine.close(execution)

    def test_coalescing_delivers_net_delta(self, source, engine, propagation):
        from repro.sync.batching import MANUAL

        recorder = Recorder()
        deploy(engine, recorder, ["ra"], detached=True)
        propagation.set_policy("src", MANUAL)
        execution = engine.run("p")
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        source.execute("UPDATE src SET v = 9 WHERE id = 1")
        source.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        source.execute("DELETE FROM src WHERE id = 2")
        flushed = propagation.flush("src")
        # insert+update -> one insert carrying the final image;
        # insert+delete -> annihilated.
        assert flushed == 1
        (delta,) = recorder.running_deltas
        assert len(delta.inserted) == 1
        assert delta.inserted[0]["v"] == 9
        engine.close(execution)

    def test_policy_switch_flushes_pending(self, source, engine, propagation):
        from repro.sync.batching import IMMEDIATE, MANUAL

        recorder = Recorder()
        deploy(engine, recorder, ["ra"], detached=True)
        propagation.set_policy("src", MANUAL)
        execution = engine.run("p")
        source.execute("INSERT INTO src (id, v) VALUES (1, 1)")
        assert recorder.running_deltas == []
        propagation.set_policy("src", IMMEDIATE)
        assert len(recorder.running_deltas) == 1
        source.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        assert len(recorder.running_deltas) == 2  # immediate again
        engine.close(execution)
