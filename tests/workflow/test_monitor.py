"""Process monitoring over the core instance tables."""

import pytest

import repro.obs as obs
from repro.core import datamodel
from repro.db.persistence import load_snapshot, save_snapshot
from repro.workflow import (
    CallProcedure,
    ProcessDefinition,
    Procedure,
    RunQuery,
    UpdateTable,
    seq,
)
from repro.workflow.monitor import ProcessMonitor


class Sleepy(Procedure):
    name = "sleepy"

    def run(self, env, inputs, read_write):
        return []


@pytest.fixture
def deployed(db, engine):
    db.execute("CREATE TABLE t (v INTEGER)")
    engine.procedures.register(Sleepy())
    definition = ProcessDefinition(
        "p",
        seq(
            UpdateTable("write", "INSERT INTO t (v) VALUES (1)"),
            RunQuery("read", "SELECT * FROM t", into_variable="rows"),
            CallProcedure("vis", "sleepy", detached=True),
        ),
        procedures=["sleepy"],
    )
    engine.deploy(definition)
    return engine


class TestTrace:
    def test_full_timeline(self, db, deployed):
        execution = deployed.run("p", user="alice")
        monitor = ProcessMonitor(db)
        trace = monitor.trace(execution.id)
        assert trace.process_name == "p"
        assert trace.status == datamodel.RUNNING  # detached vis still open
        names = [a.activity_name for a in trace.activities]
        assert names == ["write", "read", "vis"]
        statuses = {a.activity_name: a.status for a in trace.activities}
        assert statuses["write"] == datamodel.COMPLETED
        assert statuses["vis"] == datamodel.RUNNING
        assert all(a.user == "alice" for a in trace.activities)
        deployed.close(execution)
        trace = monitor.trace(execution.id)
        assert trace.status == datamodel.COMPLETED
        assert trace.duration is not None and trace.duration > 0

    def test_activities_ordered_by_start(self, db, deployed):
        execution = deployed.run("p")
        deployed.close(execution)
        trace = ProcessMonitor(db).trace(execution.id)
        starts = [a.start for a in trace.activities]
        assert starts == sorted(starts)

    def test_unknown_instance(self, db, deployed):
        with pytest.raises(KeyError):
            ProcessMonitor(db).trace(999)

    def test_durations(self, db, deployed):
        execution = deployed.run("p")
        deployed.close(execution)
        trace = ProcessMonitor(db).trace(execution.id)
        for activity in trace.activities:
            assert activity.duration is not None
            assert activity.duration >= 0


class TestHistory:
    def test_history_and_running(self, db, deployed):
        first = deployed.run("p")
        deployed.close(first)
        second = deployed.run("p")  # stays running (detached vis)
        monitor = ProcessMonitor(db)
        history = monitor.history()
        assert [t.process_instance_id for t in history] == [first.id, second.id]
        running = monitor.running()
        assert [t.process_instance_id for t in running] == [second.id]
        deployed.close(second)
        assert monitor.running() == []

    def test_history_filtered_by_name(self, db, deployed):
        definition = ProcessDefinition(
            "other", seq(UpdateTable("w", "INSERT INTO t (v) VALUES (2)"))
        )
        deployed.deploy(definition)
        execution = deployed.run("p")
        deployed.close(execution)
        deployed.run("other")
        monitor = ProcessMonitor(db)
        assert len(monitor.history("p")) == 1
        assert len(monitor.history("other")) == 1
        assert len(monitor.history()) == 2


class TestStatistics:
    def test_activity_statistics(self, db, deployed):
        for _ in range(3):
            execution = deployed.run("p")
            deployed.close(execution)
        stats = ProcessMonitor(db).activity_statistics()
        assert stats["write"]["instances"] == 3
        assert stats["write"]["completed"] == 3
        assert stats["write"]["mean_duration"] is not None
        assert stats["vis"]["instances"] == 3

    def test_format_trace(self, db, deployed):
        execution = deployed.run("p", user="bob")
        deployed.close(execution)
        text = ProcessMonitor(db).format_trace(execution.id)
        assert "process 'p'" in text
        assert "write" in text and "read" in text and "vis" in text
        assert "by bob" in text
        assert "completed" in text


class TestSnapshotRoundTrip:
    """The monitor reads only the core tables, so a reloaded snapshot must
    reproduce the exact same timeline as the live engine."""

    def test_trace_survives_snapshot_reload(self, db, deployed, tmp_path):
        execution = deployed.run("p", user="carol")
        deployed.close(execution)
        live = ProcessMonitor(db).trace(execution.id)

        path = tmp_path / "wf.snapshot"
        save_snapshot(db, path)
        reloaded = ProcessMonitor(load_snapshot(path)).trace(execution.id)

        assert reloaded.process_name == live.process_name
        assert reloaded.status == live.status == datamodel.COMPLETED
        assert reloaded.duration == live.duration
        assert [a.activity_name for a in reloaded.activities] == [
            a.activity_name for a in live.activities
        ]
        for before, after in zip(live.activities, reloaded.activities):
            assert after.activity_instance_id == before.activity_instance_id
            assert after.status == before.status
            assert after.start == before.start
            assert after.end == before.end
            assert after.duration == before.duration
            assert after.user == "carol"

    def test_history_and_statistics_from_snapshot(self, db, deployed, tmp_path):
        for _ in range(2):
            deployed.close(deployed.run("p"))
        path = tmp_path / "wf.snapshot"
        save_snapshot(db, path)
        monitor = ProcessMonitor(load_snapshot(path))
        assert len(monitor.history("p")) == 2
        stats = monitor.activity_statistics()
        assert stats["write"]["instances"] == 2
        assert stats["write"]["completed"] == 2


class TestSpansAgreeWithMonitor:
    """Workflow spans carry activity_instance_id, so the wall-clock trace
    and the monitor's logical-clock timeline describe the same execution."""

    @pytest.fixture(autouse=True)
    def clean_obs(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_activity_spans_match_monitor_timeline(self, db, deployed):
        obs.enable()
        execution = deployed.run("p", user="dana")
        deployed.close(execution)
        trace = ProcessMonitor(db).trace(execution.id)

        spans = obs.tracer().spans_named("workflow.activity")
        by_instance = {s.tags["activity_instance_id"]: s for s in spans}
        # Every activity the monitor recorded has exactly one span.
        assert set(by_instance) == {
            a.activity_instance_id for a in trace.activities
        }
        for activity in trace.activities:
            span = by_instance[activity.activity_instance_id]
            assert span.tags["activity"] == activity.activity_name
            assert span.tags["process_instance_id"] == execution.id
            assert span.finished and span.duration_ms >= 0
        # Both clocks agree on the order activities started in.
        span_order = [
            s.tags["activity"] for s in sorted(spans, key=lambda s: s.start_ns)
        ]
        monitor_order = [a.activity_name for a in trace.activities]
        assert span_order == monitor_order

    def test_process_span_brackets_every_activity_span(self, db, deployed):
        obs.enable()
        execution = deployed.run("p")
        deployed.close(execution)
        (process_span,) = obs.tracer().spans_named("workflow.process")
        assert process_span.tags["process_instance_id"] == execution.id
        for span in obs.tracer().spans_named("workflow.activity"):
            assert span.start_ns >= process_span.start_ns
            assert span.end_ns <= process_span.end_ns
