"""Process monitoring over the core instance tables."""

import pytest

from repro.core import datamodel
from repro.workflow import (
    CallProcedure,
    ProcessDefinition,
    Procedure,
    RunQuery,
    UpdateTable,
    seq,
)
from repro.workflow.monitor import ProcessMonitor


class Sleepy(Procedure):
    name = "sleepy"

    def run(self, env, inputs, read_write):
        return []


@pytest.fixture
def deployed(db, engine):
    db.execute("CREATE TABLE t (v INTEGER)")
    engine.procedures.register(Sleepy())
    definition = ProcessDefinition(
        "p",
        seq(
            UpdateTable("write", "INSERT INTO t (v) VALUES (1)"),
            RunQuery("read", "SELECT * FROM t", into_variable="rows"),
            CallProcedure("vis", "sleepy", detached=True),
        ),
        procedures=["sleepy"],
    )
    engine.deploy(definition)
    return engine


class TestTrace:
    def test_full_timeline(self, db, deployed):
        execution = deployed.run("p", user="alice")
        monitor = ProcessMonitor(db)
        trace = monitor.trace(execution.id)
        assert trace.process_name == "p"
        assert trace.status == datamodel.RUNNING  # detached vis still open
        names = [a.activity_name for a in trace.activities]
        assert names == ["write", "read", "vis"]
        statuses = {a.activity_name: a.status for a in trace.activities}
        assert statuses["write"] == datamodel.COMPLETED
        assert statuses["vis"] == datamodel.RUNNING
        assert all(a.user == "alice" for a in trace.activities)
        deployed.close(execution)
        trace = monitor.trace(execution.id)
        assert trace.status == datamodel.COMPLETED
        assert trace.duration is not None and trace.duration > 0

    def test_activities_ordered_by_start(self, db, deployed):
        execution = deployed.run("p")
        deployed.close(execution)
        trace = ProcessMonitor(db).trace(execution.id)
        starts = [a.start for a in trace.activities]
        assert starts == sorted(starts)

    def test_unknown_instance(self, db, deployed):
        with pytest.raises(KeyError):
            ProcessMonitor(db).trace(999)

    def test_durations(self, db, deployed):
        execution = deployed.run("p")
        deployed.close(execution)
        trace = ProcessMonitor(db).trace(execution.id)
        for activity in trace.activities:
            assert activity.duration is not None
            assert activity.duration >= 0


class TestHistory:
    def test_history_and_running(self, db, deployed):
        first = deployed.run("p")
        deployed.close(first)
        second = deployed.run("p")  # stays running (detached vis)
        monitor = ProcessMonitor(db)
        history = monitor.history()
        assert [t.process_instance_id for t in history] == [first.id, second.id]
        running = monitor.running()
        assert [t.process_instance_id for t in running] == [second.id]
        deployed.close(second)
        assert monitor.running() == []

    def test_history_filtered_by_name(self, db, deployed):
        definition = ProcessDefinition(
            "other", seq(UpdateTable("w", "INSERT INTO t (v) VALUES (2)"))
        )
        deployed.deploy(definition)
        execution = deployed.run("p")
        deployed.close(execution)
        deployed.run("other")
        monitor = ProcessMonitor(db)
        assert len(monitor.history("p")) == 1
        assert len(monitor.history("other")) == 1
        assert len(monitor.history()) == 2


class TestStatistics:
    def test_activity_statistics(self, db, deployed):
        for _ in range(3):
            execution = deployed.run("p")
            deployed.close(execution)
        stats = ProcessMonitor(db).activity_statistics()
        assert stats["write"]["instances"] == 3
        assert stats["write"]["completed"] == 3
        assert stats["write"]["mean_duration"] is not None
        assert stats["vis"]["instances"] == 3

    def test_format_trace(self, db, deployed):
        execution = deployed.run("p", user="bob")
        deployed.close(execution)
        text = ProcessMonitor(db).format_trace(execution.id)
        assert "process 'p'" in text
        assert "write" in text and "read" in text and "vis" in text
        assert "by bob" in text
        assert "completed" in text
