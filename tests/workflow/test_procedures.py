"""Procedure registry, functions, delta-handler detection, ProcessEnv."""

import pytest

from repro.errors import ProcedureError, WorkflowError
from repro.ivm.delta import Delta
from repro.workflow import (
    FunctionProcedure,
    ProcCallExpr,
    ProcessDefinition,
    Procedure,
    ProcedureRegistry,
    QueryExpr,
    RunQuery,
    TableExpr,
    ValueExpr,
    seq,
)
from repro.workflow.expressions import PythonExpr, evaluate_condition


class TestRegistry:
    def test_register_instance_singleton(self):
        registry = ProcedureRegistry()

        class P(Procedure):
            name = "p"

            def run(self, env, inputs, read_write):
                return []

        instance = P()
        registry.register(instance)
        assert registry.instantiate("p") is instance
        assert "p" in registry
        assert registry.names() == ["p"]

    def test_register_factory_non_singleton(self):
        registry = ProcedureRegistry()

        class P(Procedure):
            name = "p"

            def run(self, env, inputs, read_write):
                return []

        registry.register(P, name="p", singleton=False)
        a = registry.instantiate("p")
        b = registry.instantiate("p")
        assert a is not b

    def test_factory_requires_name(self):
        registry = ProcedureRegistry()
        with pytest.raises(ProcedureError):
            registry.register(lambda: None)  # type: ignore[arg-type]

    def test_unknown_procedure(self):
        with pytest.raises(ProcedureError):
            ProcedureRegistry().instantiate("ghost")

    def test_register_function(self):
        registry = ProcedureRegistry()
        registry.register_function("double", lambda rows: [
            {"v": r["v"] * 2} for r in rows
        ])
        proc = registry.instantiate("double")
        out = proc.run(None, [[{"v": 2}]], [])
        assert out == [[{"v": 4}]]


class TestFunctionProcedure:
    def test_single_table_result(self):
        fn = FunctionProcedure("f", lambda rows: list(rows))
        assert fn.run(None, [[{"a": 1}]], []) == [[{"a": 1}]]

    def test_multi_table_result(self):
        fn = FunctionProcedure("f", lambda rows: [list(rows), []])
        out = fn.run(None, [[{"a": 1}]], [])
        assert len(out) == 2

    def test_none_result(self):
        fn = FunctionProcedure("f", lambda rows: None)
        assert fn.run(None, [[]], []) == []

    def test_empty_list_is_one_empty_table(self):
        fn = FunctionProcedure("f", lambda rows: [])
        assert fn.run(None, [[]], []) == [[]]

    def test_read_write_tables_rejected(self):
        fn = FunctionProcedure("f", lambda rows: None)
        with pytest.raises(ProcedureError):
            fn.run(None, [[]], ["tw"])


class TestHandlerDetection:
    def test_plain_procedure_has_no_handlers(self):
        class Plain(Procedure):
            def run(self, env, inputs, read_write):
                return []

        assert not Plain().has_running_handler()
        assert not Plain().has_finished_handler()

    def test_overridden_handlers_detected(self):
        class WithRunning(Procedure):
            def run(self, env, inputs, read_write):
                return []

            def on_delta_running(self, env, delta):
                return None

        assert WithRunning().has_running_handler()
        assert not WithRunning().has_finished_handler()

    def test_distributive_counts_as_both(self):
        class Dist(Procedure):
            distributive = True

            def run(self, env, inputs, read_write):
                return [list(inputs[0])]

        proc = Dist()
        assert proc.has_running_handler()
        assert proc.has_finished_handler()
        out = proc.on_delta_running(None, Delta.insertions("t", [{"a": 1}]))
        assert out == [[{"a": 1}]]

    def test_get_name_default(self):
        class Anon(Procedure):
            def run(self, env, inputs, read_write):
                return []

        assert Anon().get_name() == "Anon"


class TestProcessEnv:
    @pytest.fixture
    def env(self, db, engine):
        db.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
        db.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
        definition = ProcessDefinition(
            "p",
            seq(RunQuery("noop", "SELECT 1 AS one", into_variable="x")),
            variables=[],
        )
        engine.deploy(definition)
        execution = engine.start("p")
        env = engine._make_env(execution, None, None)
        env.variables["k"] = 15
        env.constants["c"] = 2
        return env

    def test_lookup_variable_and_constant(self, env):
        assert env.lookup("k") == 15
        assert env.lookup("c") == 2
        with pytest.raises(WorkflowError):
            env.lookup("ghost")

    def test_assign_to_constant_rejected(self, env):
        with pytest.raises(WorkflowError):
            env.assign("c", 3)

    def test_query_with_dollar_params(self, env):
        rows = env.query("SELECT id FROM t WHERE v > $k")
        assert [r["id"] for r in rows] == [2]

    def test_resolve_sql_skips_string_literals(self, env):
        sql, params = env.resolve_sql("SELECT * FROM t WHERE v = '$k'", ())
        assert sql == "SELECT * FROM t WHERE v = '$k'"
        assert params == []

    def test_resolve_sql_dangling_dollar(self, env):
        with pytest.raises(WorkflowError):
            env.resolve_sql("SELECT $ FROM t", ())

    def test_read_table(self, env):
        rows = env.read_table("t")
        assert len(rows) == 2

    def test_write_rows_strips_hidden_fields(self, env):
        env.database.execute("CREATE TABLE sink (id INTEGER, v INTEGER)")
        source_rows = list(env.database.table("t").rows())
        env.write_rows("sink", source_rows)
        assert len(env.database.query("SELECT * FROM sink")) == 2


class TestWorkflowExpressions:
    @pytest.fixture
    def env(self, db, engine):
        db.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
        db.execute("INSERT INTO t (id, v) VALUES (1, 10)")
        definition = ProcessDefinition(
            "p", seq(RunQuery("noop", "SELECT 1 AS one", into_variable="x"))
        )
        engine.deploy(definition)
        execution = engine.start("p")
        return engine._make_env(execution, None, None)

    def test_query_expr(self, env):
        assert QueryExpr("SELECT id FROM t").evaluate(env) == [{"id": 1}]

    def test_table_expr(self, env):
        rows = TableExpr("t").evaluate(env)
        assert rows[0]["v"] == 10

    def test_value_expr_literal_and_variable(self, env):
        assert ValueExpr(5).evaluate(env) == 5
        env.variables["name"] = "x"
        assert ValueExpr("$name").evaluate(env) == "x"

    def test_python_expr(self, env):
        assert PythonExpr(lambda e: 42).evaluate(env) == 42

    def test_proc_call_expr(self, env):
        env.engine.procedures.register_function(
            "double", lambda rows: [{"v": r["v"] * 2} for r in rows]
        )
        expr = ProcCallExpr("double", [TableExpr("t")])
        assert expr.evaluate(env) == [{"v": 20}]

    def test_proc_call_expr_bad_output_index(self, env):
        env.engine.procedures.register_function("nothing", lambda: None)
        expr = ProcCallExpr("nothing", [], output_index=3)
        with pytest.raises(WorkflowError, match="output"):
            expr.evaluate(env)

    def test_evaluate_condition_forms(self, env):
        assert evaluate_condition(None, env) is True
        assert evaluate_condition("SELECT COUNT(*) FROM t", env) is True
        assert evaluate_condition("SELECT COUNT(*) FROM t WHERE v > 99", env) is False
        assert evaluate_condition(lambda e: False, env) is False
        assert evaluate_condition(QueryExpr("SELECT id FROM t"), env) is True
        assert evaluate_condition(1, env) is True
