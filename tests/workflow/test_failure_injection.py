"""Failure injection: the engine must degrade cleanly, never corrupt.

Scenarios: procedures that throw mid-run, handlers that throw during
propagation, triggers that fail inside statements, broken responders,
and queries over dropped tables -- in each case the database state stays
consistent and queryable, and instance rows record the history.
"""

import pytest

from repro.core import datamodel
from repro.errors import ProcedureError
from repro.workflow import (
    CallProcedure,
    ProcessDefinition,
    Procedure,
    RelationDecl,
    RunQuery,
    UpdatePropagation,
    UpdateTable,
    WorkflowEngine,
    seq,
)


class ExplodingProcedure(Procedure):
    name = "exploder"

    def __init__(self, explode_in="run"):
        self.explode_in = explode_in
        self.runs = 0

    def run(self, env, inputs, read_write):
        self.runs += 1
        if self.explode_in == "run":
            raise RuntimeError("boom in run")
        return []

    def on_delta_running(self, env, delta):
        if self.explode_in == "handler":
            raise RuntimeError("boom in handler")
        return None


@pytest.fixture
def src(db):
    db.execute("CREATE TABLE src (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO src (id, v) VALUES (1, 1)")
    return db


class TestProcedureFailures:
    def test_run_failure_closes_instances(self, src, engine):
        proc = ExplodingProcedure("run")
        engine.procedures.register(proc)
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("work", "exploder", inputs=["src"])),
            procedures=["exploder"],
        )
        engine.deploy(definition)
        with pytest.raises(RuntimeError, match="boom in run"):
            engine.run("p")
        # No dangling live activity; statuses closed.
        assert engine.live_activities == {}
        statuses = src.query(
            f"SELECT status FROM {datamodel.T_ACTIVITY_INSTANCE}"
        )
        assert all(s["status"] == datamodel.COMPLETED for s in statuses)
        # The engine remains usable for other processes.
        definition2 = ProcessDefinition(
            "q", seq(RunQuery("read", "SELECT * FROM src", into_variable="rows"))
        )
        engine.deploy(definition2)
        execution = engine.run("q")
        assert execution.variables["rows"]

    def test_failure_in_second_activity_keeps_first_effects(self, src, engine):
        proc = ExplodingProcedure("run")
        engine.procedures.register(proc)
        definition = ProcessDefinition(
            "p",
            seq(
                UpdateTable("first", "UPDATE src SET v = 99 WHERE id = 1"),
                CallProcedure("work", "exploder", inputs=["src"]),
            ),
            procedures=["exploder"],
        )
        engine.deploy(definition)
        with pytest.raises(RuntimeError):
            engine.run("p")
        # Activities are not a transaction: the first one's effect stands
        # (the paper's model has no cross-activity rollback).
        assert src.query("SELECT v FROM src WHERE id = 1")[0]["v"] == 99

    def test_handler_failure_propagates_to_writer(self, src, engine, propagation):
        proc = ExplodingProcedure("handler")
        engine.procedures.register(proc)
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("work", "exploder", inputs=["src"], detached=True)),
            relations=[RelationDecl("src")],
            procedures=["exploder"],
            propagations=[UpdatePropagation("src", "work", "ra")],
        )
        engine.deploy(definition)
        execution = engine.run("p")
        # The writer's statement triggers the handler; the failure surfaces
        # at the write site (statement-level trigger semantics)...
        with pytest.raises(RuntimeError, match="boom in handler"):
            src.execute("INSERT INTO src (id, v) VALUES (2, 2)")
        # ...but the row itself was inserted (AFTER-trigger semantics).
        assert len(src.query("SELECT * FROM src")) == 2
        engine.close(execution)

    def test_unregistered_procedure_is_deploy_time_error(self, src, engine):
        definition = ProcessDefinition(
            "p",
            seq(CallProcedure("work", "ghost_proc")),
        )
        engine.deploy(definition)  # no procedures=[] declaration: allowed
        with pytest.raises(ProcedureError, match="ghost_proc"):
            engine.run("p")


class TestTriggerFailures:
    def test_trigger_exception_inside_transaction_rolls_back(self, src):
        db = src

        def bad_trigger(change):
            raise RuntimeError("trigger boom")

        db.on("src", "insert", bad_trigger)
        with pytest.raises(RuntimeError, match="trigger boom"):
            with db.transaction():
                db.insert("src", {"id": 5, "v": 5})
        # Trigger fired at commit; the transaction had already applied.
        # The insert survives because commit-time trigger errors are not
        # undoable -- but the engine must remain consistent:
        assert db.table("src").by_key(5) is not None
        db.drop_trigger(db.trigger_names()[0])
        db.insert("src", {"id": 6, "v": 6})  # still usable

    def test_trigger_exception_outside_transaction(self, src):
        db = src
        calls = []

        def bad_trigger(change):
            calls.append(1)
            raise RuntimeError("boom")

        name = db.on("src", "insert", bad_trigger)
        with pytest.raises(RuntimeError):
            db.insert("src", {"id": 7, "v": 7})
        assert db.table("src").by_key(7) is not None  # AFTER semantics
        db.drop_trigger(name)


class TestResponderAndQueries:
    def test_broken_responder_surfaces(self, src, engine):
        from repro.workflow import AskUser, Variable

        definition = ProcessDefinition(
            "p",
            seq(AskUser("ask", "?", "answer")),
            variables=[Variable("answer")],
        )
        engine.deploy(definition)

        def responder(prompt, var):
            raise ValueError("user walked away")

        with pytest.raises(ValueError, match="walked away"):
            engine.run("p", responder=responder)

    def test_query_over_dropped_table(self, src, engine):
        definition = ProcessDefinition(
            "p",
            seq(RunQuery("read", "SELECT * FROM vanishing", into_variable="x")),
        )
        engine.deploy(definition)
        src.execute("CREATE TABLE vanishing (a INTEGER)")
        src.execute("DROP TABLE vanishing")
        with pytest.raises(Exception):
            engine.run("p")
        # Process instance closed despite the failure.
        statuses = src.query(f"SELECT status FROM {datamodel.T_PROCESS_INSTANCE}")
        assert statuses[-1]["status"] == datamodel.COMPLETED


class TestConcurrentExecutions:
    def test_parallel_branches_share_variables_safely(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        engine = WorkflowEngine(db)
        from repro.workflow import par

        definition = ProcessDefinition(
            "p",
            seq(
                par(
                    *[
                        UpdateTable(f"w{i}", "INSERT INTO t (v) VALUES (?)", params=[i])
                        for i in range(8)
                    ],
                    parallel=True,
                )
            ),
        )
        engine.deploy(definition)
        engine.run("p")
        assert len(db.query("SELECT * FROM t")) == 8

    def test_two_instances_of_same_process(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        engine = WorkflowEngine(db)
        definition = ProcessDefinition(
            "p",
            seq(UpdateTable("w", "INSERT INTO t (v) VALUES (1)")),
            relations=[RelationDecl("t")],
        )
        engine.deploy(definition)
        first = engine.start("p")
        second = engine.start("p")
        engine.execute_node(first.definition.body, first)
        engine.execute_node(second.definition.body, second)
        engine.close(first)
        engine.close(second)
        assert len(db.query("SELECT * FROM t")) == 2
        statuses = db.query(f"SELECT status FROM {datamodel.T_PROCESS_INSTANCE}")
        assert all(s["status"] == datamodel.COMPLETED for s in statuses)
