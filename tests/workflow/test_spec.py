"""XML process specifications: parsing, round-trips, errors."""

import pytest

from repro.errors import SpecificationError
from repro.workflow import (
    AndSplitJoin,
    AskUser,
    CallProcedure,
    ConditionalNode,
    OrSplitJoin,
    Procedure,
    ProcedureRegistry,
    SequenceNode,
    parse_process,
    serialize_process,
)
from repro.workflow.spec import load_procedures

FULL_XML = """
<process name="elections">
  <configuration driver="embedded" uri="memory://" user="analyst"/>
  <constant name="min_votes" type="INTEGER" value="100"/>
  <constant name="label" type="TEXT" value="night"/>
  <variable name="party" type="TEXT" initial="DEM"/>
  <variable name="ratio" type="FLOAT"/>
  <relation name="votes" primaryKey="id">
    <column name="id" type="INTEGER"/>
    <column name="state" type="TEXT"/>
    <column name="count" type="INTEGER"/>
  </relation>
  <relation name="scratch" temporary="true">
    <column name="v" type="INTEGER"/>
  </relation>
  <function name="aggregate"/>
  <body>
    <sequence>
      <activity name="ask" type="askUser" prompt="Party?" variable="party"/>
      <activity name="agg" type="callFunction" procedure="aggregate" detached="true" freshSnapshot="true">
        <input table="votes"/>
        <output table="votes_agg"/>
      </activity>
      <and-split-join parallel="true">
        <activity name="left" type="update" sql="DELETE FROM votes"/>
        <activity name="right" type="runQuery" sql="SELECT * FROM votes" intoVariable="rows"/>
      </and-split-join>
      <or-split-join>
        <branch condition="SELECT 1">
          <activity name="yes" type="update" sql="DELETE FROM votes"/>
        </branch>
        <branch>
          <activity name="no" type="update" sql="DELETE FROM votes"/>
        </branch>
      </or-split-join>
      <if condition="SELECT COUNT(*) FROM votes">
        <activity name="maybe" type="assign" variable="ratio" value="0.5" valueType="FLOAT"/>
      </if>
    </sequence>
  </body>
  <propagation relation="votes" activity="agg" scope="ra"/>
  <propagation relation="votes" activity="agg" scope="fa-rp"/>
</process>
"""


class TestParsing:
    def test_full_document(self):
        definition = parse_process(FULL_XML)
        assert definition.name == "elections"
        assert definition.configuration.user == "analyst"
        assert {c.name: c.value for c in definition.constants} == {
            "min_votes": 100,
            "label": "night",
        }
        variables = {v.name: v for v in definition.variables}
        assert variables["party"].initial == "DEM"
        assert variables["ratio"].type_name == "FLOAT"
        relations = {r.name: r for r in definition.relations}
        assert relations["votes"].primary_key == "id"
        assert relations["votes"].columns == (
            ("id", "INTEGER"),
            ("state", "TEXT"),
            ("count", "INTEGER"),
        )
        assert relations["scratch"].temporary
        assert definition.procedures == ("aggregate",)
        assert len(definition.propagations) == 2

    def test_body_structure(self):
        definition = parse_process(FULL_XML)
        body = definition.body
        assert isinstance(body, SequenceNode)
        kinds = [type(step).__name__ for step in body.steps]
        assert kinds == [
            "ActivityNode",
            "ActivityNode",
            "AndSplitJoin",
            "OrSplitJoin",
            "ConditionalNode",
        ]
        and_node = body.steps[2]
        assert and_node.parallel
        or_node = body.steps[3]
        assert or_node.branches[0].condition == "SELECT 1"
        assert or_node.branches[1].condition is None

    def test_activity_attributes(self):
        definition = parse_process(FULL_XML)
        agg = definition.activity("agg")
        assert isinstance(agg, CallProcedure)
        assert agg.detached
        assert agg.fresh_snapshot
        assert agg.inputs == ("votes",)
        assert agg.outputs == ("votes_agg",)
        ask = definition.activity("ask")
        assert isinstance(ask, AskUser)
        assert ask.prompt == "Party?"
        maybe = definition.activity("maybe")
        assert maybe.expression == 0.5

    def test_sql_in_element_text(self):
        xml = """
        <process name="p"><body><sequence>
          <activity name="u" type="update">DELETE FROM t</activity>
        </sequence></body></process>
        """
        definition = parse_process(xml)
        assert definition.activity("u").sql == "DELETE FROM t"


class TestParseErrors:
    def test_invalid_xml(self):
        with pytest.raises(SpecificationError, match="invalid process XML"):
            parse_process("<process")

    def test_wrong_root(self):
        with pytest.raises(SpecificationError, match="expected <process>"):
            parse_process("<workflow name='x'/>")

    def test_missing_name(self):
        with pytest.raises(SpecificationError, match="name"):
            parse_process("<process><body><sequence/></body></process>")

    def test_missing_body(self):
        with pytest.raises(SpecificationError, match="body"):
            parse_process("<process name='p'/>")

    def test_unknown_activity_type(self):
        xml = """
        <process name="p"><body><sequence>
          <activity name="x" type="teleport"/>
        </sequence></body></process>
        """
        with pytest.raises(SpecificationError, match="unknown activity type"):
            parse_process(xml)

    def test_unknown_node(self):
        xml = "<process name='p'><body><loop/></body></process>"
        with pytest.raises(SpecificationError, match="unknown process node"):
            parse_process(xml)

    def test_bad_propagation(self):
        xml = """
        <process name="p"><body><sequence>
          <activity name="u" type="update" sql="DELETE FROM t"/>
        </sequence></body>
        <propagation relation="t" activity="u"/>
        </process>
        """
        with pytest.raises(SpecificationError, match="propagation"):
            parse_process(xml)

    def test_askuser_needs_variable(self):
        xml = """
        <process name="p"><body><sequence>
          <activity name="a" type="askUser" prompt="?"/>
        </sequence></body></process>
        """
        with pytest.raises(SpecificationError, match="variable"):
            parse_process(xml)


class TestRoundTrip:
    def test_serialize_then_parse_preserves_structure(self):
        original = parse_process(FULL_XML)
        xml = serialize_process(original)
        reparsed = parse_process(xml)
        assert reparsed.name == original.name
        assert reparsed.activity_names() == original.activity_names()
        assert [
            (u.relation, u.activity, u.scope) for u in reparsed.propagations
        ] == [(u.relation, u.activity, u.scope) for u in original.propagations]
        assert {c.name: c.value for c in reparsed.constants} == {
            c.name: c.value for c in original.constants
        }
        assert {r.name: r.columns for r in reparsed.relations} == {
            r.name: r.columns for r in original.relations
        }
        agg = reparsed.activity("agg")
        assert agg.detached and agg.fresh_snapshot


class TestClasspathLoading:
    def test_load_procedures_from_classpath(self):
        xml = """
        <process name="p">
          <function name="myproc" classpath="tests.workflow.test_spec:SampleProcedure"/>
          <body><sequence>
            <activity name="c" type="callFunction" procedure="myproc"/>
          </sequence></body>
        </process>
        """
        definition = parse_process(xml)
        registry = ProcedureRegistry()
        registered = load_procedures(definition, registry)
        assert registered == ["myproc"]
        assert "myproc" in registry

    def test_bad_classpath_module(self):
        xml = """
        <process name="p">
          <function name="f" classpath="no.such.module:X"/>
          <body><sequence>
            <activity name="c" type="callFunction" procedure="f"/>
          </sequence></body>
        </process>
        """
        definition = parse_process(xml)
        with pytest.raises(SpecificationError, match="cannot import"):
            load_procedures(definition, ProcedureRegistry())

    def test_bad_classpath_format(self):
        xml = """
        <process name="p">
          <function name="f" classpath="just_a_module"/>
          <body><sequence>
            <activity name="c" type="callFunction" procedure="f"/>
          </sequence></body>
        </process>
        """
        definition = parse_process(xml)
        with pytest.raises(SpecificationError, match="module:ClassName"):
            load_procedures(definition, ProcedureRegistry())

    def test_not_a_procedure_class(self):
        xml = """
        <process name="p">
          <function name="f" classpath="tests.workflow.test_spec:NotAProcedure"/>
          <body><sequence>
            <activity name="c" type="callFunction" procedure="f"/>
          </sequence></body>
        </process>
        """
        definition = parse_process(xml)
        with pytest.raises(SpecificationError, match="not a Procedure"):
            load_procedures(definition, ProcedureRegistry())


class SampleProcedure(Procedure):
    """Used by the classpath-loading tests above."""

    name = "myproc"

    def run(self, env, inputs, read_write):
        return []


class NotAProcedure:
    """Deliberately not a Procedure subclass."""
