"""Live-dashboard integration: auto-refreshed views over a reactive process.

The complete interactive story: a detached aggregation process reacts to
streaming data; a RefreshDriver keeps a display mirror current at a
bounded frame rate; the monitor reports the running instance -- all
without a single manual refresh call.
"""

import time

import pytest

from repro import EdiFlow
from repro.core import datamodel
from repro.sync import RefreshDriver, SyncClient
from repro.workflow import (
    CallProcedure,
    ProcessDefinition,
    Procedure,
    RelationDecl,
    UpdatePropagation,
    seq,
)


class WriteSummary(Procedure):
    """Keeps a one-row summary table fresh through delta handlers."""

    name = "write_summary"

    def run(self, env, inputs, read_write):
        total = sum(r["amount"] for r in inputs[0])
        env.execute("DELETE FROM summary")
        env.execute("INSERT INTO summary (total) VALUES (?)", [total])
        return []

    def on_delta_running(self, env, delta):
        change = sum(r["amount"] for r in delta.inserted) - sum(
            r["amount"] for r in delta.deleted
        )
        env.database.execute(
            "UPDATE summary SET total = total + ?", [change]
        )
        return None


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


@pytest.mark.parametrize("use_sockets", [False, True], ids=["inprocess", "sockets"])
def test_live_dashboard(use_sockets):
    platform = EdiFlow(use_sockets=use_sockets)
    platform.execute(
        "CREATE TABLE orders (id INTEGER PRIMARY KEY, amount INTEGER)"
    )
    platform.execute("CREATE TABLE summary (total INTEGER)")
    platform.procedures.register(WriteSummary())
    platform.deploy(
        ProcessDefinition(
            "dashboard",
            seq(
                CallProcedure(
                    "summarize", "write_summary", inputs=["orders"], detached=True
                )
            ),
            relations=[RelationDecl("orders"), RelationDecl("summary")],
            procedures=["write_summary"],
            propagations=[UpdatePropagation("orders", "summarize", "ra")],
        )
    )
    execution = platform.run("dashboard")

    # The dashboard client mirrors the summary table, auto-refreshed.
    client = SyncClient(platform.server)
    mirror = client.mirror("summary")
    driver = RefreshDriver(client, max_rate=200.0)
    driver.start()
    try:
        # Stream orders; the process handler and the dashboard mirror
        # must both converge without manual refreshes.
        total = 0
        for i in range(20):
            amount = (i * 7) % 23 + 1
            total += amount
            platform.execute(
                "INSERT INTO orders (id, amount) VALUES (?, ?)", [i, amount]
            )
        expected = total

        def mirror_current():
            rows = mirror.all_rows()
            return bool(rows) and rows[0]["total"] == expected

        assert wait_until(mirror_current), (
            f"dashboard never converged: mirror={mirror.all_rows()}, "
            f"expected total {expected}"
        )
        # The monitor sees the detached activity still running.
        running = platform.monitor.running()
        assert [t.process_name for t in running] == ["dashboard"]
        trace = platform.monitor.trace(execution.id)
        assert trace.activities[0].status == datamodel.RUNNING
    finally:
        driver.stop()
        client.close()
        platform.close_execution(execution)
        platform.shutdown()
    assert platform.monitor.running() == []
